"""Deprecated alias layer: the eight paper designs as an enum.

The persistence designs are modelled by :mod:`repro.core.design` as
compositions of orthogonal mechanisms (:class:`~repro.core.design.DesignSpec`);
this module keeps the historical :class:`Policy` enum alive as a thin
alias so external call sites keep working.  Every structural property
delegates to the member's canonical spec, and members hash/compare equal
to that spec, so a dict keyed by specs can be probed with enum members
and vice versa.

New code should use :mod:`repro.core.design` directly.

========== =====================================================
name       meaning
========== =====================================================
non-pers   NVRAM as plain working memory; no persistence at all
           (the paper's ideal-but-unachievable upper bound)
unsafe-base software logging without forced write-backs; *no*
           persistence guarantee
redo-clwb  software redo logging + clwb after transactions
undo-clwb  software undo logging + clwb before commit
hw-rlog    hardware redo-only logging, no persistence guarantee
hw-ulog    hardware undo-only logging, no persistence guarantee
hwl        this paper's hardware undo+redo logging, still using
           clwb to force write-backs
fwb        the full design: HWL plus the hardware cache
           force-write-back mechanism
========== =====================================================
"""

from __future__ import annotations

import enum

from .design import DESIGNS, DesignSpec


class Policy(enum.Enum):
    """Persistence design evaluated by the paper (deprecated alias).

    Each member is a named handle on a canonical
    :class:`~repro.core.design.DesignSpec`; all predicates are derived
    from the spec's mechanism fields.
    """

    NON_PERS = "non-pers"
    UNSAFE_BASE = "unsafe-base"
    REDO_CLWB = "redo-clwb"
    UNDO_CLWB = "undo-clwb"
    HW_RLOG = "hw-rlog"
    HW_ULOG = "hw-ulog"
    HWL = "hwl"
    FWB = "fwb"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    def __eq__(self, other) -> bool:
        if isinstance(other, Policy):
            return self is other
        if isinstance(other, DesignSpec):
            return self.design == other
        return NotImplemented

    def __hash__(self) -> int:
        # Hash like the canonical spec so dicts keyed by DesignSpec can
        # be probed with Policy members (and the reverse).
        return hash(self.design)

    @property
    def design(self) -> DesignSpec:
        """The canonical :class:`~repro.core.design.DesignSpec`."""
        return DESIGNS.get(self.value)

    @classmethod
    def from_name(cls, name: str) -> "Policy":
        """Look a policy up by its paper name (e.g. ``"fwb"``).

        Unknown names raise ``ValueError`` with "did you mean"
        suggestions from the design registry.
        """
        policy = _BY_NAME.get(name)
        if policy is None:
            DESIGNS.get(name)  # raises with suggestions
            raise ValueError(f"unknown policy {name!r}")  # pragma: no cover
        return policy

    # ------------------------------------------------------------------
    # Structural properties (all delegated to the canonical spec)
    # ------------------------------------------------------------------
    @property
    def uses_hw_logging(self) -> bool:
        """True when the HWL engine generates log records in hardware."""
        return self.design.uses_hw_logging

    @property
    def uses_sw_logging(self) -> bool:
        """True when logging executes as instructions in the pipeline."""
        return self.design.uses_sw_logging

    @property
    def logs_undo(self) -> bool:
        """True when old values are logged."""
        return self.design.logs_undo

    @property
    def logs_redo(self) -> bool:
        """True when new values are logged."""
        return self.design.logs_redo

    @property
    def uses_clwb_at_commit(self) -> bool:
        """True when transactions issue clwb over their write set."""
        return self.design.uses_clwb_at_commit

    @property
    def uses_fwb(self) -> bool:
        """True when the hardware FWB scanner is active."""
        return self.design.uses_fwb

    @property
    def defers_in_place_stores(self) -> bool:
        """Software redo logging: in-place stores wait for log completion
        (the Figure 1(b) memory barrier)."""
        return self.design.defers_in_place_stores

    @property
    def persistence_guaranteed(self) -> bool:
        """True when a crash at any instant is recoverable."""
        return self.design.persistence_guaranteed

    @property
    def protects_log_wrap(self) -> bool:
        """True when overwriting a log entry forces its data line durable."""
        return self.design.protects_log_wrap


_BY_NAME = {policy.value: policy for policy in Policy}

MICROBENCH_POLICIES = tuple(Policy)
"""All eight designs, in the order the paper's figures present them."""
