"""The eight evaluated persistence designs (Section VI).

========== =====================================================
name       meaning
========== =====================================================
non-pers   NVRAM as plain working memory; no persistence at all
           (the paper's ideal-but-unachievable upper bound)
unsafe-base software logging without forced write-backs; *no*
           persistence guarantee
redo-clwb  software redo logging + clwb after transactions
undo-clwb  software undo logging + clwb before commit
hw-rlog    hardware redo-only logging, no persistence guarantee
hw-ulog    hardware undo-only logging, no persistence guarantee
hwl        this paper's hardware undo+redo logging, still using
           clwb to force write-backs
fwb        the full design: HWL plus the hardware cache
           force-write-back mechanism
========== =====================================================
"""

from __future__ import annotations

import enum


class Policy(enum.Enum):
    """Persistence design evaluated by the paper."""

    NON_PERS = "non-pers"
    UNSAFE_BASE = "unsafe-base"
    REDO_CLWB = "redo-clwb"
    UNDO_CLWB = "undo-clwb"
    HW_RLOG = "hw-rlog"
    HW_ULOG = "hw-ulog"
    HWL = "hwl"
    FWB = "fwb"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def from_name(cls, name: str) -> "Policy":
        """Look a policy up by its paper name (e.g. ``"fwb"``)."""
        for policy in cls:
            if policy.value == name:
                return policy
        raise ValueError(f"unknown policy {name!r}")

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------
    @property
    def uses_hw_logging(self) -> bool:
        """True when the HWL engine generates log records in hardware."""
        return self in (Policy.HW_RLOG, Policy.HW_ULOG, Policy.HWL, Policy.FWB)

    @property
    def uses_sw_logging(self) -> bool:
        """True when logging executes as instructions in the pipeline."""
        return self in (Policy.UNSAFE_BASE, Policy.REDO_CLWB, Policy.UNDO_CLWB)

    @property
    def logs_undo(self) -> bool:
        """True when old values are logged."""
        return self in (
            Policy.UNSAFE_BASE,
            Policy.UNDO_CLWB,
            Policy.HW_ULOG,
            Policy.HWL,
            Policy.FWB,
        )

    @property
    def logs_redo(self) -> bool:
        """True when new values are logged."""
        return self in (Policy.REDO_CLWB, Policy.HW_RLOG, Policy.HWL, Policy.FWB)

    @property
    def uses_clwb_at_commit(self) -> bool:
        """True when transactions issue clwb over their write set."""
        return self in (Policy.REDO_CLWB, Policy.UNDO_CLWB, Policy.HWL)

    @property
    def uses_fwb(self) -> bool:
        """True when the hardware FWB scanner is active."""
        return self is Policy.FWB

    @property
    def defers_in_place_stores(self) -> bool:
        """Software redo logging: in-place stores wait for log completion
        (the Figure 1(b) memory barrier)."""
        return self is Policy.REDO_CLWB

    @property
    def persistence_guaranteed(self) -> bool:
        """True when a crash at any instant is recoverable."""
        return self in (Policy.REDO_CLWB, Policy.UNDO_CLWB, Policy.HWL, Policy.FWB)

    @property
    def protects_log_wrap(self) -> bool:
        """True when overwriting a log entry forces its data line durable."""
        return self.persistence_guaranteed


MICROBENCH_POLICIES = tuple(Policy)
"""All eight designs, in the order the paper's figures present them."""
