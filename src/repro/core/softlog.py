"""Software logging baselines (Figure 1 / Figure 2(a) of the paper).

This module is the ``sw`` log-backend axis value in the mechanism space
(:mod:`repro.core.design`); the machine wires it for any design with
``DesignSpec.uses_sw_logging`` and passes the ``log_content`` axis down
as the ``record_undo`` / ``record_redo`` constructor flags.

Software logging runs as *instructions*: per logged word an undo scheme
loads the old value and stores a log record; a redo scheme stores the new
value to the log before the in-place store may proceed.  This module only
builds and places the records; the transaction runtime
(:mod:`repro.txn.runtime`) emits the corresponding micro-ops — explicit
:class:`~repro.sim.microops.Load`, :class:`~repro.sim.microops.LogStore`,
:class:`~repro.sim.microops.CLWB` and :class:`~repro.sim.microops.Fence`
instructions — so that the pipeline and memory-traffic overheads the paper
measures appear naturally.
"""

from __future__ import annotations

from .logrecord import LogRecord, RecordKind
from .nvlog import CircularLog, PlacedRecord
from .registers import SpecialRegisters


class SoftwareLog:
    """Builds and places software log records in the circular log."""

    def __init__(
        self,
        log: CircularLog,
        registers: SpecialRegisters,
        record_undo: bool,
        record_redo: bool,
    ) -> None:
        self._log = log
        self._registers = registers
        self._record_undo = record_undo
        self._record_redo = record_redo

    @property
    def records_undo(self) -> bool:
        """True when old values are logged."""
        return self._record_undo

    @property
    def records_redo(self) -> bool:
        """True when new values are logged."""
        return self._record_redo

    def retune(self, record_undo: bool, record_redo: bool) -> None:
        """Re-select record sides at a safe-switch barrier (the caller
        guarantees no transaction is in flight)."""
        self._record_undo = record_undo
        self._record_redo = record_redo

    def begin(self, txid: int, tid: int) -> PlacedRecord:
        """Place the transaction's header record (tx_begin)."""
        self._registers.acquire_txid(txid)
        physical = self._registers.physical_txid(txid)
        return self._place(LogRecord(RecordKind.BEGIN, physical, tid))

    def data(
        self, txid: int, tid: int, addr: int, old: bytes, new: bytes
    ) -> PlacedRecord:
        """Place a data record for one logged word."""
        physical = self._registers.physical_txid(txid)
        record = LogRecord(
            RecordKind.DATA,
            physical,
            tid,
            addr,
            undo=old if self._record_undo else b"",
            redo=new if self._record_redo else b"",
        )
        return self._place(record)

    def commit(self, txid: int, tid: int) -> PlacedRecord:
        """Place the commit record and release the physical txid."""
        physical = self._registers.physical_txid(txid)
        placed = self._place(LogRecord(RecordKind.COMMIT, physical, tid))
        self._registers.release_txid(txid)
        return placed

    def _place(self, record: LogRecord) -> PlacedRecord:
        placed = self._log.place(record)
        self._registers.set_log_pointers(self._log.head, self._log.tail)
        return placed
