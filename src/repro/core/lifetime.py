"""NVRAM lifetime analysis (Section III-F of the paper).

The paper argues the statically-allocated log region does not wear out
prematurely: with a 64K-entry (4 MB) log and a 200 ns NVRAM write, each
cell is overwritten once per full pass — every ``64K x 200 ns`` — so an
endurance of 1e8 writes lasts about 15 days, "plenty of time for
conventional NVRAM wear-leveling schemes to trigger".  It also notes two
opposing effects on overall lifetime: logging amplifies writes, caching
coalesces them.

This module reproduces that arithmetic from a configuration and exposes
the write-amplification measurement for a finished run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.config import SystemConfig
    from ..sim.stats import MachineStats

PAPER_WRITE_NS = 200.0
PAPER_ENDURANCE = 1e8
SECONDS_PER_DAY = 86400.0


def log_pass_period_seconds(
    config: "SystemConfig", write_ns: float = PAPER_WRITE_NS
) -> float:
    """Time for the log tail to lap the ring at back-to-back writes.

    This is the fastest possible per-cell overwrite period for the log
    region — the paper's ``64K x 200 ns`` figure.
    """
    return config.logging.log_entries * write_ns * 1e-9


def log_region_lifetime_days(
    config: "SystemConfig",
    endurance_writes: float = PAPER_ENDURANCE,
    write_ns: float = PAPER_WRITE_NS,
) -> float:
    """Days until a statically-allocated log cell reaches its endurance.

    The paper's running example evaluates to ~15 days.
    """
    return log_pass_period_seconds(config, write_ns) * endurance_writes / SECONDS_PER_DAY


@dataclass(frozen=True)
class WearReport:
    """Write-traffic decomposition of one finished run."""

    log_bytes: int
    data_bytes: int
    total_bytes: int
    amplification: float
    log_share: float


def wear_report(stats: "MachineStats") -> WearReport:
    """Decompose a run's NVRAM writes into log and data traffic.

    ``amplification`` is total writes over data writes — the logging
    write-amplification factor the paper's lifetime discussion weighs
    against cache coalescing.
    """
    log_bytes = stats.log_bytes
    data_bytes = max(0, stats.nvram_write_bytes - log_bytes)
    total = stats.nvram_write_bytes
    amplification = total / data_bytes if data_bytes else float("inf")
    share = log_bytes / total if total else 0.0
    return WearReport(log_bytes, data_bytes, total, amplification, share)
