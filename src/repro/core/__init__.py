"""The paper's primary contribution: hardware undo+redo logging.

* :mod:`~repro.core.logrecord` — the log-record format (torn bit, 16-bit
  transaction ID, 8-bit thread ID, 48-bit address, undo and redo words);
* :mod:`~repro.core.nvlog` — the single-producer single-consumer Lamport
  circular log in NVRAM;
* :mod:`~repro.core.registers` — the special registers (transaction ID,
  log head/tail pointers);
* :mod:`~repro.core.logbuffer` — the optional volatile log buffer;
* :mod:`~repro.core.hwl` — the Hardware Logging (HWL) engine;
* :mod:`~repro.core.fwb` — the cache Force Write-Back (FWB) mechanism;
* :mod:`~repro.core.softlog` — the software logging baselines;
* :mod:`~repro.core.design` — the composable mechanism space
  (:class:`~repro.core.design.DesignSpec`) and the registry of the
  paper's eight canonical designs;
* :mod:`~repro.core.policy` — the legacy enum alias over the registry;
* :mod:`~repro.core.recovery` — post-crash log replay.
"""

from .design import (
    CANONICAL_DESIGNS,
    DESIGNS,
    CommitProtocol,
    DesignSpec,
    LogBackend,
    LogContent,
    Writeback,
    parse_design,
    resolve_design,
)
from .growlog import GrowableCircularLog, RegionDirectory
from .lifetime import log_region_lifetime_days, wear_report
from .logrecord import LogRecord, RecordKind
from .multilog import LogRouter, recover_all, split_log_region
from .nvlog import CircularLog
from .policy import Policy
from .recovery import RecoveryManager, RecoveryReport

__all__ = [
    "LogRecord",
    "RecordKind",
    "CircularLog",
    "GrowableCircularLog",
    "RegionDirectory",
    "LogRouter",
    "split_log_region",
    "recover_all",
    "log_region_lifetime_days",
    "wear_report",
    "Policy",
    "DesignSpec",
    "DESIGNS",
    "CANONICAL_DESIGNS",
    "LogBackend",
    "LogContent",
    "Writeback",
    "CommitProtocol",
    "parse_design",
    "resolve_design",
    "RecoveryManager",
    "RecoveryReport",
]
