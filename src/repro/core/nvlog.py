"""Single-producer single-consumer circular log in NVRAM (Section III-A).

The log is a fixed-size ring of fixed-size entries.  Appends advance the
tail; the torn bit carried by every record is the current *pass parity*,
which flips each time the tail wraps — "torn bits have the same value for
all entries in one pass over the log, but reverses when a log entry is
overwritten".  Recovery uses the parity boundary to find the tail without
any persistent pointer (:mod:`repro.core.recovery`).

Wrap-around protection: before an entry is overwritten, the data line it
covers must be durable (otherwise a crash could find neither the log
record nor the data).  :meth:`place` reports the line address of the entry
about to be overwritten so the caller (the HWL engine or the software
logging layer) can force a write-back first — the "log full" path whose
cost the FWB mechanism exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import LogError
from .logrecord import LogRecord, RecordKind


@dataclass(frozen=True)
class PlacedRecord:
    """Result of placing a record: where to write it and what it displaces."""

    addr: int
    payload: bytes
    slot: int
    displaced_line: Optional[int]
    displaced_kind: Optional[RecordKind]


class CircularLog:
    """Address and parity management for the circular log region."""

    def __init__(
        self,
        base: int,
        num_entries: int,
        entry_size: int,
        line_size: int = 64,
    ) -> None:
        if num_entries <= 0:
            raise LogError("log must have at least one entry")
        self.base = base
        self.num_entries = num_entries
        self.entry_size = entry_size
        self._line_size = line_size
        self.tail = 0
        self.head = 0
        self.parity = 1  # zeroed NVRAM decodes as invalid; first pass writes torn=1
        self.wrapped = False
        self.appended = 0
        # Volatile shadow of what lives in each slot, for wrap protection.
        self._slot_lines: list[Optional[int]] = [None] * num_entries
        self._slot_kinds: list[Optional[RecordKind]] = [None] * num_entries

    @property
    def size_bytes(self) -> int:
        """Total byte size of the log region."""
        return self.num_entries * self.entry_size

    @property
    def end(self) -> int:
        """One past the last byte of the log region."""
        return self.base + self.size_bytes

    def entry_addr(self, slot: int) -> int:
        """NVRAM address of entry ``slot``."""
        if not 0 <= slot < self.num_entries:
            raise LogError(f"slot {slot} out of range")
        return self.base + slot * self.entry_size

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def place(self, record: LogRecord) -> PlacedRecord:
        """Assign the next slot to ``record`` and advance the tail.

        Returns the placement plus the *displaced* line address (the data
        line whose log entry is being overwritten) when the ring has
        wrapped; the caller must ensure that line is durable before
        writing the new entry.
        """
        slot = self.tail
        displaced_line = self._slot_lines[slot] if self.wrapped else None
        displaced_kind = self._slot_kinds[slot] if self.wrapped else None
        stamped = record.with_torn(self.parity)
        payload = stamped.encode(self.entry_size)
        line = None
        if record.kind == RecordKind.DATA:
            line = record.addr - (record.addr % self._line_size)
        self._slot_lines[slot] = line
        self._slot_kinds[slot] = record.kind
        self.tail += 1
        self.appended += 1
        if self.tail == self.num_entries:
            self.tail = 0
            self.parity ^= 1
            self.wrapped = True
        return PlacedRecord(
            addr=self.entry_addr(slot),
            payload=payload,
            slot=slot,
            displaced_line=displaced_line,
            displaced_kind=displaced_kind,
        )

    # ------------------------------------------------------------------
    # Truncation (system-software side, log_truncate())
    # ------------------------------------------------------------------
    def truncate(self, entries: int) -> None:
        """Advance the head by ``entries`` (release consumed records)."""
        if entries < 0:
            raise LogError("cannot truncate a negative number of entries")
        self.head = (self.head + entries) % self.num_entries

    @property
    def live_entries(self) -> int:
        """Entries between head and tail (whole ring once wrapped)."""
        if self.wrapped:
            return self.num_entries
        return self.tail - self.head

    def region_views(self) -> list:
        """Regions to scan during recovery (one, for the base ring)."""
        return [self]
