"""The optional volatile log buffer (Sections III-B, IV-C).

A FIFO of ``depth`` entries in the memory controller that decouples the
HWL engine from the NVRAM bus:

* **No buffer (depth 0)** — every log record is "directly forced to the
  NVRAM bus" (Section IV-C): the triggering store stalls until the
  record's transfer wins the shared channel.
* **Buffered (depth N)** — up to N records may be awaiting bus
  acceptance; the producer stalls only when all N slots are occupied.
  The paper's persistence bound limits N to the minimum cycles a cached
  store needs to traverse the hierarchy (15 for the Table II machine) so
  that a record is always on the bus before its data can be.

Records become durable in FIFO order (completion times are clamped
monotonic): log updates "must arrive in NVRAM in store-order".  The
buffer is volatile — on a crash, records whose NVRAM write had not
completed are lost (modelled via the NVRAM write journal).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.memctrl import MemoryController
    from ..sim.stats import MachineStats


class LogBuffer:
    """Volatile FIFO between the HWL engine and the NVRAM bus."""

    def __init__(self, depth: int, memctrl: "MemoryController", stats: "MachineStats") -> None:
        self.depth = depth
        self._memctrl = memctrl
        self._stats = stats
        self._accept_times: deque[float] = deque()
        self.last_completion = 0.0
        self.tracer = None
        """Optional tracer (set by the machine's ``tracer`` property);
        emits one ``log_push`` event per record entering the FIFO."""
        self.ident = 0
        """Buffer index within the machine (distributed-log configs run
        several FIFOs); stamped on ``log_push`` events so per-buffer FIFO
        order can be checked."""

    def push(self, addr: int, payload: bytes, now: float) -> tuple[float, float]:
        """Append one record; returns (stall_cycles, durable_time).

        ``durable_time`` is when the record's NVRAM write completes; the
        HWL engine uses it as the log-release time of the data line.
        """
        stall = 0.0
        if self.depth > 0:
            while self._accept_times and self._accept_times[0] <= now:
                self._accept_times.popleft()
            if len(self._accept_times) >= self.depth:
                freed_at = self._accept_times.popleft()
                stall = max(0.0, freed_at - now)
                now += stall
                self._stats.log_buffer_stall_cycles += stall
        ticket = self._memctrl.write(
            addr, payload, now, min_completion=self.last_completion
        )
        if self.depth > 0:
            self._accept_times.append(ticket.accepted)
        else:
            # Unbuffered: the triggering store waits for bus acceptance.
            bus_wait = max(0.0, ticket.accepted - now)
            stall += bus_wait
            self._stats.log_buffer_stall_cycles += bus_wait
        self._stats.log_records += 1
        self._stats.log_bytes += len(payload)
        self._stats.log_buffer_stall_cycles += ticket.stall
        stall += ticket.stall
        self.last_completion = max(self.last_completion, ticket.completion)
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "log_push",
                -1,
                buffer=self.ident,
                addr=addr,
                completion=self.last_completion,
                stall=stall,
                occupancy=len(self._accept_times),
            )
        return stall, self.last_completion

    @property
    def occupancy(self) -> int:
        """Records currently awaiting bus acceptance (test visibility)."""
        return len(self._accept_times)
