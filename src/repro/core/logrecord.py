"""Log record format (Figure 3(a) of the paper).

Each record holds the undo and redo information of a single word update
plus: a torn bit, a 16-bit transaction ID, an 8-bit thread ID and the
48-bit physical address of the data.  We add a 2-bit record kind (BEGIN /
DATA / COMMIT) and two presence flags so that undo-only and redo-only
logs (the ``hw-rlog`` / ``hw-ulog`` / software baselines) reuse the same
format, and a magic byte so that never-written (zeroed) NVRAM decodes as
"no record".

Binary layout (little-endian, within a 32- or 64-byte log entry):

====== ====== ==============================================
offset size   field
====== ====== ==============================================
0      1      flags: bit0 torn, bits1-2 kind, bit3 has_undo,
              bit4 has_redo
1      2      transaction ID (16 bits)
3      1      thread ID (8 bits)
4      1      magic (0xA5)
5      1      value size (bytes)
6      1      checksum (XOR over all meaningful bytes)
7      1      reserved
8      6      physical address (48 bits)
14     2      reserved
16     8      undo value (old data word)
24     8      redo value (new data word)
====== ====== ==============================================

The checksum lets recovery reject a *torn* entry — one whose write was
in flight at the crash and only partially reached NVRAM — as the end of
the valid window (the role the paper assigns to consistent torn-bit
values over complete records).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import LogError

MAGIC = 0xA5
RESET_MAGIC = 0x3C
"""Magic byte of the *reset marker* written to slot 0 while the log is
being cleared after recovery.  Scanning treats a marker as "log empty",
which makes the multi-entry reset crash-safe: a crash mid-reset leaves
the marker in place, so a second recovery replays nothing instead of
replaying a partially zeroed (and therefore misleading) window."""
HEADER_BYTES = 32
"""Meaningful bytes of a record; the rest of the entry is padding."""


def _checksum(buf: bytes) -> int:
    """Position-sensitive rolling checksum over the meaningful bytes.

    A plain XOR would cancel on repeated-byte payloads (a zeroed tail of
    ``b"OO...O"`` keeps the XOR intact); the multiplicative roll makes
    every byte's position matter, so a torn tail is detected.
    """
    value = 0x5C
    for offset in range(min(len(buf), HEADER_BYTES)):
        if offset != 6:
            value = (value * 31 + buf[offset]) & 0xFF
    return value


class RecordKind(enum.IntEnum):
    """Record type stored in the flags byte."""

    INVALID = 0
    BEGIN = 1
    DATA = 2
    COMMIT = 3


class DecodeStatus(enum.Enum):
    """Why a log entry did or did not decode to a record.

    Recovery uses the distinction to place torn entries (in-flight writes
    partially applied at the crash) at the window boundary while merely
    *corrupt* entries elsewhere are skipped and counted, instead of
    silently truncating the valid window at the first bad slot.
    """

    OK = "ok"
    EMPTY = "empty"          # magic byte absent: never written (or wiped)
    CHECKSUM = "checksum"    # magic present but checksum mismatch: torn/corrupt
    CORRUPT = "corrupt"      # checksum fine but fields impossible (bad size/kind)
    RESET_MARKER = "reset"   # the crash-safe log-reset marker


def reset_marker(entry_size: int) -> bytes:
    """The reset-marker entry payload (all zeros except the magic)."""
    if entry_size < HEADER_BYTES:
        raise LogError(f"entry size {entry_size} below {HEADER_BYTES}")
    buf = bytearray(entry_size)
    buf[4] = RESET_MAGIC
    buf[6] = _checksum(buf)
    return bytes(buf)


def is_reset_marker(raw: bytes) -> bool:
    """True when ``raw`` holds a (checksum-valid) reset marker."""
    return (
        len(raw) >= HEADER_BYTES
        and raw[4] == RESET_MAGIC
        and _checksum(raw[:HEADER_BYTES]) == raw[6]
    )


@dataclass(frozen=True)
class LogRecord:
    """One decoded log record."""

    kind: RecordKind
    txid: int
    tid: int
    addr: int = 0
    undo: bytes = b""
    redo: bytes = b""
    torn: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.txid < (1 << 16):
            raise LogError(f"txid {self.txid} does not fit in 16 bits")
        if not 0 <= self.tid < (1 << 8):
            raise LogError(f"tid {self.tid} does not fit in 8 bits")
        if not 0 <= self.addr < (1 << 48):
            raise LogError(f"addr {self.addr:#x} does not fit in 48 bits")
        if len(self.undo) > 8 or len(self.redo) > 8:
            raise LogError("undo/redo values must be at most one word")
        if self.torn not in (0, 1):
            raise LogError("torn bit must be 0 or 1")

    @property
    def has_undo(self) -> bool:
        """True when the record carries an old (undo) value."""
        return len(self.undo) > 0

    @property
    def has_redo(self) -> bool:
        """True when the record carries a new (redo) value."""
        return len(self.redo) > 0

    @property
    def value_size(self) -> int:
        """Size in bytes of the logged word piece (0 for BEGIN/COMMIT)."""
        return max(len(self.undo), len(self.redo))

    def with_torn(self, torn: int) -> "LogRecord":
        """Return a copy with the torn bit set to ``torn``."""
        return LogRecord(
            self.kind, self.txid, self.tid, self.addr, self.undo, self.redo, torn
        )

    # ------------------------------------------------------------------
    # Binary encoding
    # ------------------------------------------------------------------
    def encode(self, entry_size: int) -> bytes:
        """Encode into an ``entry_size``-byte log entry."""
        if entry_size < HEADER_BYTES:
            raise LogError(f"entry size {entry_size} below {HEADER_BYTES}")
        flags = (
            (self.torn & 1)
            | (int(self.kind) << 1)
            | (int(self.has_undo) << 3)
            | (int(self.has_redo) << 4)
        )
        size = self.value_size
        buf = bytearray(entry_size)
        buf[0] = flags
        buf[1:3] = self.txid.to_bytes(2, "little")
        buf[3] = self.tid
        buf[4] = MAGIC
        buf[5] = size
        buf[8:14] = self.addr.to_bytes(6, "little")
        buf[16:16 + len(self.undo)] = self.undo
        buf[24:24 + len(self.redo)] = self.redo
        buf[6] = _checksum(buf)
        return bytes(buf)

    @classmethod
    def decode(cls, raw: bytes, verify_checksum: bool = True) -> "LogRecord | None":
        """Decode a log entry; returns None for never-written or torn
        (checksum-failing) entries.  ``verify_checksum=False`` decodes on
        the magic byte alone (the paper's bare torn-bit scheme, with no
        per-record integrity check)."""
        record, _status = cls.classify(raw, verify_checksum)
        return record

    @classmethod
    def classify(
        cls, raw: bytes, verify_checksum: bool = True
    ) -> "tuple[LogRecord | None, DecodeStatus]":
        """Decode a log entry and report *why* when it does not decode.

        Returns ``(record, status)``; ``record`` is None unless ``status``
        is :attr:`DecodeStatus.OK`.
        """
        if len(raw) < HEADER_BYTES:
            raise LogError(f"log entry of {len(raw)} bytes is too short")
        if raw[4] != MAGIC:
            if raw[4] == RESET_MAGIC:
                return None, DecodeStatus.RESET_MARKER
            return None, DecodeStatus.EMPTY
        if verify_checksum and _checksum(raw[:HEADER_BYTES]) != raw[6]:
            return None, DecodeStatus.CHECKSUM
        flags = raw[0]
        kind = RecordKind((flags >> 1) & 0x3)
        if kind == RecordKind.INVALID:
            return None, DecodeStatus.CORRUPT
        size = raw[5]
        if size > 8:
            return None, DecodeStatus.CORRUPT
        undo = bytes(raw[16:16 + size]) if flags & 0x8 else b""
        redo = bytes(raw[24:24 + size]) if flags & 0x10 else b""
        record = cls(
            kind=kind,
            txid=int.from_bytes(raw[1:3], "little"),
            tid=raw[3],
            addr=int.from_bytes(raw[8:14], "little"),
            undo=undo,
            redo=redo,
            torn=flags & 1,
        )
        return record, DecodeStatus.OK
