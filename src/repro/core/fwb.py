"""Cache Force Write-Back (FWB) mechanism (Sections III-C, IV-D).

This scanner is the ``fwb`` value of the write-back axis in the
mechanism space (:mod:`repro.core.design`): the machine arms it for any
design with ``DesignSpec.uses_fwb``, canonical or composed (e.g. the
``sw+redo+fwb`` ablation point), independently of the log backend.

Each cache line carries an ``fwb`` bit alongside its dirty bit, driving a
three-state machine maintained by the cache controller:

* ``{fwb, dirty} = {0, 0}`` — IDLE: nothing to do;
* ``{fwb, dirty} = {0, 1}`` — FLAG: first scan sets ``fwb`` = 1;
* ``{fwb, dirty} = {1, 1}`` — FWB: second scan forces the write-back and
  resets the line to IDLE.

A line whose dirty bit clears for any other reason (normal eviction,
clwb) drops back to IDLE.  L1 force write-backs push the line into the
LLC; LLC force write-backs post it to NVRAM.

Scan frequency: write-backs must outrun log wrap-around.  The tail can
advance no faster than the NVRAM write bandwidth allows log entries to be
written, so the wrap period is bounded below by
``log_entries / peak_entry_rate`` and the scan interval is that period
divided by a safety factor (two scans are needed to move a line through
FLAG to FWB).  We bound the peak entry rate by the row-conflict write
latency — every log write charged as a conflict — which lands the
Table II machine with a 64K-entry (4 MB) log at a ~3M-cycle period,
matching Figure 11(b).

Scan cost: scanning deposits ``lines * fwb_scan_cost_per_line`` cycles of
debt into the hierarchy; accesses pay it back one cycle at a time
(~3.6% overhead for an 8 MB LLC, Section VI).
"""

from __future__ import annotations

from ..sim.config import SystemConfig
from ..sim.hierarchy import CacheHierarchy
from ..sim.stats import MachineStats
from ..utils import ns_to_cycles


def required_scan_interval(config: SystemConfig) -> float:
    """Scan period (cycles) guaranteeing write-backs beat log wrap-around."""
    logging = config.logging
    if logging.fwb_scan_interval_override is not None:
        return float(logging.fwb_scan_interval_override)
    write_service = ns_to_cycles(
        config.nvram.write_conflict_ns, config.core.clock_ghz
    )
    line = config.line_size
    peak_bytes_per_cycle = config.nvram.num_banks * line / write_service
    peak_entries_per_cycle = peak_bytes_per_cycle / logging.log_entry_size
    wrap_period = logging.log_entries / peak_entries_per_cycle
    return wrap_period / logging.fwb_safety_factor


def required_scan_frequency(config: SystemConfig) -> float:
    """Scans per cycle (the y-axis of Figure 11(b))."""
    return 1.0 / required_scan_interval(config)


class ForceWriteBack:
    """Periodic scanner implementing the FWB state machine."""

    def __init__(
        self,
        config: SystemConfig,
        hierarchy: CacheHierarchy,
        stats: MachineStats,
    ) -> None:
        self._config = config
        self._hierarchy = hierarchy
        self._stats = stats
        self.interval = required_scan_interval(config)
        self.next_scan = self.interval
        self._cost_per_line = config.logging.fwb_scan_cost_per_line
        self.tracer = None
        """Optional tracer (set by the machine's ``tracer`` property);
        emits one ``fwb_scan`` event per tag pass."""

    def maybe_scan(self, now: float) -> None:
        """Run scans that have come due by ``now``."""
        while now >= self.next_scan:
            self.scan(self.next_scan)
            self.next_scan += self.interval

    def scan(self, now: float) -> None:
        """One pass over every cache's tags (the FSM of Figure 5)."""
        self._stats.fwb_scans += 1
        writebacks_before = self._stats.fwb_writebacks
        scanned = 0
        for core_id, l1 in enumerate(self._hierarchy.l1s):
            for line in list(l1.iter_lines()):
                scanned += 1
                self._step_line(line, at_llc=False, core_id=core_id, now=now)
        for line in list(self._hierarchy.llc.iter_lines()):
            scanned += 1
            self._step_line(line, at_llc=True, core_id=-1, now=now)
        self._stats.fwb_lines_scanned += scanned
        self._hierarchy.add_scan_debt(scanned * self._cost_per_line)
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "fwb_scan",
                -1,
                lines=scanned,
                writebacks=self._stats.fwb_writebacks - writebacks_before,
            )

    def _step_line(self, line, at_llc: bool, core_id: int, now: float) -> None:
        if not line.dirty:
            if line.fwb:
                line.fwb = False  # dirty cleared elsewhere: back to IDLE
            return
        if not line.fwb:
            line.fwb = True  # FLAG
            return
        # FWB state: force the write-back.
        if at_llc:
            self._hierarchy.fwb_writeback_llc(line, now)
        else:
            self._hierarchy.fwb_writeback_l1(core_id, line, now)
        self._stats.fwb_writebacks += 1
