"""Post-crash recovery (Section IV-F), hardened against damaged logs.

Recovery is design-agnostic: replay consumes whatever record sides the
design's ``log_content`` axis (:mod:`repro.core.design`) put in the log
— redo values for committed instances, undo values for uncommitted ones
— so the same manager serves every point of the mechanism space, and the
fault campaign exercises it against composed specs as well as the
paper's eight.

Steps, mirroring the paper:

1. Locate the valid log window.  The circular log's torn bit is constant
   within a pass and flips at each wrap, so the window boundary (the tail)
   is the first slot whose torn bit differs from slot 0's — no persistent
   head/tail pointers are needed.  Because the ring overwrites oldest
   entries first, the surviving window is always a *suffix* of log
   history, which is what makes replay sound.
2. Group records into transaction instances (physical transaction IDs are
   reused, so a BEGIN opens a new instance and a COMMIT closes it).  An
   instance is committed iff its COMMIT record lies in the window.
3. Forward pass: re-apply the redo values of committed instances in log
   order ("steal but no force": committed data may never have left the
   caches).  Reverse pass: apply the undo values of uncommitted instances
   ("steal": uncommitted data may already be in NVRAM).
4. Recovery writes bypass the caches and go directly to NVRAM; the log is
   then reset.

Damaged-log hardening (beyond the paper's discussion):

* **Torn entries.**  A log-entry write in flight at the crash may reach
  NVRAM partially.  Entries are classified via the per-record checksum
  (:meth:`~repro.core.logrecord.LogRecord.classify`); a checksum-failing
  entry at the parity frontier is the torn tail and ends the window
  (``torn_records_skipped``).  Dropping it is always safe: the record was
  not durable, and the designs order every record durable *before* its
  data, so a crash one instant earlier would have produced the same log.
* **Corrupt entries.**  A checksum or field failure *inside* the window
  (valid same-parity records follow it) or in the previous-pass remnant
  is counted in ``checksum_failures`` and skipped instead of silently
  truncating the window at the first bad slot.
* **Crash during recovery.**  Replay writes absolute values, so re-running
  an interrupted replay converges; the log reset is made crash-safe by
  first stamping slot 0 with a :func:`~repro.core.logrecord.reset_marker`
  (scanned as "region empty"), then clearing the rest, then clearing the
  marker.  A campaign can interrupt recovery deterministically by passing
  a ``crash_injector`` whose ``recovery_step()`` raises
  :class:`~repro.errors.RecoveryInterrupted` between NVRAM writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import RecoveryError
from ..sim.nvram import NVRAM
from .logrecord import DecodeStatus, LogRecord, RecordKind, reset_marker
from .nvlog import CircularLog


@dataclass
class _Instance:
    """One transaction instance reconstructed from the log window."""

    txid: int
    tid: int = 0
    last_pos: int = -1
    records: list[LogRecord] = field(default_factory=list)
    committed: bool = False


@dataclass
class RecoveryReport:
    """Summary of one recovery pass."""

    records_scanned: int = 0
    window_entries: int = 0
    committed_instances: int = 0
    uncommitted_instances: int = 0
    redo_writes: int = 0
    undo_writes: int = 0
    torn_records_skipped: int = 0
    checksum_failures: int = 0
    reset_markers_seen: int = 0
    commits_inferred: int = 0
    """Open instances whose COMMIT record was lost to log damage but that
    a later record of the same thread proves finished (a thread runs one
    transaction at a time) — replayed as committed instead of undone."""
    committed_ids: set = field(default_factory=set)
    """``(tid, physical txid)`` of each transaction the replay treated as
    committed — for its *newest* instance in the window (physical IDs are
    recycled).  Crash verifiers use this to resolve in-doubt transactions
    (crash inside the commit sequence): the transaction counts as
    committed exactly when its IDs appear here."""

    @property
    def total_writes(self) -> int:
        """NVRAM writes generated during replay."""
        return self.redo_writes + self.undo_writes

    @property
    def damaged_records(self) -> int:
        """Entries the scan refused to replay (torn tail + corruption)."""
        return self.torn_records_skipped + self.checksum_failures


class RecoveryManager:
    """Replays the circular log against a surviving NVRAM image.

    ``verify_checksums=False`` falls back to the paper's bare scheme
    (magic byte + torn bit only, no per-record integrity check) — useful
    for demonstrating what torn or ghost entries do to an unchecked
    recovery.
    """

    def __init__(
        self,
        nvram: NVRAM,
        log: CircularLog,
        verify_checksums: bool = True,
    ) -> None:
        self._nvram = nvram
        self._log = log
        self._verify_checksums = verify_checksums

    @classmethod
    def from_directory(
        cls,
        nvram: NVRAM,
        directory_addr: int,
        verify_checksums: bool = True,
    ) -> "RecoveryManager":
        """Rebuild a manager from the persistent region directory written
        by a :class:`~repro.core.growlog.GrowableCircularLog` — the path a
        cold-restart recovery tool takes when only the NVRAM image
        survives."""
        from .growlog import RegionDirectory

        directory = RegionDirectory(nvram, directory_addr).read()
        if directory is None:
            raise RecoveryError("no log region directory in NVRAM")
        entry_size, regions = directory
        logs = [CircularLog(base, entries, entry_size) for base, entries in regions]
        manager = cls(nvram, logs[-1], verify_checksums)
        manager._log_views = logs
        return manager

    # ------------------------------------------------------------------
    # Window scan
    # ------------------------------------------------------------------
    def _views(self) -> list:
        views = getattr(self, "_log_views", None)
        if views is not None:
            return views
        return self._log.region_views()

    def scan_window(self, report: Optional[RecoveryReport] = None) -> list[LogRecord]:
        """Decode the valid window, oldest record first.

        With a grown log, frozen regions are scanned before the active
        one (creation order = history order).  Damage counters go into
        ``report`` when one is passed.
        """
        if report is None:
            report = RecoveryReport()
        window: list[LogRecord] = []
        for view in self._views():
            window.extend(self._scan_region(view, report))
        return window

    def _scan_region(self, log, report: RecoveryReport) -> list[LogRecord]:
        entries: list = []
        for slot in range(log.num_entries):
            raw = self._nvram.peek(log.entry_addr(slot), log.entry_size)
            entries.append(LogRecord.classify(raw, self._verify_checksums))
        first, first_status = entries[0]
        if first_status is DecodeStatus.RESET_MARKER:
            # Crash mid-reset: replay nothing; recover() re-runs the
            # reset so leftover stale entries cannot resurface later.
            report.reset_markers_seen += 1
            return []
        if first_status is DecodeStatus.EMPTY:
            return []
        # Log writes drain FIFO, so durability is always a *prefix* of
        # append order and in-flight damage (torn entries, or entries
        # reverted to their previous-pass content) clusters at the append
        # frontier — never past it.  The last valid record in slot order
        # therefore always carries the OLD pass's torn parity, which
        # anchors the rest of the scan.  A valid record of the *newer*
        # parity in a position FIFO says cannot be durable is a
        # resurrected tear: an in-flight all-header record (BEGIN/COMMIT)
        # that kept its whole header through a torn write and still
        # checksums.  Such records are dropped, not replayed — they were
        # never durable, their transaction's data never left the caches
        # (data write-back waits on log durability), and wrap protection
        # already forced the displaced slot's data durable.
        old_parity = None
        for record, _status in reversed(entries):
            if record is not None:
                old_parity = record.torn
                break
        if old_parity is None:
            # Slot 0 is damaged and no valid record survives anywhere.
            report.torn_records_skipped += 1
            return []
        if first is None:
            # Slot 0 itself is torn or corrupt: its in-flight overwrite
            # means no current-pass record is durable, so the window is
            # exactly the previous-pass remnant in slot order.
            report.torn_records_skipped += 1
            remnant = []
            for record, status in entries[1:]:
                if record is not None:
                    if record.torn == old_parity:
                        remnant.append(record)
                    else:
                        report.torn_records_skipped += 1
                elif status in (DecodeStatus.CHECKSUM, DecodeStatus.CORRUPT):
                    report.checksum_failures += 1
            return remnant
        if first.torn == old_parity:
            # Slot 0 belongs to the oldest surviving pass: either the
            # ring never durably wrapped, or the crash reverted the wrap
            # itself (every newer-pass write was still in flight).  One
            # pass, slot order = history order.
            return self._scan_single_pass(entries, old_parity, report)
        return self._scan_two_pass(entries, first.torn, report)

    def _scan_single_pass(
        self, entries: list, parity: int, report: RecoveryReport
    ) -> list[LogRecord]:
        window: list[LogRecord] = []
        for index, (record, status) in enumerate(entries):
            if record is not None:
                if record.torn == parity:
                    window.append(record)
                else:
                    report.torn_records_skipped += 1
                continue
            if status is DecodeStatus.RESET_MARKER:
                report.reset_markers_seen += 1
                break
            if status is DecodeStatus.EMPTY:
                break
            # Torn or corrupt: mid-window corruption if valid same-pass
            # records follow; the torn append frontier otherwise.
            if any(
                later is not None and later.torn == parity
                for later, _status in entries[index + 1:]
            ):
                report.checksum_failures += 1
            else:
                report.torn_records_skipped += 1
                break
        return window

    def _scan_two_pass(
        self, entries: list, parity: int, report: RecoveryReport
    ) -> list[LogRecord]:
        # ``parity`` is the current (newest) pass; the durable part of
        # that pass is a contiguous run from slot 0.  The run ends at the
        # first old-parity record (the wrap boundary or a reverted
        # in-flight slot — either way the durable prefix is over), at an
        # empty slot, or at the torn append frontier.
        num = len(entries)
        boundary = num
        index = 1
        while index < num:
            record, status = entries[index]
            if record is not None:
                if record.torn != parity:
                    boundary = index
                    break
                index += 1
                continue
            if status in (DecodeStatus.EMPTY, DecodeStatus.RESET_MARKER):
                if status is DecodeStatus.RESET_MARKER:
                    report.reset_markers_seen += 1
                boundary = index
                break
            # Torn or corrupt: mid-window corruption iff the next valid
            # record continues the current pass; the frontier otherwise.
            nxt = next(
                (r for r, _s in entries[index + 1:] if r is not None), None
            )
            if nxt is not None and nxt.torn == parity:
                report.checksum_failures += 1
                index += 1
                continue
            report.torn_records_skipped += 1
            boundary = index
            break
        current_pass = [
            record
            for record, _status in entries[:boundary]
            if record is not None and record.torn == parity
        ]
        previous_pass = []
        for record, status in entries[boundary:]:
            if record is not None:
                if record.torn != parity:
                    previous_pass.append(record)
                else:
                    # Current-parity record past the frontier: a
                    # resurrected tear, non-durable by FIFO order.
                    report.torn_records_skipped += 1
            elif status in (DecodeStatus.CHECKSUM, DecodeStatus.CORRUPT):
                report.checksum_failures += 1
        return previous_pass + current_pass

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def recover(
        self,
        reset_log: bool = True,
        crash_injector=None,
    ) -> RecoveryReport:
        """Replay the log; optionally clear it afterwards.

        ``crash_injector`` (a :class:`~repro.faults.crashpoints
        .FaultMonitor` or anything with a ``recovery_step()`` method) is
        consulted after every recovery NVRAM write and may raise
        :class:`~repro.errors.RecoveryInterrupted` to simulate a crash
        mid-recovery; a subsequent full :meth:`recover` converges to the
        same state as an uninterrupted one.
        """
        report = RecoveryReport(
            records_scanned=sum(view.num_entries for view in self._views())
        )
        window = self.scan_window(report)
        report.window_entries = len(window)
        open_instances: dict[int, _Instance] = {}
        ordered: list[_Instance] = []

        for pos, record in enumerate(window):
            if record.kind == RecordKind.BEGIN:
                instance = _Instance(record.txid, record.tid, pos)
                open_instances[record.txid] = instance
                ordered.append(instance)
            elif record.kind == RecordKind.DATA:
                instance = open_instances.get(record.txid)
                if instance is None:
                    # Head of this transaction was overwritten; any record
                    # still here belongs to the newest suffix of history.
                    instance = _Instance(record.txid, record.tid, pos)
                    open_instances[record.txid] = instance
                    ordered.append(instance)
                instance.records.append(record)
            elif record.kind == RecordKind.COMMIT:
                instance = open_instances.pop(record.txid, None)
                if instance is None:
                    instance = _Instance(record.txid, record.tid, pos)
                    ordered.append(instance)
                instance.committed = True
            instance.tid = record.tid
            instance.last_pos = pos

        # Lost-COMMIT inference: a thread runs one transaction at a time,
        # so an open instance followed by a *later* record of the same
        # thread necessarily finished — its COMMIT record was destroyed
        # (torn overwrite) or overwritten by the wrap.  Replaying it as
        # committed is the only sound choice: its durable data must not
        # be rolled back.  Truly in-flight transactions sit at the append
        # frontier, have no same-thread successor, and are still undone.
        newest_tid_pos: dict[int, int] = {}
        for pos, record in enumerate(window):
            newest_tid_pos[record.tid] = pos
        for instance in ordered:
            if instance.committed:
                continue
            if newest_tid_pos.get(instance.tid, -1) > instance.last_pos:
                instance.committed = True
                report.commits_inferred += 1

        # Commit state of the *newest* instance per (tid, physical txid):
        # a fresh BEGIN for recycled IDs supersedes an older commit.
        final_state: dict[tuple[int, int], bool] = {}
        for instance in ordered:
            final_state[(instance.tid, instance.txid)] = instance.committed
        report.committed_ids = {
            ids for ids, done in final_state.items() if done
        }

        # Forward pass: redo committed instances in log order.
        for instance in ordered:
            if not instance.committed:
                continue
            report.committed_instances += 1
            for record in instance.records:
                if record.has_redo:
                    self._recovery_write(record.addr, record.redo, crash_injector)
                    report.redo_writes += 1

        # Reverse pass: undo uncommitted instances, newest record first.
        for instance in reversed(ordered):
            if instance.committed:
                continue
            report.uncommitted_instances += 1
            for record in reversed(instance.records):
                if record.has_undo:
                    self._recovery_write(record.addr, record.undo, crash_injector)
                    report.undo_writes += 1

        if reset_log:
            self._reset_log(crash_injector)
        return report

    def _recovery_write(self, addr: int, data: bytes, crash_injector) -> None:
        self._nvram.poke(addr, data)
        if crash_injector is not None:
            crash_injector.recovery_step()

    def _reset_log(self, crash_injector=None) -> None:
        """Invalidate every entry and reset the ring(s) to a fresh state.

        The multi-write reset is crash-safe: slot 0 is first stamped with
        the reset marker (a region whose slot 0 holds the marker scans as
        empty), the remaining entries are cleared, and the marker is
        cleared last.  A crash anywhere in between leaves either a fully
        valid window (marker not yet durable — but slot 0 is always the
        first write, so only a torn marker is possible, which classify
        treats as a torn slot 0 over an otherwise intact window) or a
        marked-empty region; a second recovery converges either way.
        """
        for view in self._views():
            marker = reset_marker(view.entry_size)
            zero = bytes(view.entry_size)
            self._recovery_write(view.entry_addr(0), marker, crash_injector)
            for slot in range(1, view.num_entries):
                self._recovery_write(view.entry_addr(slot), zero, crash_injector)
            self._recovery_write(view.entry_addr(0), zero, crash_injector)
        # Reset the in-memory ring state on every view — frozen grown
        # regions and directory-reconstructed views included, so a
        # manager built via from_directory leaves no stale tail/parity
        # behind on any region object a caller may keep using.
        views = list(self._views())
        if self._log not in views:
            views.append(self._log)
        for view in views:
            view.tail = 0
            view.head = 0
            view.parity = 1
            view.wrapped = False
