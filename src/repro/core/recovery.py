"""Post-crash recovery (Section IV-F).

Steps, mirroring the paper:

1. Locate the valid log window.  The circular log's torn bit is constant
   within a pass and flips at each wrap, so the window boundary (the tail)
   is the first slot whose torn bit differs from slot 0's — no persistent
   head/tail pointers are needed.  Because the ring overwrites oldest
   entries first, the surviving window is always a *suffix* of log
   history, which is what makes replay sound.
2. Group records into transaction instances (physical transaction IDs are
   reused, so a BEGIN opens a new instance and a COMMIT closes it).  An
   instance is committed iff its COMMIT record lies in the window.
3. Forward pass: re-apply the redo values of committed instances in log
   order ("steal but no force": committed data may never have left the
   caches).  Reverse pass: apply the undo values of uncommitted instances
   ("steal": uncommitted data may already be in NVRAM).
4. Recovery writes bypass the caches and go directly to NVRAM; the log is
   then reset.

Entries are written atomically by the simulated memory controller, so a
partially-written ("torn") entry cannot occur here; the torn bit's role
is window detection, as in the paper's recovery discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RecoveryError
from ..sim.nvram import NVRAM
from .logrecord import LogRecord, RecordKind
from .nvlog import CircularLog


@dataclass
class _Instance:
    """One transaction instance reconstructed from the log window."""

    txid: int
    records: list[LogRecord] = field(default_factory=list)
    committed: bool = False


@dataclass
class RecoveryReport:
    """Summary of one recovery pass."""

    records_scanned: int = 0
    window_entries: int = 0
    committed_instances: int = 0
    uncommitted_instances: int = 0
    redo_writes: int = 0
    undo_writes: int = 0

    @property
    def total_writes(self) -> int:
        """NVRAM writes generated during replay."""
        return self.redo_writes + self.undo_writes


class RecoveryManager:
    """Replays the circular log against a surviving NVRAM image."""

    def __init__(self, nvram: NVRAM, log: CircularLog) -> None:
        self._nvram = nvram
        self._log = log

    @classmethod
    def from_directory(cls, nvram: NVRAM, directory_addr: int) -> "RecoveryManager":
        """Rebuild a manager from the persistent region directory written
        by a :class:`~repro.core.growlog.GrowableCircularLog` — the path a
        cold-restart recovery tool takes when only the NVRAM image
        survives."""
        from .growlog import RegionDirectory

        directory = RegionDirectory(nvram, directory_addr).read()
        if directory is None:
            raise RecoveryError("no log region directory in NVRAM")
        entry_size, regions = directory
        logs = [CircularLog(base, entries, entry_size) for base, entries in regions]
        manager = cls(nvram, logs[-1])
        manager._log_views = logs
        return manager

    # ------------------------------------------------------------------
    # Window scan
    # ------------------------------------------------------------------
    def _views(self) -> list:
        views = getattr(self, "_log_views", None)
        if views is not None:
            return views
        return self._log.region_views()

    def scan_window(self) -> list[LogRecord]:
        """Decode the valid window, oldest record first.

        With a grown log, frozen regions are scanned before the active
        one (creation order = history order).
        """
        window: list[LogRecord] = []
        for view in self._views():
            window.extend(self._scan_region(view))
        return window

    def _scan_region(self, log) -> list[LogRecord]:
        entries: list = []
        for slot in range(log.num_entries):
            raw = self._nvram.peek(log.entry_addr(slot), log.entry_size)
            entries.append(LogRecord.decode(raw))
        first = entries[0]
        if first is None:
            return []
        parity = first.torn
        boundary = log.num_entries
        for slot in range(1, log.num_entries):
            record = entries[slot]
            if record is None or record.torn != parity:
                boundary = slot
                break
        current_pass = [record for record in entries[:boundary] if record is not None]
        previous_pass = [
            record
            for record in entries[boundary:]
            if record is not None and record.torn != parity
        ]
        return previous_pass + current_pass

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def recover(self, reset_log: bool = True) -> RecoveryReport:
        """Replay the log; optionally clear it afterwards."""
        window = self.scan_window()
        report = RecoveryReport(
            records_scanned=self._log.num_entries, window_entries=len(window)
        )
        open_instances: dict[int, _Instance] = {}
        ordered: list[_Instance] = []

        for record in window:
            if record.kind == RecordKind.BEGIN:
                instance = _Instance(record.txid)
                open_instances[record.txid] = instance
                ordered.append(instance)
            elif record.kind == RecordKind.DATA:
                instance = open_instances.get(record.txid)
                if instance is None:
                    # Head of this transaction was overwritten; any record
                    # still here belongs to the newest suffix of history.
                    instance = _Instance(record.txid)
                    open_instances[record.txid] = instance
                    ordered.append(instance)
                instance.records.append(record)
            elif record.kind == RecordKind.COMMIT:
                instance = open_instances.pop(record.txid, None)
                if instance is None:
                    instance = _Instance(record.txid)
                    ordered.append(instance)
                instance.committed = True

        # Forward pass: redo committed instances in log order.
        for instance in ordered:
            if not instance.committed:
                continue
            report.committed_instances += 1
            for record in instance.records:
                if record.has_redo:
                    self._nvram.poke(record.addr, record.redo)
                    report.redo_writes += 1

        # Reverse pass: undo uncommitted instances, newest record first.
        for instance in reversed(ordered):
            if instance.committed:
                continue
            report.uncommitted_instances += 1
            for record in reversed(instance.records):
                if record.has_undo:
                    self._nvram.poke(record.addr, record.undo)
                    report.undo_writes += 1

        if reset_log:
            self._reset_log()
        return report

    def _reset_log(self) -> None:
        """Invalidate every entry and reset the ring(s) to a fresh state."""
        for view in self._views():
            zero = bytes(view.entry_size)
            for slot in range(view.num_entries):
                self._nvram.poke(view.entry_addr(slot), zero)
        self._log.tail = 0
        self._log.head = 0
        self._log.parity = 1
        self._log.wrapped = False
