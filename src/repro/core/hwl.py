"""Hardware Logging (HWL) engine (Section III-B).

In the mechanism space (:mod:`repro.core.design`) this engine *is* the
``hw`` log-backend axis value: the machine instantiates it whenever
``DesignSpec.uses_hw_logging`` holds, and the ``log_content`` axis
selects which record sides (:meth:`record_undo` / :meth:`record_redo`)
are driven.

HWL piggybacks on the write-back write-allocate cache policies: every
persistent store already brings the *old* value (the write-allocated line)
and the *new* value (the in-flight store) together in the L1 cache
controller, so the engine assembles an undo+redo record with no extra
instructions and no extra data movement in the pipeline.  Records flow
through the (optional) volatile log buffer to the circular log in NVRAM.

Ordering guarantee: the engine returns the record's durability time and
the machine stamps it on the cache line as ``log_release`` — the line
cannot be written back to NVRAM earlier.  Because the log buffer depth is
below the minimum store traversal latency, this release time is in
practice already reached by the time the line could leave the hierarchy.

Wrap-around: when an append would overwrite a log entry whose data line
is still dirty in the hierarchy, the engine forces that line back first
(and the stall is charged) — the safety path the FWB scanner exists to
make rare.
"""

from __future__ import annotations

from typing import Optional

from ..sim.hierarchy import CacheHierarchy
from ..sim.stats import MachineStats
from .logrecord import LogRecord, RecordKind
from .registers import SpecialRegisters


class HardwareLogging:
    """Generates undo/redo log records for persistent stores."""

    def __init__(
        self,
        router,
        hierarchy: CacheHierarchy,
        registers: SpecialRegisters,
        stats: MachineStats,
        record_undo: bool = True,
        record_redo: bool = True,
        protect_wrap: bool = True,
    ) -> None:
        self._router = router
        self._hierarchy = hierarchy
        self._registers = registers
        self._stats = stats
        self._record_undo = record_undo
        self._record_redo = record_redo
        self._protect_wrap = protect_wrap
        self._started: set[int] = set()
        self.tracer = None
        """Optional tracer (set by the machine's ``tracer`` property);
        emits one ``log_place`` event per appended record."""

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def on_tx_begin(self, txid: int, tid: int, now: float) -> None:
        """tx_begin: allocate a physical transaction ID."""
        self._registers.acquire_txid(txid)

    def on_store(
        self,
        core_id: int,
        txid: int,
        tid: int,
        addr: int,
        old: bytes,
        new: bytes,
        line_addr: int,
        now: float,
    ) -> tuple[float, float]:
        """Log one word-sized persistent store.

        ``old`` comes from the write-allocated cache line, ``new`` from
        the store itself.  Returns (stall_cycles, log_release_time).  A
        BEGIN header record is emitted before the first store of each
        transaction (step 1a of Section III-E).
        """
        physical = self._registers.physical_txid(txid)
        stall = 0.0
        if physical not in self._started:
            self._started.add(physical)
            header = LogRecord(RecordKind.BEGIN, physical, tid)
            header_stall, _ = self._append(header, tid, now)
            stall += header_stall
            now += header_stall
        record = LogRecord(
            RecordKind.DATA,
            physical,
            tid,
            addr,
            undo=old if self._record_undo else b"",
            redo=new if self._record_redo else b"",
        )
        data_stall, release = self._append(record, tid, now)
        return stall + data_stall, release

    def on_tx_commit(self, txid: int, tid: int, now: float) -> float:
        """tx_commit: append the commit record; the transaction is
        committed once that record is durable (the "free ride" of
        Section III-D — no fence, no write-back).  Returns the commit
        durability time."""
        physical = self._registers.physical_txid(txid)
        stall, completion = (0.0, now)
        if physical in self._started:
            commit = LogRecord(RecordKind.COMMIT, physical, tid)
            stall, completion = self._append(commit, tid, now)
        self._started.discard(physical)
        self._registers.release_txid(txid)
        return completion

    # ------------------------------------------------------------------
    def _append(self, record: LogRecord, tid: int, now: float) -> tuple[float, float]:
        log = self._router.log_for(tid)
        placed = log.place(record)
        stall = 0.0
        displaced_dirty = False
        force_completion = None
        if placed.displaced_line is not None and self._hierarchy.is_line_dirty(
            placed.displaced_line
        ):
            displaced_dirty = True
            if self._protect_wrap:
                completion = self._hierarchy.force_writeback(placed.displaced_line, now)
                self._stats.log_wrap_forced_writebacks += 1
                if completion is not None:
                    force_completion = completion
                    stall = max(0.0, completion - now)
                    now += stall
        push_stall, release = self._router.buffer_for(tid).push(
            placed.addr, placed.payload, now
        )
        self._registers.set_log_pointers(log.head, log.tail)
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "log_place",
                -1,
                kind=record.kind.name,
                txid=record.txid,
                tid=tid,
                addr=record.addr if record.kind is RecordKind.DATA else None,
                undo=record.undo.hex(),
                redo=record.redo.hex(),
                entry_addr=placed.addr,
                slot=placed.slot,
                base=log.base,
                torn=placed.payload[0] & 1,
                displaced_line=placed.displaced_line,
                displaced_dirty=displaced_dirty,
                force_completion=force_completion,
                release=release,
            )
        return stall + push_stall, release

    @property
    def active_transactions(self) -> int:
        """Transactions that have logged at least one store (visibility)."""
        return len(self._started)

    def retune(self, record_undo: bool, record_redo: bool, protect_wrap: bool) -> None:
        """Re-select record sides/wrap protection at a safe-switch barrier.

        Only legal with no in-flight transactions (the barrier quiesces
        them first): a record's sides must not change mid-transaction or
        recovery would see a mixed-content undo/redo stream.
        """
        if self._started:
            raise RuntimeError(
                "cannot retune HWL with transactions in flight "
                f"({len(self._started)} active)"
            )
        self._record_undo = record_undo
        self._record_redo = record_redo
        self._protect_wrap = protect_wrap
