"""``log_grow()``: extra log regions for oversized transactions.

Section IV-A of the paper offers two defences against a single
transaction overflowing the circular log: allocate a large-enough log up
front (``MAX_TX_SIZE``), or let a library function ``log_grow()``
"allocate additional log regions when the log is filled by an
uncommitted transaction".  This module implements the second option:

* :class:`GrowableCircularLog` behaves like
  :class:`~repro.core.nvlog.CircularLog`, but when an append would
  overwrite an entry that still belongs to an *active* transaction it
  switches to a freshly allocated region instead (old regions freeze and
  remain valid for recovery);
* a small *region directory* is persisted in NVRAM so that recovery can
  find every region after a crash (the paper stores the equivalent
  pointers "as part of the log structure");
* :meth:`RecoveryManager.scan_window` walks regions in creation order,
  so replay semantics are unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional

from typing import TYPE_CHECKING

from ..errors import LogError
from .logrecord import LogRecord, RecordKind
from .nvlog import CircularLog, PlacedRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.nvram import NVRAM

DIRECTORY_MAGIC = 0x474C4F47_52444952  # "GLOGRDIR"
DIRECTORY_BYTES = 512
_HEADER_WORDS = 3  # magic, count, entry_size
_WORDS_PER_REGION = 2
MAX_REGIONS = (DIRECTORY_BYTES // 8 - _HEADER_WORDS) // _WORDS_PER_REGION


class RegionDirectory:
    """The persistent list of log regions (base, entries) in NVRAM."""

    def __init__(self, nvram: "NVRAM", addr: int) -> None:
        self._nvram = nvram
        self.addr = addr

    def write(self, regions: list, entry_size: int) -> None:
        """Persist the region list (system-software metadata update)."""
        if len(regions) > MAX_REGIONS:
            raise LogError(f"more than {MAX_REGIONS} log regions")
        buf = bytearray(DIRECTORY_BYTES)
        buf[0:8] = DIRECTORY_MAGIC.to_bytes(8, "little")
        buf[8:16] = len(regions).to_bytes(8, "little")
        buf[16:24] = entry_size.to_bytes(8, "little")
        for index, (base, entries) in enumerate(regions):
            offset = 24 + index * 16
            buf[offset:offset + 8] = base.to_bytes(8, "little")
            buf[offset + 8:offset + 16] = entries.to_bytes(8, "little")
        self._nvram.poke(self.addr, bytes(buf))

    def read(self) -> Optional[tuple]:
        """(entry_size, region list) from NVRAM, or None when absent."""
        raw = self._nvram.peek(self.addr, DIRECTORY_BYTES)
        if int.from_bytes(raw[0:8], "little") != DIRECTORY_MAGIC:
            return None
        count = int.from_bytes(raw[8:16], "little")
        if count > MAX_REGIONS:
            raise LogError("corrupt log region directory")
        entry_size = int.from_bytes(raw[16:24], "little")
        regions = []
        for index in range(count):
            offset = 24 + index * 16
            base = int.from_bytes(raw[offset:offset + 8], "little")
            entries = int.from_bytes(raw[offset + 8:offset + 16], "little")
            regions.append((base, entries))
        return entry_size, regions


class GrowableCircularLog(CircularLog):
    """A circular log that grows instead of overwriting active records.

    ``region_allocator(size_bytes)`` returns the base address of a fresh
    region; ``activity_token(physical_txid)`` consults the transaction-ID
    registers and returns the transaction's generation token while it is
    active (physical IDs recycle, so the token — not the ID — identifies
    the live instance).  Earlier regions freeze (append-complete) and
    stay valid for recovery.
    """

    def __init__(
        self,
        base: int,
        num_entries: int,
        entry_size: int,
        line_size: int,
        region_allocator: Callable[[int], int],
        activity_token: Callable[[int], Optional[int]],
        directory: RegionDirectory,
    ) -> None:
        super().__init__(base, num_entries, entry_size, line_size)
        self._allocator = region_allocator
        self._activity_token = activity_token
        self._directory = directory
        self._frozen: list[CircularLog] = []
        self._slot_tokens: list = [None] * num_entries
        self.grow_count = 0
        self._directory.write(self._region_list(), entry_size)

    def _region_list(self) -> list:
        regions = [(log.base, log.num_entries) for log in self._frozen]
        regions.append((self.base, self.num_entries))
        return regions

    def place(self, record: LogRecord) -> PlacedRecord:
        """Place ``record``; grow first if it would overwrite an active
        transaction instance's entry."""
        slot = self.tail
        if self.wrapped and self._slot_tokens[slot] is not None:
            txid, token = self._slot_tokens[slot]
            if token is not None and self._activity_token(txid) == token:
                self._grow()
                slot = self.tail
        placed = super().place(record)
        self._slot_tokens[placed.slot] = (record.txid, self._activity_token(record.txid))
        return placed

    def _grow(self) -> None:
        """Freeze the current ring and continue in a fresh region."""
        frozen = CircularLog(self.base, self.num_entries, self.entry_size)
        frozen.tail = self.tail
        frozen.parity = self.parity
        frozen.wrapped = self.wrapped
        self._frozen.append(frozen)
        self.base = self._allocator(self.size_bytes)
        self.tail = 0
        self.head = 0
        self.parity = 1
        self.wrapped = False
        self._slot_tokens = [None] * self.num_entries
        self.grow_count += 1
        self._directory.write(self._region_list(), self.entry_size)

    def region_views(self) -> list:
        """All regions in creation order (frozen first, active last)."""
        return [*self._frozen, self]

    @property
    def total_regions(self) -> int:
        """Number of regions including the active one."""
        return len(self._frozen) + 1
