"""The composable persistence-design mechanism space.

The paper's eight evaluated designs (Section VI) are points in a small
mechanism space, not eight unrelated artifacts.  Each design is the
composition of four orthogonal axes:

* **log backend** — who generates log records: nobody (``none``), the
  pipeline as ordinary instructions (``sw``), or the HWL engine inside
  the cache hierarchy (``hw``);
* **log content** — what a DATA record carries: old values (``undo``),
  new values (``redo``), or both (``undo+redo``);
* **write-back discipline** — how dirty persistent lines reach NVRAM:
  natural evictions only (``none``), explicit ``clwb`` over the write
  set at commit (``clwb``), or the hardware force-write-back scanner
  (``fwb``);
* **commit protocol** — whether the commit point is tied to durability
  (``fenced``) or optimistically reported at the core clock
  (``instant``).

:class:`DesignSpec` is the frozen composition; every predicate the
simulator consults (``persistence_guaranteed``, ``protects_log_wrap``,
``defers_in_place_stores``, …) is *derived* from the combination instead
of enumerated per design.  :data:`DESIGNS` registers the paper's eight
names as canonical specs and additionally parses free-form mechanism
strings such as ``"hw+undo+clwb"`` or ``"sw+redo+fwb"``, which is what
lets ``repro ablate`` sweep arbitrary grids of the space.
"""

from __future__ import annotations

import dataclasses
import difflib
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple


class LogBackend(enum.Enum):
    """Who generates log records."""

    NONE = "none"
    SOFTWARE = "sw"
    HARDWARE = "hw"


class LogContent(enum.Enum):
    """What a DATA log record carries."""

    NONE = "none"
    UNDO = "undo"
    REDO = "redo"
    UNDO_REDO = "undo+redo"


class Writeback(enum.Enum):
    """How dirty persistent cache lines are forced to NVRAM."""

    NONE = "none"
    CLWB = "clwb"
    FWB = "fwb"


class CommitProtocol(enum.Enum):
    """Whether the reported commit point is tied to durability."""

    INSTANT = "instant"
    FENCED = "fenced"


@dataclass(frozen=True)
class DesignSpec:
    """One point in the mechanism space.

    Equality and hashing use only the four mechanism axes — ``name`` is
    presentation metadata, so a registered canonical design and an
    anonymous spec with the same mechanisms compare (and cache) equal.
    """

    log_backend: LogBackend
    log_content: LogContent
    writeback: Writeback
    commit: CommitProtocol
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.log_backend is LogBackend.NONE:
            if self.log_content is not LogContent.NONE:
                raise ValueError(
                    "a design without a log backend cannot carry log "
                    f"content {self.log_content.value!r}"
                )
            if self.writeback is not Writeback.NONE:
                raise ValueError(
                    "a design without a log backend has nothing to order "
                    f"write-backs against (writeback={self.writeback.value!r})"
                )
            if self.commit is not CommitProtocol.FENCED:
                pass  # instant is the only meaningful choice; accept it
        elif self.log_content is LogContent.NONE:
            raise ValueError(
                f"backend {self.log_backend.value!r} requires log content "
                "(undo, redo, or undo+redo)"
            )
        if not self.name:
            object.__setattr__(self, "name", self.mechanism_string())

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    @property
    def value(self) -> str:
        """Display name (legacy ``Policy.value`` alias)."""
        return self.name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    def mechanism_string(self) -> str:
        """Canonical ``backend+content+writeback[+commit]`` spelling.

        Round-trips through :func:`parse_design`.  Default tokens are
        kept explicit except the ``fenced`` commit (the common case).
        """
        if self.log_backend is LogBackend.NONE:
            return "none"
        parts = [self.log_backend.value]
        parts.extend(self.log_content.value.split("+"))
        if self.writeback is not Writeback.NONE:
            parts.append(self.writeback.value)
        else:
            parts.append("nowb")
        if self.commit is CommitProtocol.INSTANT:
            parts.append("instant")
        return "+".join(parts)

    # ------------------------------------------------------------------
    # Structural predicates (all derived; nothing enumerated per design)
    # ------------------------------------------------------------------
    @property
    def uses_hw_logging(self) -> bool:
        """True when the HWL engine generates log records in hardware."""
        return self.log_backend is LogBackend.HARDWARE

    @property
    def uses_sw_logging(self) -> bool:
        """True when logging executes as instructions in the pipeline."""
        return self.log_backend is LogBackend.SOFTWARE

    @property
    def logs_undo(self) -> bool:
        """True when old values are logged."""
        return self.log_content in (LogContent.UNDO, LogContent.UNDO_REDO)

    @property
    def logs_redo(self) -> bool:
        """True when new values are logged."""
        return self.log_content in (LogContent.REDO, LogContent.UNDO_REDO)

    @property
    def uses_clwb_at_commit(self) -> bool:
        """True when transactions issue clwb over their write set."""
        return self.writeback is Writeback.CLWB

    @property
    def uses_fwb(self) -> bool:
        """True when the hardware FWB scanner is active."""
        return self.writeback is Writeback.FWB

    @property
    def defers_in_place_stores(self) -> bool:
        """Software redo-only logging: in-place stores wait for log
        completion (the Figure 1(b) memory barrier)."""
        return self.uses_sw_logging and self.log_content is LogContent.REDO

    @property
    def persistence_guaranteed(self) -> bool:
        """True when a crash at any instant is recoverable.

        Derived from the mechanisms:

        * no log, or an ``instant`` commit, guarantees nothing;
        * hardware logging recovers at any instant iff records carry
          **both** undo (for stolen lines) and redo (for un-forced
          lines) — the write-back discipline only bounds how often log
          wrap must force lines, never safety;
        * software redo logging is recoverable once the fenced redo log
          is the commit point (wrap protection covers laggard data);
        * software undo-only logging additionally needs ``clwb`` at
          commit, because the data itself must be durable before the
          commit record — there is no redo value to replay.
        """
        if self.log_backend is LogBackend.NONE:
            return False
        if self.commit is not CommitProtocol.FENCED:
            return False
        if self.log_backend is LogBackend.HARDWARE:
            return self.logs_undo and self.logs_redo
        if self.logs_redo:
            return True
        return self.writeback is Writeback.CLWB

    @property
    def protects_log_wrap(self) -> bool:
        """True when overwriting a log entry forces its data line durable."""
        return self.persistence_guaranteed

    #: The derived predicates, in a stable order.  This is the complete
    #: behavioural surface a symbolic consumer may depend on: anything a
    #: simulator component branches on is (by construction) one of these.
    PREDICATES = (
        "uses_hw_logging",
        "uses_sw_logging",
        "logs_undo",
        "logs_redo",
        "uses_clwb_at_commit",
        "uses_fwb",
        "defers_in_place_stores",
        "persistence_guaranteed",
        "protects_log_wrap",
    )

    def predicate_table(self) -> dict:
        """Every derived predicate as a flat ``name -> bool`` mapping.

        The static verifier (:mod:`repro.sanitizer.static`) interprets a
        design symbolically: it never instantiates a machine, only reads
        this table (plus :attr:`commit`) to decide which persist-state
        transitions the mechanisms perform.  Exposing the predicates as
        data also lets reports show *why* a verdict holds.
        """
        table = {name: getattr(self, name) for name in self.PREDICATES}
        table["fenced_commit"] = self.commit is CommitProtocol.FENCED
        return table

    # ------------------------------------------------------------------
    # Identity for caching
    # ------------------------------------------------------------------
    def key_material(self) -> dict:
        """JSON-ready mechanism identity for content-addressed caches.

        Excludes :attr:`name`: a canonical design and an anonymous spec
        with identical mechanisms produce identical stats, so they must
        share cache entries — while specs differing in *any* mechanism
        (e.g. only the write-back discipline) must never collide.
        """
        return {
            "log_backend": self.log_backend.value,
            "log_content": self.log_content.value,
            "writeback": self.writeback.value,
            "commit": self.commit.value,
        }

    def named(self, name: str) -> "DesignSpec":
        """A copy of this spec carrying ``name`` (mechanisms unchanged)."""
        return dataclasses.replace(self, name=name)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_BACKEND_TOKENS = {
    "hw": LogBackend.HARDWARE,
    "hardware": LogBackend.HARDWARE,
    "sw": LogBackend.SOFTWARE,
    "software": LogBackend.SOFTWARE,
    "none": LogBackend.NONE,
}
_WRITEBACK_TOKENS = {
    "clwb": Writeback.CLWB,
    "fwb": Writeback.FWB,
    "nowb": Writeback.NONE,
}
_COMMIT_TOKENS = {
    "fenced": CommitProtocol.FENCED,
    "instant": CommitProtocol.INSTANT,
}


def parse_design(text: str) -> DesignSpec:
    """Parse a ``+``-joined mechanism string into a :class:`DesignSpec`.

    Token grammar (order-free after the backend): a backend (``hw`` /
    ``sw`` / ``none``), content tokens (``undo``, ``redo``, or both),
    an optional write-back token (``clwb`` / ``fwb`` / ``nowb``,
    default none), and an optional commit token (``fenced`` /
    ``instant``, default fenced).  Examples::

        hw+undo+redo+clwb   the paper's hwl
        sw+redo+fwb         software redo logging under the FWB scanner
        hw+undo             hardware undo-only, natural evictions
    """
    tokens = [token.strip().lower() for token in text.split("+") if token.strip()]
    if not tokens:
        raise ValueError("empty design spec")
    backend = _BACKEND_TOKENS.get(tokens[0])
    if backend is None:
        raise ValueError(
            f"design spec {text!r} must start with a backend token "
            "(hw, sw, or none)"
        )
    undo = redo = False
    writeback = Writeback.NONE
    commit = None
    for token in tokens[1:]:
        if token == "undo":
            undo = True
        elif token == "redo":
            redo = True
        elif token in _WRITEBACK_TOKENS:
            writeback = _WRITEBACK_TOKENS[token]
        elif token in _COMMIT_TOKENS:
            commit = _COMMIT_TOKENS[token]
        else:
            raise ValueError(f"unknown mechanism token {token!r} in {text!r}")
    if undo and redo:
        content = LogContent.UNDO_REDO
    elif undo:
        content = LogContent.UNDO
    elif redo:
        content = LogContent.REDO
    else:
        content = LogContent.NONE
    if commit is None:
        commit = (
            CommitProtocol.INSTANT
            if backend is LogBackend.NONE
            else CommitProtocol.FENCED
        )
    return DesignSpec(backend, content, writeback, commit)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class DesignRegistry:
    """Named design specs, plus mechanism-string fallback resolution."""

    def __init__(self) -> None:
        self._by_name: Dict[str, DesignSpec] = {}

    def register(self, name: str, spec: DesignSpec) -> DesignSpec:
        """Register ``spec`` under ``name``; returns the named spec."""
        if name in self._by_name:
            raise ValueError(f"design {name!r} is already registered")
        named = spec.named(name)
        self._by_name[name] = named
        return named

    def names(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._by_name.values())

    def get(self, name: str) -> DesignSpec:
        """The registered spec for ``name`` (ValueError with suggestions)."""
        spec = self._by_name.get(name)
        if spec is None:
            raise ValueError(self._unknown(name))
        return spec

    def resolve(self, text: str) -> DesignSpec:
        """A registered name, else a parsed mechanism string.

        Registered names win (``"fwb"`` is the paper's full design, not
        a bare write-back token), so canonical results always carry
        their paper name.
        """
        spec = self._by_name.get(text)
        if spec is not None:
            return spec
        try:
            return parse_design(text)
        except ValueError:
            raise ValueError(self._unknown(text)) from None

    def _unknown(self, name: str) -> str:
        suggestions = difflib.get_close_matches(name, self._by_name, n=3)
        hint = f"; did you mean {', '.join(map(repr, suggestions))}?" if suggestions else ""
        return (
            f"unknown design {name!r}{hint} "
            f"(registered: {', '.join(self._by_name)}; or compose one, "
            "e.g. 'hw+undo+clwb' or 'sw+redo+fwb')"
        )


#: The global registry carrying the paper's eight canonical designs.
DESIGNS = DesignRegistry()

NON_PERS = DESIGNS.register(
    "non-pers",
    DesignSpec(LogBackend.NONE, LogContent.NONE, Writeback.NONE, CommitProtocol.INSTANT),
)
UNSAFE_BASE = DESIGNS.register(
    "unsafe-base",
    DesignSpec(
        LogBackend.SOFTWARE, LogContent.UNDO, Writeback.NONE, CommitProtocol.INSTANT
    ),
)
REDO_CLWB = DESIGNS.register(
    "redo-clwb",
    DesignSpec(
        LogBackend.SOFTWARE, LogContent.REDO, Writeback.CLWB, CommitProtocol.FENCED
    ),
)
UNDO_CLWB = DESIGNS.register(
    "undo-clwb",
    DesignSpec(
        LogBackend.SOFTWARE, LogContent.UNDO, Writeback.CLWB, CommitProtocol.FENCED
    ),
)
HW_RLOG = DESIGNS.register(
    "hw-rlog",
    DesignSpec(
        LogBackend.HARDWARE, LogContent.REDO, Writeback.NONE, CommitProtocol.FENCED
    ),
)
HW_ULOG = DESIGNS.register(
    "hw-ulog",
    DesignSpec(
        LogBackend.HARDWARE, LogContent.UNDO, Writeback.NONE, CommitProtocol.FENCED
    ),
)
HWL = DESIGNS.register(
    "hwl",
    DesignSpec(
        LogBackend.HARDWARE, LogContent.UNDO_REDO, Writeback.CLWB, CommitProtocol.FENCED
    ),
)
FWB = DESIGNS.register(
    "fwb",
    DesignSpec(
        LogBackend.HARDWARE, LogContent.UNDO_REDO, Writeback.FWB, CommitProtocol.FENCED
    ),
)

#: The paper's designs, in the order its figures present them.
CANONICAL_DESIGNS: Tuple[DesignSpec, ...] = (
    NON_PERS,
    UNSAFE_BASE,
    REDO_CLWB,
    UNDO_CLWB,
    HW_RLOG,
    HW_ULOG,
    HWL,
    FWB,
)

_CANONICAL_ORDER = {spec: index for index, spec in enumerate(CANONICAL_DESIGNS)}


def canonical_order(designs: Iterable[DesignSpec], strict_names: bool = False) -> list:
    """Sort canonical designs into paper order; customs keep their order.

    "Canonical" is decided by :class:`DesignSpec` equality, which
    compares the four mechanism axes only — so a composed spec such as
    ``hw+undo+nowb`` sorts as the canonical ``hw-ulog`` design it
    structurally is, even though its display name differs.  That is
    usually what figure code wants: equal mechanisms are the same point
    in the design space, whatever they were called on the command line.

    ``strict_names=True`` additionally requires the spec's display
    ``name`` to match the registered canonical name, so mechanism-equal
    aliases keep their user-given position among the customs instead of
    being folded into paper order.
    """
    designs = list(designs)

    def _is_canonical(d: DesignSpec) -> bool:
        if d not in _CANONICAL_ORDER:
            return False
        if strict_names:
            return any(d.name == c.name for c in CANONICAL_DESIGNS if c == d)
        return True

    canonical = [d for d in designs if _is_canonical(d)]
    canonical.sort(key=_CANONICAL_ORDER.__getitem__)
    custom = [d for d in designs if not _is_canonical(d)]
    return canonical + custom


def resolve_design(obj) -> DesignSpec:
    """Normalize anything design-shaped into a :class:`DesignSpec`.

    Accepts a :class:`DesignSpec` (returned as-is), a string (registered
    name or mechanism string), or a legacy
    :class:`~repro.core.policy.Policy` member (anything exposing a
    ``design`` attribute holding a spec).
    """
    if isinstance(obj, DesignSpec):
        return obj
    if isinstance(obj, str):
        return DESIGNS.resolve(obj)
    design = getattr(obj, "design", None)
    if isinstance(design, DesignSpec):
        return design
    raise TypeError(f"cannot resolve {obj!r} into a DesignSpec")


# ----------------------------------------------------------------------
# Mid-run switch legality (repro.adapt)
# ----------------------------------------------------------------------
def switch_transition_error(old: DesignSpec, new: DesignSpec):
    """Why switching a live machine from ``old`` to ``new`` is illegal
    (None when the transition is legal).

    A mid-run switch may only re-tune mechanisms the epoch barrier can
    make safe by flushing volatile state; it must never change what the
    machine has already promised:

    * the **log backend** is structural — the HWL engine, log buffers,
      and per-core wiring exist (or not) from construction, so records
      must keep coming from the same producer;
    * the **commit protocol** defines what "committed" meant for every
      pre-switch transaction; moving the commit point would rewrite
      history;
    * ``persistence_guaranteed`` must be preserved in both directions —
      a guaranteeing run may not silently drop its crash-recoverability
      claim, and an unguaranteed run cannot retroactively acquire one
      (its earlier transactions were never logged recoverably).

    Within those walls the barrier makes everything else safe: the
    write-back discipline (``clwb`` ↔ ``fwb`` ↔ ``nowb`` under
    ``hw+undo+redo``) and the log-content sides that do not affect the
    guarantee (``undo`` ↔ ``undo+redo`` under ``sw+clwb``).
    """
    if old.log_backend is not new.log_backend:
        return (
            f"cannot switch log backend mid-run "
            f"({old.log_backend.value!r} -> {new.log_backend.value!r}); "
            "the record-generation engine is structural"
        )
    if old.log_backend is LogBackend.NONE and old != new:
        return "a design without a log backend has no mechanisms to switch"
    if old.commit is not new.commit:
        return (
            f"cannot switch commit protocol mid-run "
            f"({old.commit.value!r} -> {new.commit.value!r}); "
            "it would redefine pre-switch commit points"
        )
    if old.persistence_guaranteed != new.persistence_guaranteed:
        return (
            f"switch must preserve the persistence guarantee "
            f"({old.name!r} guaranteed={old.persistence_guaranteed}, "
            f"{new.name!r} guaranteed={new.persistence_guaranteed})"
        )
    return None


def switch_legal(old: DesignSpec, new: DesignSpec) -> bool:
    """True when a live machine may switch from ``old`` to ``new``."""
    return switch_transition_error(old, new) is None


def check_switch_transition(old: DesignSpec, new: DesignSpec) -> None:
    """Raise ``ValueError`` when the ``old`` -> ``new`` switch is illegal."""
    reason = switch_transition_error(old, new)
    if reason is not None:
        raise ValueError(f"illegal design switch: {reason}")


def legal_switch_targets(spec: DesignSpec, candidates: Iterable[DesignSpec]):
    """The subset of ``candidates`` that ``spec`` may legally switch to
    (including ``spec`` itself when present), in candidate order."""
    return [target for target in candidates if switch_legal(spec, target)]


def expand_grid(
    backends: Iterable[str],
    contents: Iterable[str],
    writebacks: Iterable[str],
    commits: Iterable[str] = ("fenced",),
) -> list:
    """Cross-product of mechanism axis values, invalid combos skipped.

    Axis values are the enum token spellings (``hw``/``sw``/``none``,
    ``undo``/``redo``/``undo+redo``, ``none``/``clwb``/``fwb``,
    ``fenced``/``instant``).  Returns the valid :class:`DesignSpec` grid
    in deterministic axis order.
    """
    grid = []
    for backend in backends:
        for content in contents:
            for writeback in writebacks:
                for commit in commits:
                    try:
                        spec = DesignSpec(
                            LogBackend(backend),
                            LogContent(content),
                            Writeback(writeback),
                            CommitProtocol(commit),
                        )
                    except ValueError:
                        continue
                    if spec not in grid:
                        grid.append(spec)
    return grid
