"""Special registers added by the design (Section IV-B, Table I).

* one 8-bit physical transaction-ID register bank: the ``txid`` argument
  of ``tx_begin()`` translates to a not-in-use physical ID (256 active
  transactions at a time, reusable after commit);
* two 64-bit registers holding the circular log's head and tail pointers;
* optional registers for extra log regions allocated by ``log_grow()``.

All of this state is volatile (it is reconstructed from the log itself on
recovery).
"""

from __future__ import annotations

from ..errors import LogError, TransactionError

PHYSICAL_TXID_SPACE = 256


class SpecialRegisters:
    """Volatile processor registers for the logging machinery."""

    def __init__(self) -> None:
        self._free_ids = list(range(PHYSICAL_TXID_SPACE - 1, -1, -1))
        self._active: dict[int, int] = {}  # user txid -> physical id
        self._generation: dict[int, int] = {}  # physical id -> acquisition count
        self.log_head = 0
        self.log_tail = 0
        self.grow_regions: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Physical transaction IDs
    # ------------------------------------------------------------------
    def acquire_txid(self, user_txid: int) -> int:
        """Map a user transaction ID to a free 8-bit physical ID."""
        if user_txid in self._active:
            raise TransactionError(f"transaction {user_txid} already active")
        if not self._free_ids:
            raise TransactionError(
                f"more than {PHYSICAL_TXID_SPACE} concurrently active transactions"
            )
        physical = self._free_ids.pop()
        self._active[user_txid] = physical
        self._generation[physical] = self._generation.get(physical, 0) + 1
        return physical

    def release_txid(self, user_txid: int) -> None:
        """Return the physical ID of a committed transaction to the pool."""
        physical = self._active.pop(user_txid, None)
        if physical is None:
            raise TransactionError(f"transaction {user_txid} is not active")
        self._free_ids.append(physical)

    def physical_txid(self, user_txid: int) -> int:
        """Physical ID currently backing ``user_txid``."""
        try:
            return self._active[user_txid]
        except KeyError:
            raise TransactionError(f"transaction {user_txid} is not active") from None

    def is_physical_active(self, physical: int) -> bool:
        """True while ``physical`` backs an uncommitted transaction."""
        return physical in self._active.values()

    def activity_token(self, physical) -> "int | None":
        """Current generation of ``physical`` if it is active, else None.

        Physical IDs recycle (8 bits, Section IV-B); the generation token
        distinguishes the *instance*: a log entry stamped with an old
        token belongs to a long-committed transaction even if its
        physical ID is active again.
        """
        if physical not in self._active.values():
            return None
        return self._generation.get(physical)

    @property
    def active_count(self) -> int:
        """Number of currently active transactions."""
        return len(self._active)

    # ------------------------------------------------------------------
    # Log pointers
    # ------------------------------------------------------------------
    def set_log_pointers(self, head: int, tail: int) -> None:
        """Update the 64-bit head/tail pointer registers."""
        if head < 0 or tail < 0:
            raise LogError("log pointers must be non-negative")
        self.log_head = head
        self.log_tail = tail

    def add_grow_region(self, base: int, size: int) -> None:
        """Record an additional log region allocated by ``log_grow()``."""
        self.grow_regions.append((base, size))
