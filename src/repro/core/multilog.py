"""Distributed (per-thread) logs — the Section III-F design alternative.

The paper's evaluation uses one centralized log ("We use only one
centralized circular log for all transactions for all threads") but
Section III-F notes the design "works with either type" and sketches
per-thread / per-region distributed logs as more scalable.  This module
implements the per-thread flavour:

* the log region is split into one ring per hardware thread, each with
  its own volatile log buffer (so threads never contend on the FIFO or
  on ring tail bandwidth);
* per-thread records no longer *need* the thread-ID field (the paper's
  observation) — we keep writing it for a uniform record format;
* recovery replays every ring independently; a thread's transactions are
  sequential, so each ring is self-contained (commit records live in the
  same ring as their data records).
"""

from __future__ import annotations

from ..errors import LogError
from .logbuffer import LogBuffer
from .nvlog import CircularLog


class LogRouter:
    """Maps a thread ID to its log ring and log buffer.

    With one entry this degenerates to the paper's centralized design.
    """

    def __init__(self, logs: list, buffers: list) -> None:
        if not logs or len(logs) != len(buffers):
            raise LogError("router needs one buffer per log")
        self._logs = logs
        self._buffers = buffers

    def log_for(self, tid: int) -> CircularLog:
        """Ring for thread ``tid``."""
        return self._logs[tid % len(self._logs)]

    def buffer_for(self, tid: int) -> LogBuffer:
        """Volatile log buffer for thread ``tid``."""
        return self._buffers[tid % len(self._buffers)]

    @property
    def primary(self) -> CircularLog:
        """The first (or only) ring."""
        return self._logs[0]

    @property
    def logs(self) -> list:
        """All rings."""
        return list(self._logs)

    @property
    def is_distributed(self) -> bool:
        """True when more than one ring exists."""
        return len(self._logs) > 1


def split_log_region(
    base: int, total_entries: int, entry_size: int, ways: int, line_size: int = 64
) -> list:
    """Partition one log region into ``ways`` consecutive rings."""
    if ways <= 0:
        raise LogError("need at least one log ring")
    if total_entries % ways:
        raise LogError(f"{total_entries} entries do not split into {ways} rings")
    per_ring = total_entries // ways
    return [
        CircularLog(base + way * per_ring * entry_size, per_ring, entry_size, line_size)
        for way in range(ways)
    ]


def recover_all(nvram, logs: list, reset_log: bool = True):
    """Replay every ring; returns the merged :class:`RecoveryReport`.

    Rings are independent (per-thread transactions are sequential and
    workloads partition data per thread), so replay order across rings
    does not matter.
    """
    from .recovery import RecoveryManager, RecoveryReport

    merged = RecoveryReport()
    for log in logs:
        report = RecoveryManager(nvram, log).recover(reset_log=reset_log)
        merged.records_scanned += report.records_scanned
        merged.window_entries += report.window_entries
        merged.committed_instances += report.committed_instances
        merged.uncommitted_instances += report.uncommitted_instances
        merged.redo_writes += report.redo_writes
        merged.undo_writes += report.undo_writes
    return merged
