"""Trace-compilation engine: record a workload once, replay it per design.

The interpreted path (:func:`repro.harness.runner.run_workload`) re-walks
every workload data structure — hashing keys, chasing pointers, consulting
RNGs — once per sweep cell, even though the resulting micro-op stream is
identical for every cell that differs only in
:class:`~repro.core.design.DesignSpec`.  This module splits that work:

* :func:`compile_trace` runs each thread's generator **once** against a
  functional memory model and records the accessor-level operation stream
  into :class:`~repro.sim.ctrace.CompiledTrace` columns;
* :func:`run_compiled` replays the columns under any design, producing
  **bit-identical** :class:`~repro.sim.stats.MachineStats` to the
  interpreted run.

Replay has two engines, selected automatically:

* ``via-API`` — drives a real :class:`~repro.txn.runtime.ThreadAPI` call
  for call, reproducing the exact micro-op *and* tracer/psan event
  streams.  Used whenever a tracer or fault monitor is attached.
* ``fast`` — calls the scalar ``Core.exec_*`` methods directly with
  per-design dispatch resolved once per cell (no ``MicroOp`` objects, no
  ``isinstance`` chains, no golden-model bookkeeping).  Used when nothing
  subscribes to events; the stats stay bit-identical because every
  timing/stat formula lives in the scalar methods both paths share.

Validity of sequential recording: every trace-compilable workload
partitions its data per thread (``tid % MAX_PARTITIONS``), derives its
RNG from ``(seed, tid)`` and never reads another thread's writes, so each
thread's operation stream is independent of the interleaving and can be
recorded thread-at-a-time.  Allocation is the one cross-thread coupling:
the recorder never models the *shared* heap (interleaving-dependent) —
every shared-heap allocation yields a fresh symbolic token, bound to the
real address the replayed cell obtains (see :mod:`repro.sim.ctrace`);
only the deterministic thread-local recycling of
:meth:`~repro.txn.runtime.ThreadAPI.alloc`/``free`` is mirrored.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Optional

from ..core.design import CommitProtocol
from ..errors import TransactionError, WorkloadError
from ..utils import align_up, split_words
from .ctrace import (
    K_ALLOC,
    K_COMPUTE,
    K_FREE,
    K_READ,
    K_TX_BEGIN,
    K_TX_COMMIT,
    K_WRITE,
    K_YIELD,
    SYM_BASE,
    SYM_OFF_MASK,
    CompiledThread,
    CompiledTrace,
    sym_token,
)
from .machine import _RETIRE_PERIOD, Machine

_ZEROS = tuple(bytes(n) for n in range(9))

# Per-design write/commit lowering, resolved once per replayed cell.
_MODE_PLAIN = 0
_MODE_HW = 1
_MODE_SW_UNDO = 2
_MODE_SW_REDO = 3


# ----------------------------------------------------------------------
# Recording (compile phase)
# ----------------------------------------------------------------------
class _RecordingMemory:
    """Functional memory shared by all recorded threads.

    Real addresses resolve against a mutable copy of the prepared NVRAM
    prefix (reads past the stored prefix are zeros, exactly like the real
    zero-backed device); symbolic blocks are per-allocation bytearrays.
    Pointer-valued words store their symbolic tokens verbatim, so pointer
    chases through recorded structures stay symbolic.
    """

    def __init__(self, image_prefix: bytes) -> None:
        self.image = bytearray(image_prefix)
        self.blocks: list[bytearray] = []
        self.block_sizes: list[int] = []

    def new_block(self, aligned_size: int) -> int:
        block_id = len(self.blocks)
        self.blocks.append(bytearray(aligned_size))
        self.block_sizes.append(aligned_size)
        return sym_token(block_id)

    def read(self, addr: int, size: int) -> bytes:
        if addr >= SYM_BASE:
            offset = addr & SYM_OFF_MASK
            return bytes(self.blocks[(addr - SYM_BASE) >> 24][offset:offset + size])
        image = self.image
        end = addr + size
        if end > len(image):
            image.extend(bytes(end - len(image)))
        return bytes(image[addr:end])

    def write(self, addr: int, data: bytes) -> None:
        if addr >= SYM_BASE:
            offset = addr & SYM_OFF_MASK
            self.blocks[(addr - SYM_BASE) >> 24][offset:offset + len(data)] = data
            return
        image = self.image
        end = addr + len(data)
        if end > len(image):
            image.extend(bytes(end - len(image)))
        image[addr:end] = data


class RecordingAccessor:
    """Accessor that records one thread's operation stream.

    Implements the same protocol as :class:`~repro.txn.runtime.ThreadAPI`
    (``read``/``write``/``compute``/``alloc``/``free``/``transaction``)
    but charges no time — it appends column entries and serves reads from
    the functional memory.  Thread-local allocation recycling mirrors
    ``ThreadAPI`` exactly (LIFO per aligned size, frees quarantined until
    commit) so the replayed ``alloc`` call sequence pops the same blocks.
    """

    def __init__(self, memory: _RecordingMemory, column: CompiledThread) -> None:
        self._memory = memory
        self._col = column
        self._local_free: dict[int, list[int]] = {}
        self._pending_frees: list[tuple[int, int]] = []
        self._in_txn = False

    def read(self, addr: int, size: int) -> bytes:
        col = self._col
        col.kinds.append(K_READ)
        col.a.append(addr)
        col.b.append(size)
        return self._memory.read(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        if not self._in_txn:
            raise TransactionError("persistent writes require a transaction")
        col = self._col
        memory = self._memory
        pieces = split_words(addr, data)
        col.kinds.append(K_WRITE)
        col.a.append(len(col.piece_addr))
        col.b.append(len(pieces))
        n_blocks = len(memory.blocks)
        for piece_addr, piece in pieces:
            value = int.from_bytes(piece, "little")
            symbolic = (
                len(piece) == 8
                and value >= SYM_BASE
                and (value - SYM_BASE) >> 24 < n_blocks
            )
            col.piece_addr.append(piece_addr)
            col.piece_len.append(len(piece))
            col.piece_sym.append(1 if symbolic else 0)
            col.piece_val.append(value)
            memory.write(piece_addr, piece)

    def compute(self, count: int) -> None:
        if count > 0:
            col = self._col
            col.kinds.append(K_COMPUTE)
            col.a.append(count)
            col.b.append(0)

    def alloc(self, size: int) -> int:
        aligned = align_up(size, 8)
        bucket = self._local_free.get(aligned)
        if bucket:
            token = bucket.pop()
        else:
            token = self._memory.new_block(aligned)
        col = self._col
        col.kinds.append(K_ALLOC)
        col.a.append(size)
        col.b.append(token)
        return token

    def free(self, addr: int, size: int) -> None:
        col = self._col
        col.kinds.append(K_FREE)
        col.a.append(addr)
        col.b.append(size)
        aligned = align_up(size, 8)
        if self._in_txn:
            self._pending_frees.append((addr, aligned))
        else:
            self._local_free.setdefault(aligned, []).append(addr)

    def tx_begin(self) -> None:
        if self._in_txn:
            raise TransactionError("nested transactions are not supported")
        self._in_txn = True
        col = self._col
        col.kinds.append(K_TX_BEGIN)
        col.a.append(0)
        col.b.append(0)

    def tx_commit(self) -> None:
        if not self._in_txn:
            raise TransactionError("tx_commit outside a transaction")
        self._in_txn = False
        col = self._col
        col.kinds.append(K_TX_COMMIT)
        col.a.append(0)
        col.b.append(0)
        for addr, size in self._pending_frees:
            self._local_free.setdefault(size, []).append(addr)
        self._pending_frees = []

    @contextmanager
    def transaction(self):
        self.tx_begin()
        yield self
        self.tx_commit()


def compile_trace(prepared, threads: int, txns_per_thread: int) -> CompiledTrace:
    """Record ``prepared``'s workload into a design-independent trace.

    Runs every thread generator to completion against the functional
    memory, one thread at a time (valid for partitioned workloads; see
    the module docstring).  ``prepared`` is a
    :class:`~repro.harness.runner.PreparedWorkload` whose workload has
    ``trace_compilable = True``.
    """
    workload = prepared.workload
    if not getattr(workload, "trace_compilable", False):
        raise WorkloadError(
            f"workload {workload.name!r} is not trace-compilable"
        )
    workload.reset_run_state()
    memory = _RecordingMemory(prepared.image_prefix)
    columns = []
    for tid in range(threads):
        column = CompiledThread()
        accessor = RecordingAccessor(memory, column)
        generator = workload.thread_body(accessor, tid, txns_per_thread)
        while True:
            try:
                next(generator)
            except StopIteration:
                break
            column.kinds.append(K_YIELD)
            column.a.append(0)
            column.b.append(0)
        columns.append(column)
    return CompiledTrace(
        workload_key=workload.identity_key(),
        threads=threads,
        txns_per_thread=txns_per_thread,
        image_prefix=prepared.image_prefix,
        image_size=prepared.image_size,
        heap_state=prepared.heap_state,
        block_sizes=list(memory.block_sizes),
        thread_cols=columns,
    )


# ----------------------------------------------------------------------
# Replay: via-API engine (exact micro-op and event streams)
# ----------------------------------------------------------------------
def _api_thread(api, col: CompiledThread, bind: dict):
    """Generator replaying one thread through a real :class:`ThreadAPI`.

    Produces the identical micro-op sequence to the original run: a
    recorded multi-word write replays as one ``api.write`` per piece,
    which is equivalent because ``split_words`` returns a piece unchanged
    (pieces never cross word boundaries and 8-alignment is preserved by
    relocation).
    """
    kinds = col.kinds
    av = col.a
    bv = col.b
    pa_col = col.piece_addr
    pl_col = col.piece_len
    ps_col = col.piece_sym
    pv_col = col.piece_val
    for i in range(len(kinds)):
        kind = kinds[i]
        if kind == K_READ:
            addr = av[i]
            if addr >= SYM_BASE:
                addr = bind[(addr - SYM_BASE) >> 24] + (addr & SYM_OFF_MASK)
            api.read(addr, bv[i])
        elif kind == K_WRITE:
            start = av[i]
            for j in range(start, start + bv[i]):
                piece_addr = pa_col[j]
                if piece_addr >= SYM_BASE:
                    piece_addr = bind[(piece_addr - SYM_BASE) >> 24] + (
                        piece_addr & SYM_OFF_MASK
                    )
                value = pv_col[j]
                if ps_col[j]:
                    value = bind[(value - SYM_BASE) >> 24] + (value & SYM_OFF_MASK)
                    data = value.to_bytes(8, "little")
                else:
                    data = value.to_bytes(pl_col[j], "little")
                api.write(piece_addr, data)
        elif kind == K_COMPUTE:
            api.compute(av[i])
        elif kind == K_TX_BEGIN:
            api.tx_begin()
        elif kind == K_TX_COMMIT:
            api.tx_commit()
        elif kind == K_ALLOC:
            result = api.alloc(av[i])
            token = bv[i]
            if token >= SYM_BASE:
                block_id = (token - SYM_BASE) >> 24
                if block_id not in bind:
                    bind[block_id] = result
        elif kind == K_FREE:
            addr = av[i]
            if addr >= SYM_BASE:
                addr = bind[(addr - SYM_BASE) >> 24] + (addr & SYM_OFF_MASK)
            api.free(addr, bv[i])
        else:  # K_YIELD
            yield


# ----------------------------------------------------------------------
# Replay: fast engine (scalar core calls, per-design dispatch)
# ----------------------------------------------------------------------
def _fast_thread(machine: Machine, pm, col: CompiledThread, tid: int, bind: dict):
    """Generator replaying one thread against the scalar core methods.

    Transcribes the :class:`~repro.txn.runtime.ThreadAPI` lowering branch
    for branch with the design predicates resolved once up front, and
    replicates :meth:`Machine.execute`'s per-op housekeeping (FWB scan
    before, retire cadence after) around every micro-op equivalent.
    Skips only work with no stats/timing effect: golden-model staging,
    tracer guards (no tracer is attached on this path), the read-only
    ``physical_txid`` lookups, and load-data materialisation (software
    undo records carry zero old-values — :class:`LogRecord` encoding is
    content-independent, fixed ``entry_size`` bytes).
    """
    spec = machine.policy
    core = machine.cores[tid]
    cores = machine.cores
    memctrl = machine.memctrl
    hierarchy = machine.hierarchy
    fwb = machine.fwb
    swlog = machine.swlog
    heap = pm.heap
    logging_cfg = machine.config.logging
    line_size = machine.config.line_size
    line_mask = ~(line_size - 1)

    if spec.uses_hw_logging:
        mode = _MODE_HW
        begin_overhead = logging_cfg.hw_instrs_tx_begin
        commit_overhead = logging_cfg.hw_instrs_tx_commit
    elif spec.uses_sw_logging:
        mode = _MODE_SW_REDO if spec.defers_in_place_stores else _MODE_SW_UNDO
        begin_overhead = logging_cfg.softlog_instrs_tx_begin
        commit_overhead = logging_cfg.softlog_instrs_tx_commit
    else:
        mode = _MODE_PLAIN
        begin_overhead = 0
        commit_overhead = 0
    softlog_per_record = logging_cfg.softlog_instrs_per_record
    clwb_commit = spec.uses_clwb_at_commit
    sw_instant = mode in (_MODE_SW_UNDO, _MODE_SW_REDO) and (
        spec.commit is CommitProtocol.INSTANT
    )
    protects = spec.protects_log_wrap

    scan = fwb.maybe_scan if fwb is not None else None
    exec_compute = core.exec_compute
    exec_load_fast = core.exec_load_fast
    exec_store = core.exec_store
    exec_clwb = core.exec_clwb
    exec_fence = core.exec_fence
    exec_tx_begin = core.exec_tx_begin
    exec_tx_commit = core.exec_tx_commit

    def tick() -> None:
        machine._ops_since_retire += 1
        if machine._ops_since_retire >= _RETIRE_PERIOD:
            machine._ops_since_retire = 0
            memctrl.retire(min(c.time for c in cores))

    def emit_log(placed) -> None:
        displaced = placed.displaced_line
        if displaced is not None and protects and hierarchy.is_line_dirty(displaced):
            completion = machine.force_line_durable(displaced, core.time)
            if completion > core.time:
                core.time = completion
        if scan is not None:
            scan(core.time)
        core.exec_logstore(placed.addr, placed.payload)
        tick()

    kinds = col.kinds
    av = col.a
    bv = col.b
    read_line = col.read_line
    pa_col = col.piece_addr
    ps_col = col.piece_sym
    pv_col = col.piece_val
    piece_data = col.piece_data

    txid = 0
    in_txn = False
    write_lines: set[int] = set()
    overlay: dict[int, bytes] = {}
    local_free: dict[int, list[int]] = {}
    pending_frees: list[tuple[int, int]] = []

    for i in range(len(kinds)):
        kind = kinds[i]
        if kind == K_READ:
            line = read_line[i]
            if line >= 0:
                if scan is not None:
                    scan(core.time)
                exec_load_fast(av[i], line)
                tick()
                continue
            addr = av[i]
            if addr >= SYM_BASE:
                addr = bind[(addr - SYM_BASE) >> 24] + (addr & SYM_OFF_MASK)
            end = addr + bv[i]
            line = addr & line_mask
            if (end - 1) & line_mask == line:
                if scan is not None:
                    scan(core.time)
                exec_load_fast(addr, line)
                tick()
            else:
                cursor = addr
                while cursor < end:
                    line = cursor & line_mask
                    if scan is not None:
                        scan(core.time)
                    exec_load_fast(cursor, line)
                    tick()
                    cursor = min(end, line + line_size)
        elif kind == K_WRITE:
            start = av[i]
            for j in range(start, start + bv[i]):
                piece_addr = pa_col[j]
                if piece_addr >= SYM_BASE:
                    piece_addr = bind[(piece_addr - SYM_BASE) >> 24] + (
                        piece_addr & SYM_OFF_MASK
                    )
                if ps_col[j]:
                    value = pv_col[j]
                    data = (
                        bind[(value - SYM_BASE) >> 24] + (value & SYM_OFF_MASK)
                    ).to_bytes(8, "little")
                else:
                    data = piece_data[j]
                if clwb_commit:
                    write_lines.add(piece_addr & line_mask)
                if mode == _MODE_HW:
                    if scan is not None:
                        scan(core.time)
                    exec_store(piece_addr, data, True, txid, tid)
                    tick()
                elif mode == _MODE_SW_UNDO:
                    if scan is not None:
                        scan(core.time)
                    exec_load_fast(piece_addr, piece_addr & line_mask)
                    tick()
                    if softlog_per_record:
                        if scan is not None:
                            scan(core.time)
                        exec_compute(softlog_per_record)
                        tick()
                    emit_log(
                        swlog.data(txid, tid, piece_addr, _ZEROS[len(data)], data)
                    )
                    if scan is not None:
                        scan(core.time)
                    exec_store(piece_addr, data)
                    tick()
                elif mode == _MODE_SW_REDO:
                    if softlog_per_record:
                        if scan is not None:
                            scan(core.time)
                        exec_compute(softlog_per_record)
                        tick()
                    emit_log(swlog.data(txid, tid, piece_addr, b"", data))
                    overlay[piece_addr] = data
                else:
                    if scan is not None:
                        scan(core.time)
                    exec_store(piece_addr, data)
                    tick()
        elif kind == K_COMPUTE:
            if scan is not None:
                scan(core.time)
            exec_compute(av[i])
            tick()
        elif kind == K_TX_BEGIN:
            txid = pm.next_txid()
            in_txn = True
            write_lines.clear()
            overlay.clear()
            if scan is not None:
                scan(core.time)
            exec_tx_begin(txid, tid, begin_overhead)
            tick()
            if mode in (_MODE_SW_UNDO, _MODE_SW_REDO):
                emit_log(swlog.begin(txid, tid))
        elif kind == K_TX_COMMIT:
            if mode == _MODE_HW:
                if scan is not None:
                    scan(core.time)
                exec_tx_commit(txid, tid, commit_overhead)
                tick()
                if clwb_commit:
                    for line in sorted(write_lines):
                        if scan is not None:
                            scan(core.time)
                        exec_clwb(line)
                        tick()
            elif mode == _MODE_PLAIN:
                if scan is not None:
                    scan(core.time)
                exec_tx_commit(txid, tid, 0)
                tick()
            elif sw_instant:
                emit_log(swlog.commit(txid, tid))
                if scan is not None:
                    scan(core.time)
                exec_tx_commit(txid, tid, commit_overhead)
                tick()
            elif mode == _MODE_SW_UNDO:
                if clwb_commit:
                    for line in sorted(write_lines):
                        if scan is not None:
                            scan(core.time)
                        exec_clwb(line)
                        tick()
                if scan is not None:
                    scan(core.time)
                exec_fence()
                tick()
                emit_log(swlog.commit(txid, tid))
                if scan is not None:
                    scan(core.time)
                exec_tx_commit(txid, tid, commit_overhead)
                tick()
                core.wcb.flush(core.time)
            else:  # software redo, fenced
                emit_log(swlog.commit(txid, tid))
                if scan is not None:
                    scan(core.time)
                exec_fence()
                tick()
                if scan is not None:
                    scan(core.time)
                exec_tx_commit(txid, tid, commit_overhead)
                tick()
                for addr, piece in overlay.items():
                    if scan is not None:
                        scan(core.time)
                    exec_store(addr, piece)
                    tick()
                if clwb_commit:
                    for line in sorted(write_lines):
                        if scan is not None:
                            scan(core.time)
                        exec_clwb(line)
                        tick()
            in_txn = False
            write_lines.clear()
            overlay.clear()
            for addr, size in pending_frees:
                local_free.setdefault(size, []).append(addr)
            pending_frees.clear()
        elif kind == K_ALLOC:
            size = (av[i] + 7) & ~7
            bucket = local_free.get(size)
            if bucket:
                result = bucket.pop()
            else:
                result = heap.alloc(size)
            token = bv[i]
            if token >= SYM_BASE:
                block_id = (token - SYM_BASE) >> 24
                if block_id not in bind:
                    bind[block_id] = result
        elif kind == K_FREE:
            addr = av[i]
            if addr >= SYM_BASE:
                addr = bind[(addr - SYM_BASE) >> 24] + (addr & SYM_OFF_MASK)
            size = (bv[i] + 7) & ~7
            if in_txn:
                pending_frees.append((addr, size))
            else:
                local_free.setdefault(size, []).append(addr)
        else:  # K_YIELD
            yield


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_compiled(trace: CompiledTrace, run, machine_hook=None, bind_out=None):
    """Replay ``trace`` under ``run`` (a :class:`RunConfig`); returns the
    same :class:`~repro.harness.runner.RunOutcome` as
    :func:`~repro.harness.runner.run_workload` with bit-identical stats.

    Engine selection happens *after* ``machine_hook`` runs: attaching a
    tracer or fault monitor (psan does both via ``machine.tracer``)
    switches to the via-API engine, which preserves the exact event
    stream; otherwise the trace-free fast engine runs.

    ``bind_out`` (a dict, filled in place) receives the symbolic
    block-id -> real-address binding the replay establishes; the static
    verifier uses it to translate a counterexample's symbolic addresses
    into the addresses the dynamic checker diagnosed.
    """
    from ..harness.runner import RunOutcome, default_experiment_config
    from ..txn.runtime import PersistentMemory

    system = run.system or default_experiment_config()
    if run.threads != trace.threads:
        raise WorkloadError(
            f"trace was compiled for {trace.threads} threads, run wants {run.threads}"
        )
    if run.txns_per_thread != trace.txns_per_thread:
        raise WorkloadError(
            f"trace was compiled for {trace.txns_per_thread} txns/thread, "
            f"run wants {run.txns_per_thread}"
        )
    if run.threads > system.num_cores:
        raise WorkloadError(
            f"{run.threads} threads need {run.threads} cores, "
            f"config has {system.num_cores}"
        )
    if trace.derived_line_size != system.line_size:
        trace.derive(system.line_size)

    machine = Machine(system, run.policy)
    if machine_hook is not None:
        machine_hook(machine)
    pm = PersistentMemory(machine)
    machine.nvram.load_image_prefix(trace.image_prefix)
    pm.heap.restore(trace.heap_state)

    bind: dict[int, int] = {} if bind_out is None else bind_out
    if machine.tracer is not None or machine.fault_monitor is not None:
        generators = [
            _api_thread(pm.api(core_id=tid, tid=tid), trace.thread_cols[tid], bind)
            for tid in range(run.threads)
        ]
    else:
        generators = [
            _fast_thread(machine, pm, trace.thread_cols[tid], tid, bind)
            for tid in range(run.threads)
        ]

    # Identical scheduling to run_workload: min-heap on core clock,
    # tie-break on thread id.
    ready = [(machine.core_time(tid), tid) for tid in range(run.threads)]
    heapq.heapify(ready)
    while ready:
        _, tid = heapq.heappop(ready)
        try:
            next(generators[tid])
        except StopIteration:
            continue
        heapq.heappush(ready, (machine.core_time(tid), tid))

    stats = machine.finalize()
    return RunOutcome(run.policy, run.threads, stats, machine, pm)
