"""Timing + functional simulation substrate (McSimA+ substitute).

This subpackage provides the architecture simulator the paper's evaluation
runs on: cores, a write-back write-allocate cache hierarchy, a memory
controller, and an NVRAM DIMM with PCM-like timing and energy parameters
(Table II of the paper).
"""

from .config import (
    CacheConfig,
    CoreConfig,
    EnergyConfig,
    LoggingConfig,
    MemCtrlConfig,
    NVDimmConfig,
    SystemConfig,
)
from .machine import Machine
from .microops import (
    CLWB,
    Compute,
    Fence,
    Load,
    LogStore,
    Store,
    TxBegin,
    TxCommit,
)
from .stats import MachineStats

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "EnergyConfig",
    "LoggingConfig",
    "MemCtrlConfig",
    "NVDimmConfig",
    "SystemConfig",
    "Machine",
    "MachineStats",
    "Load",
    "Store",
    "Compute",
    "TxBegin",
    "TxCommit",
    "CLWB",
    "Fence",
    "LogStore",
]
