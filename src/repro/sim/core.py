"""Core execution model.

Each core executes micro-ops in program order, charging a calibrated
latency per op.  The model is not cycle-accurate out-of-order; instead,
``*_exposed`` factors in :class:`~repro.sim.config.CoreConfig` express the
fraction of a miss latency the instruction window cannot hide.  This is
sufficient because the paper's results are relative across persistence
designs running identical workloads.

Per-core state relevant to persistence:

* ``pending_completion`` — the latest durability time of writes this core
  has posted via clwb or the WCB; ``sfence`` waits for it;
* a private write-combining buffer for uncacheable software log stores.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError
from .config import CoreConfig
from .energy import EnergyModel
from .hierarchy import CacheHierarchy
from .microops import CLWB, Compute, Fence, Load, LogStore, MicroOp, Store, TxBegin, TxCommit
from .stats import MachineStats
from .wcb import WriteCombiningBuffer


class Core:
    """One simulated core with a local clock and retired-instruction count."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        hierarchy: CacheHierarchy,
        wcb: WriteCombiningBuffer,
        stats: MachineStats,
        energy: EnergyModel,
        hwl=None,
    ) -> None:
        self.core_id = core_id
        self._config = config
        self._hierarchy = hierarchy
        self.wcb = wcb
        self._stats = stats
        self._energy = energy
        self._hwl = hwl
        self.time = 0.0
        self.instret = 0
        self.pending_completion = 0.0
        self.tracer = None
        """Optional tracer (set by the machine's ``tracer`` property);
        emits one ``store`` event per retired cacheable store."""

    # ------------------------------------------------------------------
    def execute(self, op: MicroOp) -> Optional[object]:
        """Execute one micro-op; returns load data or commit time if any."""
        if isinstance(op, Compute):
            return self._exec_compute(op)
        if isinstance(op, Load):
            return self._exec_load(op)
        if isinstance(op, Store):
            return self._exec_store(op)
        if isinstance(op, LogStore):
            return self._exec_logstore(op)
        if isinstance(op, CLWB):
            return self._exec_clwb(op)
        if isinstance(op, Fence):
            return self._exec_fence(op)
        if isinstance(op, TxBegin):
            return self._exec_tx_begin(op)
        if isinstance(op, TxCommit):
            return self._exec_tx_commit(op)
        raise SimulationError(f"unknown micro-op {op!r}")

    # ------------------------------------------------------------------
    def _retire(self, count: int) -> None:
        self.instret += count
        self._stats.instructions += count
        self._energy.instructions(count)

    def _exec_compute(self, op: Compute) -> None:
        self._retire(op.count)
        self.time += op.count * self._config.cpi_alu

    def _exec_load(self, op: Load) -> bytes:
        result = self._hierarchy.load(self.core_id, op.addr, op.size, self.time)
        self._retire(1)
        if result.level == "l1":
            charge = self._config.load_issue_cycles + 1.0
        else:
            extra = result.latency - self._hierarchy.l1_latency
            charge = self._config.load_issue_cycles + self._config.load_miss_exposed * extra
        self.time += charge
        return result.data

    def _exec_store(self, op: Store) -> None:
        # Two-phase store: allocate the line and capture the old value
        # first; for persistent stores the HWL engine logs undo+redo
        # before the new value becomes visible to write-backs (so a
        # log-wrap force in between can never leak an unlogged value).
        result = self._hierarchy.store_prepare(
            self.core_id, op.addr, len(op.data), self.time
        )
        self._retire(1)
        charge = self._config.store_issue_cycles
        if result.level != "l1":
            extra = result.latency - self._hierarchy.l1_latency
            charge += self._config.store_miss_exposed * extra
        self.time += charge
        release = 0.0
        if op.persistent and self._hwl is not None:
            stall, release = self._hwl.on_store(
                self.core_id,
                op.txid,
                op.tid,
                op.addr,
                result.old_data,
                op.data,
                result.line_addr,
                self.time,
            )
            self.time += stall
        self._hierarchy.store_finish(self.core_id, op.addr, op.data, release)
        if self.tracer is not None:
            self.tracer.emit(
                self.time,
                "store",
                self.core_id,
                addr=op.addr,
                size=len(op.data),
                persistent=op.persistent,
                txid=op.txid if op.persistent else None,
                tid=op.tid if op.persistent else None,
                line=result.line_addr,
                old=result.old_data.hex(),
                new=op.data.hex(),
                release=release,
            )

    def _exec_logstore(self, op: LogStore) -> None:
        self._retire(1)
        self.time += self._config.uncached_store_issue_cycles
        stall = self.wcb.push(op.addr, op.payload, self.time)
        self.time += stall
        self._stats.log_records += 1
        self._stats.log_bytes += len(op.payload)

    def _exec_clwb(self, op: CLWB) -> None:
        self._retire(1)
        self.time += self._config.clwb_issue_cycles
        completion = self._hierarchy.clwb(self.core_id, op.addr, self.time)
        if completion is not None:
            self.pending_completion = max(self.pending_completion, completion)

    def _exec_fence(self, op: Fence) -> None:
        self._retire(1)
        self.time += self._config.fence_issue_cycles
        self.wcb.flush(self.time)
        self.pending_completion = max(self.pending_completion, self.wcb.last_completion)
        if self.pending_completion > self.time:
            self._stats.fence_stall_cycles += self.pending_completion - self.time
            self.time = self.pending_completion

    def _exec_tx_begin(self, op: TxBegin) -> None:
        self._stats.transactions_started += 1
        if op.overhead_instrs:
            self._retire(op.overhead_instrs)
            self.time += op.overhead_instrs * self._config.cpi_alu
        if self._hwl is not None:
            self._hwl.on_tx_begin(op.txid, op.tid, self.time)

    def _exec_tx_commit(self, op: TxCommit) -> Optional[float]:
        self._stats.transactions_committed += 1
        if op.overhead_instrs:
            self._retire(op.overhead_instrs)
            self.time += op.overhead_instrs * self._config.cpi_alu
        if self._hwl is not None:
            return self._hwl.on_tx_commit(op.txid, op.tid, self.time)
        return None
