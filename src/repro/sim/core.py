"""Core execution model.

Each core executes micro-ops in program order, charging a calibrated
latency per op.  The model is not cycle-accurate out-of-order; instead,
``*_exposed`` factors in :class:`~repro.sim.config.CoreConfig` express the
fraction of a miss latency the instruction window cannot hide.  This is
sufficient because the paper's results are relative across persistence
designs running identical workloads.

Per-core state relevant to persistence:

* ``pending_completion`` — the latest durability time of writes this core
  has posted via clwb or the WCB; ``sfence`` waits for it;
* a private write-combining buffer for uncacheable software log stores.

Every op exists in two forms: a scalar ``exec_*`` method taking plain
arguments (the single source of the timing/stat formulas, also called
directly by the trace-replay engine in :mod:`repro.sim.replay`) and a
thin ``_exec_*`` wrapper unpacking the corresponding
:class:`~repro.sim.microops.MicroOp` for the interpreted path.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError
from .config import CoreConfig
from .energy import EnergyModel
from .hierarchy import CacheHierarchy
from .microops import CLWB, Compute, Fence, Load, LogStore, MicroOp, Store, TxBegin, TxCommit
from .stats import MachineStats
from .wcb import WriteCombiningBuffer


class Core:
    """One simulated core with a local clock and retired-instruction count."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        hierarchy: CacheHierarchy,
        wcb: WriteCombiningBuffer,
        stats: MachineStats,
        energy: EnergyModel,
        hwl=None,
    ) -> None:
        self.core_id = core_id
        self._config = config
        self._hierarchy = hierarchy
        self.wcb = wcb
        self._stats = stats
        self._energy = energy
        self._hwl = hwl
        self.time = 0.0
        self.instret = 0
        self.pending_completion = 0.0
        self.tracer = None
        """Optional tracer (set by the machine's ``tracer`` property);
        emits one ``store`` event per retired cacheable store."""

    # ------------------------------------------------------------------
    def execute(self, op: MicroOp) -> Optional[object]:
        """Execute one micro-op; returns load data or commit time if any."""
        if isinstance(op, Compute):
            return self.exec_compute(op.count)
        if isinstance(op, Load):
            return self.exec_load(op.addr, op.size)
        if isinstance(op, Store):
            return self.exec_store(op.addr, op.data, op.persistent, op.txid, op.tid)
        if isinstance(op, LogStore):
            return self.exec_logstore(op.addr, op.payload)
        if isinstance(op, CLWB):
            return self.exec_clwb(op.addr)
        if isinstance(op, Fence):
            return self.exec_fence()
        if isinstance(op, TxBegin):
            return self.exec_tx_begin(op.txid, op.tid, op.overhead_instrs)
        if isinstance(op, TxCommit):
            return self.exec_tx_commit(op.txid, op.tid, op.overhead_instrs)
        raise SimulationError(f"unknown micro-op {op!r}")

    # ------------------------------------------------------------------
    def _retire(self, count: int) -> None:
        self.instret += count
        self._stats.instructions += count
        self._energy.instructions(count)

    def exec_compute(self, count: int) -> None:
        """``count`` ALU/branch instructions."""
        self._retire(count)
        self.time += count * self._config.cpi_alu

    def exec_load(self, addr: int, size: int) -> bytes:
        """Cacheable read; returns the loaded bytes."""
        result = self._hierarchy.load(self.core_id, addr, size, self.time)
        self._retire(1)
        if result.level == "l1":
            charge = self._config.load_issue_cycles + 1.0
        else:
            extra = result.latency - self._hierarchy.l1_latency
            charge = self._config.load_issue_cycles + self._config.load_miss_exposed * extra
        self.time += charge
        return result.data

    def exec_load_fast(self, addr: int, line_addr: int) -> None:
        """Timing/stat-identical :meth:`exec_load` that skips materialising
        the loaded bytes (trace replay never consumes them).  ``line_addr``
        is the precomputed line base (the replay engine decodes it once
        per trace, not once per access)."""
        latency, l1_hit = self._hierarchy.load_fast(
            self.core_id, addr, self.time, line_addr
        )
        self._retire(1)
        if l1_hit:
            self.time += self._config.load_issue_cycles + 1.0
        else:
            extra = latency - self._hierarchy.l1_latency
            self.time += (
                self._config.load_issue_cycles + self._config.load_miss_exposed * extra
            )

    def exec_store(
        self, addr: int, data: bytes, persistent: bool = False, txid: int = 0, tid: int = 0
    ) -> None:
        """Cacheable write; persistent stores route through the HWL engine."""
        # Two-phase store: allocate the line and capture the old value
        # first; for persistent stores the HWL engine logs undo+redo
        # before the new value becomes visible to write-backs (so a
        # log-wrap force in between can never leak an unlogged value).
        result = self._hierarchy.store_prepare(self.core_id, addr, len(data), self.time)
        self._retire(1)
        charge = self._config.store_issue_cycles
        if result.level != "l1":
            extra = result.latency - self._hierarchy.l1_latency
            charge += self._config.store_miss_exposed * extra
        self.time += charge
        release = 0.0
        if persistent and self._hwl is not None:
            stall, release = self._hwl.on_store(
                self.core_id,
                txid,
                tid,
                addr,
                result.old_data,
                data,
                result.line_addr,
                self.time,
            )
            self.time += stall
        self._hierarchy.store_finish(self.core_id, addr, data, release)
        if self.tracer is not None:
            self.tracer.emit(
                self.time,
                "store",
                self.core_id,
                addr=addr,
                size=len(data),
                persistent=persistent,
                txid=txid if persistent else None,
                tid=tid if persistent else None,
                line=result.line_addr,
                old=result.old_data.hex(),
                new=data.hex(),
                release=release,
            )

    def exec_logstore(self, addr: int, payload: bytes) -> None:
        """Uncacheable software log-record store through the WCB."""
        self._retire(1)
        self.time += self._config.uncached_store_issue_cycles
        stall = self.wcb.push(addr, payload, self.time)
        self.time += stall
        self._stats.log_records += 1
        self._stats.log_bytes += len(payload)

    def exec_clwb(self, addr: int) -> None:
        """Force write-back of the line containing ``addr``."""
        self._retire(1)
        self.time += self._config.clwb_issue_cycles
        completion = self._hierarchy.clwb(self.core_id, addr, self.time)
        if completion is not None:
            self.pending_completion = max(self.pending_completion, completion)

    def exec_fence(self) -> None:
        """Wait for this core's posted writes to become durable (sfence)."""
        self._retire(1)
        self.time += self._config.fence_issue_cycles
        self.wcb.flush(self.time)
        self.pending_completion = max(self.pending_completion, self.wcb.last_completion)
        if self.pending_completion > self.time:
            self._stats.fence_stall_cycles += self.pending_completion - self.time
            self.time = self.pending_completion

    def exec_tx_begin(self, txid: int, tid: int, overhead_instrs: int) -> None:
        """Transaction begin (sets the txid special register)."""
        self._stats.transactions_started += 1
        if overhead_instrs:
            self._retire(overhead_instrs)
            self.time += overhead_instrs * self._config.cpi_alu
        if self._hwl is not None:
            self._hwl.on_tx_begin(txid, tid, self.time)

    def exec_tx_commit(self, txid: int, tid: int, overhead_instrs: int) -> Optional[float]:
        """Transaction commit; returns the HWL durability time, if any."""
        self._stats.transactions_committed += 1
        if overhead_instrs:
            self._retire(overhead_instrs)
            self.time += overhead_instrs * self._config.cpi_alu
        if self._hwl is not None:
            return self._hwl.on_tx_commit(txid, tid, self.time)
        return None
