"""Micro-op intermediate representation executed by :class:`~repro.sim.core.Core`.

Workloads emit *abstract* operations through the transaction runtime
(:mod:`repro.txn.runtime`); the per-policy expansion lowers them to these
micro-ops.  Hardware-logging policies lower a persistent write to a plain
:class:`Store` (the HWL engine reacts inside the cache hierarchy); software
policies insert :class:`Load`/:class:`LogStore`/:class:`CLWB`/:class:`Fence`
micro-ops explicitly, which is exactly the pipeline overhead the paper's
Figure 2 illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MicroOp:
    """Base class for all micro-ops (marker only)."""


@dataclass(frozen=True)
class Compute(MicroOp):
    """``count`` ALU/branch instructions with no memory access."""

    count: int


@dataclass(frozen=True)
class Load(MicroOp):
    """A cacheable read of ``size`` bytes at ``addr``."""

    addr: int
    size: int = 8


@dataclass(frozen=True)
class Store(MicroOp):
    """A cacheable write of ``data`` at ``addr``.

    ``persistent`` marks stores inside a persistent transaction; under
    hardware-logging policies the machine routes these through the HWL
    engine.  ``txid`` carries the owning transaction for log records.
    """

    addr: int
    data: bytes
    persistent: bool = False
    txid: int = 0
    tid: int = 0


@dataclass(frozen=True)
class LogStore(MicroOp):
    """An uncacheable software log-record store (goes through the WCB).

    ``addr`` is the placed location inside the circular log region and
    ``payload`` the encoded record; ``record_kind`` is informational for
    statistics.  Software logging issues one of these per logged word plus
    header/commit records (Figure 2(a) of the paper).
    """

    addr: int
    payload: bytes
    record_kind: str = "data"


@dataclass(frozen=True)
class CLWB(MicroOp):
    """Force write-back of the cache line containing ``addr`` (clwb)."""

    addr: int


@dataclass(frozen=True)
class Fence(MicroOp):
    """Wait until this core's previously posted writes are durable (sfence)."""


@dataclass(frozen=True)
class TxBegin(MicroOp):
    """Transaction begin: sets the txid special register."""

    txid: int
    tid: int = 0
    overhead_instrs: int = 0


@dataclass(frozen=True)
class TxCommit(MicroOp):
    """Transaction commit.

    ``wait_for_durability`` makes the core block until the commit point is
    durable (used by software clwb policies); hardware policies commit
    instantly (Section III-D, "free ride").
    """

    txid: int
    tid: int = 0
    overhead_instrs: int = 0
    wait_for_durability: bool = False
    writeback_lines: tuple = field(default=())
