"""Byte-addressable NVRAM device: functional image plus bank/row state.

The device owns the persistent byte image and the per-bank row-buffer
state used by the memory controller for timing.  For crash testing it also
keeps an *undo journal* of recently applied writes so that
:meth:`revert_after` can discard writes that had been posted but were not
yet durable at the crash instant (writes still in the controller's queues
or in flight on the banks are, architecturally, volatile).

Two hot-path design points keep large sweeps fast:

* The functional image is a flat ``bytearray``, but allocating (and the
  OS zeroing) a fresh multi-megabyte image for every sweep cell is
  measurable, so finished devices can :meth:`recycle` their buffer into a
  per-process pool.  The device tracks the extent of all writes as two
  windows — a low-address one (the heap grows up from the bottom) and a
  high-address one (the log region sits at the top) — and re-zeroes only
  those windows on recycle, which is far cheaper than a full-image memset
  when the footprint is a fraction of the device.
* Bounds checks on ``read``/``write``/``peek``/``poke`` are inlined
  (rather than calling :func:`~repro.utils.check_range`): workload setup
  issues millions of functional writes and the extra call frame dominated
  the setup profile.
"""

from __future__ import annotations

from ..errors import AddressError
from ..utils import check_range
from .config import NVDimmConfig


class NVRAM:
    """NVRAM DIMM: persistent image, banks, row buffers, traffic counters."""

    #: Recycled image buffers by size, shared within the process (sweeps
    #: build one machine per cell; reusing the zeroed buffer avoids an
    #: allocate + zero of the full device each time).
    _image_pool: dict[int, list[bytearray]] = {}
    _IMAGE_POOL_LIMIT = 4

    def __init__(self, config: NVDimmConfig, track_crash_state: bool = True) -> None:
        config.validate()
        self.config = config
        self._size = config.size_bytes
        pool = NVRAM._image_pool.get(self._size)
        self.image = pool.pop() if pool else bytearray(self._size)
        # Dirty-extent windows: every byte that may differ from zero lies
        # in [0, _lo_hwm) or [_hi_lwm, size).  Two windows match the
        # bimodal write pattern (heap at the bottom, log at the top); a
        # write anywhere still lands in one of them, it just widens it.
        self._mid = self._size // 2
        self._lo_hwm = 0
        self._hi_lwm = self._size
        self._track = track_crash_state
        # Per-bank open rows (LRU list, newest last; the cited PCM design
        # has several row buffers per bank) and next-free times.  Reads
        # and writes are tracked separately: the memory controller
        # schedules reads with priority and drains posted writes in the
        # gaps (see MemoryController._service).
        self.open_rows: list[list[int]] = [[] for _ in range(config.num_banks)]
        self.bank_read_free: list[float] = [0.0] * config.num_banks
        self.bank_write_free: list[float] = [0.0] * config.num_banks
        # Undo journal: (completion_time, addr, old_bytes).
        self._journal: list[tuple[float, int, bytes]] = []
        self.total_read_bytes = 0
        self.total_write_bytes = 0
        self._regions: dict[str, tuple[int, int]] = {}
        self.region_write_bytes: dict[str, int] = {}
        self.injector = None
        """Optional :class:`~repro.faults.plan.FaultInjector`: filters
        timed writes (stuck-at media faults) and decides what in-flight
        writes leave behind at a crash (torn writes).  None — the
        default — costs one attribute test per write."""
        self.tracer = None
        """Optional tracer (set by the machine's ``tracer`` property);
        emits one ``nvram_write`` event per timed write.  ``poke`` and
        bulk image restores are untimed setup paths and never emit."""

    def row_buffer_access(self, bank: int, row: int) -> bool:
        """Touch ``row`` in ``bank``'s row buffers; True on a hit."""
        rows = self.open_rows[bank]
        if row in rows:
            rows.remove(row)
            rows.append(row)
            return True
        rows.append(row)
        if len(rows) > self.config.row_buffers_per_bank:
            rows.pop(0)
        return False

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def bank_of(self, addr: int) -> int:
        """Bank index for ``addr`` (cache-line interleaved across banks,
        the usual DIMM configuration: sequential lines hit distinct banks
        so streams — like the log — use all-bank bandwidth)."""
        return (addr // self.config.interleave_bytes) % self.config.num_banks

    def row_of(self, addr: int) -> int:
        """Row index (within its bank) for ``addr``.

        With line interleaving, one row per bank covers a contiguous
        ``row_bytes * num_banks`` stripe of the address space.
        """
        return addr // (self.config.row_bytes * self.config.num_banks)

    # ------------------------------------------------------------------
    # Region registration (stats only)
    # ------------------------------------------------------------------
    def register_region(self, name: str, base: int, size: int) -> None:
        """Label an address range for per-region write accounting."""
        check_range(base, size, self._size, f"region {name}")
        self._regions[name] = (base, size)
        self.region_write_bytes.setdefault(name, 0)

    def _account_region_write(self, addr: int, size: int) -> None:
        for name, (base, rsize) in self._regions.items():
            if base <= addr < base + rsize:
                self.region_write_bytes[name] += size
                return

    def _note_write(self, addr: int, end: int) -> None:
        """Fold ``[addr, end)`` into the dirty-extent windows."""
        if addr < self._mid:
            if end > self._lo_hwm:
                self._lo_hwm = end
        elif addr < self._hi_lwm:
            self._hi_lwm = addr

    # ------------------------------------------------------------------
    # Functional access
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> bytes:
        """Functional read of ``size`` bytes (no timing)."""
        end = addr + size
        if addr < 0 or size < 0 or end > self._size:
            raise AddressError(
                f"NVRAM read out of range: addr={addr:#x} size={size} "
                f"limit={self._size:#x}"
            )
        self.total_read_bytes += size
        return bytes(self.image[addr:end])

    def peek(self, addr: int, size: int) -> bytes:
        """Read without touching traffic counters (for recovery/tests)."""
        end = addr + size
        if addr < 0 or size < 0 or end > self._size:
            raise AddressError(
                f"NVRAM peek out of range: addr={addr:#x} size={size} "
                f"limit={self._size:#x}"
            )
        return bytes(self.image[addr:end])

    def write(self, addr: int, data: bytes, completion_time: float = 0.0) -> None:
        """Apply a write that becomes durable at ``completion_time``.

        The write is applied to the image immediately (the simulator is
        functional-first); if crash tracking is on, the overwritten bytes
        are journaled so :meth:`revert_after` can undo writes that were
        still in flight at a crash.
        """
        size = len(data)
        end = addr + size
        if addr < 0 or end > self._size:
            raise AddressError(
                f"NVRAM write out of range: addr={addr:#x} size={size} "
                f"limit={self._size:#x}"
            )
        if self.injector is not None:
            data = self.injector.filter_write(addr, data)
        if self._track:
            old = bytes(self.image[addr:end])
            self._journal.append((completion_time, addr, old))
        self.image[addr:end] = data
        self._note_write(addr, end)
        self.total_write_bytes += size
        self._account_region_write(addr, size)
        if self.tracer is not None:
            self.tracer.emit(
                completion_time,
                "nvram_write",
                -1,
                addr=addr,
                size=size,
                completion=completion_time,
            )

    def poke(self, addr: int, data: bytes) -> None:
        """Write without timing, journaling, or counters (setup/recovery)."""
        end = addr + len(data)
        if addr < 0 or end > self._size:
            raise AddressError(
                f"NVRAM poke out of range: addr={addr:#x} size={len(data)} "
                f"limit={self._size:#x}"
            )
        self.image[addr:end] = data
        if addr < self._mid:
            if end > self._lo_hwm:
                self._lo_hwm = end
        elif addr < self._hi_lwm:
            self._hi_lwm = addr

    def load_image_prefix(self, data: bytes) -> None:
        """Bulk-restore ``data`` at address 0 (prepared-workload restore)."""
        if len(data) > self._size:
            raise AddressError(
                f"image prefix of {len(data)} bytes exceeds device size {self._size}"
            )
        self.image[: len(data)] = data
        self._note_write(0, len(data))

    def written_extent(self) -> tuple[int, int]:
        """The dirty-extent windows as ``(lo_end, hi_start)``.

        All bytes that may differ from zero lie in ``[0, lo_end)`` or
        ``[hi_start, size)``.
        """
        return self._lo_hwm, self._hi_lwm

    def recycle(self) -> None:
        """Re-zero the written extents and return the buffer to the pool.

        Only call when the device (and its machine) will not be used
        again — sweeps do this after extracting a cell's stats.  The
        image is detached so any later access fails loudly rather than
        reading a reused buffer.
        """
        image = self.image
        if image is None:
            return
        self.image = None
        image[: self._lo_hwm] = bytes(self._lo_hwm)
        if self._hi_lwm < self._size:
            image[self._hi_lwm:] = bytes(self._size - self._hi_lwm)
        pool = NVRAM._image_pool.setdefault(self._size, [])
        if len(pool) < NVRAM._IMAGE_POOL_LIMIT:
            pool.append(image)

    # ------------------------------------------------------------------
    # Crash support
    # ------------------------------------------------------------------
    def retire_journal(self, now: float) -> None:
        """Drop journal entries already durable at ``now`` (bounds memory)."""
        if not self._journal:
            return
        keep = [entry for entry in self._journal if entry[0] > now]
        self._journal = keep

    def revert_after(self, crash_time: float) -> int:
        """Undo writes whose durability time is after ``crash_time``.

        Entries are reverted in reverse application order, which restores
        the image to exactly the set of writes durable at the crash (writes
        to the same address are serviced FIFO by their bank, so the lost
        set is a per-address suffix).  Returns the number of reverted
        writes.

        An installed fault injector may *tear* an in-flight write instead
        of fully reverting it (:meth:`~repro.faults.plan.FaultInjector
        .on_revert`): part of the new data persists, modelling a write
        that was partially transferred at the power cut.
        """
        if not self._track:
            raise AddressError("crash tracking disabled for this NVRAM device")
        injector = self.injector
        reverted = 0
        for completion, addr, old in reversed(self._journal):
            if completion > crash_time:
                left = old
                if injector is not None:
                    new = bytes(self.image[addr:addr + len(old)])
                    left = injector.on_revert(addr, old, new)
                self.image[addr:addr + len(old)] = left
                reverted += 1
        self._journal = []
        return reverted

    @property
    def journal_length(self) -> int:
        """Number of not-yet-retired journal entries (test visibility)."""
        return len(self._journal)
