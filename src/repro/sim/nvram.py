"""Byte-addressable NVRAM device: functional image plus bank/row state.

The device owns the persistent byte image and the per-bank row-buffer
state used by the memory controller for timing.  For crash testing it also
keeps an *undo journal* of recently applied writes so that
:meth:`revert_after` can discard writes that had been posted but were not
yet durable at the crash instant (writes still in the controller's queues
or in flight on the banks are, architecturally, volatile).
"""

from __future__ import annotations

from typing import Optional

from ..errors import AddressError
from ..utils import check_range
from .config import NVDimmConfig


class NVRAM:
    """NVRAM DIMM: persistent image, banks, row buffers, traffic counters."""

    def __init__(self, config: NVDimmConfig, track_crash_state: bool = True) -> None:
        config.validate()
        self.config = config
        self.image = bytearray(config.size_bytes)
        self._track = track_crash_state
        # Per-bank open rows (LRU list, newest last; the cited PCM design
        # has several row buffers per bank) and next-free times.  Reads
        # and writes are tracked separately: the memory controller
        # schedules reads with priority and drains posted writes in the
        # gaps (see MemoryController._service).
        self.open_rows: list[list[int]] = [[] for _ in range(config.num_banks)]
        self.bank_read_free: list[float] = [0.0] * config.num_banks
        self.bank_write_free: list[float] = [0.0] * config.num_banks
        # Undo journal: (completion_time, addr, old_bytes).
        self._journal: list[tuple[float, int, bytes]] = []
        self.total_read_bytes = 0
        self.total_write_bytes = 0
        self._regions: dict[str, tuple[int, int]] = {}
        self.region_write_bytes: dict[str, int] = {}

    def row_buffer_access(self, bank: int, row: int) -> bool:
        """Touch ``row`` in ``bank``'s row buffers; True on a hit."""
        rows = self.open_rows[bank]
        if row in rows:
            rows.remove(row)
            rows.append(row)
            return True
        rows.append(row)
        if len(rows) > self.config.row_buffers_per_bank:
            rows.pop(0)
        return False

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def bank_of(self, addr: int) -> int:
        """Bank index for ``addr`` (cache-line interleaved across banks,
        the usual DIMM configuration: sequential lines hit distinct banks
        so streams — like the log — use all-bank bandwidth)."""
        return (addr // self.config.interleave_bytes) % self.config.num_banks

    def row_of(self, addr: int) -> int:
        """Row index (within its bank) for ``addr``.

        With line interleaving, one row per bank covers a contiguous
        ``row_bytes * num_banks`` stripe of the address space.
        """
        return addr // (self.config.row_bytes * self.config.num_banks)

    # ------------------------------------------------------------------
    # Region registration (stats only)
    # ------------------------------------------------------------------
    def register_region(self, name: str, base: int, size: int) -> None:
        """Label an address range for per-region write accounting."""
        check_range(base, size, self.config.size_bytes, f"region {name}")
        self._regions[name] = (base, size)
        self.region_write_bytes.setdefault(name, 0)

    def _account_region_write(self, addr: int, size: int) -> None:
        for name, (base, rsize) in self._regions.items():
            if base <= addr < base + rsize:
                self.region_write_bytes[name] += size
                return

    # ------------------------------------------------------------------
    # Functional access
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> bytes:
        """Functional read of ``size`` bytes (no timing)."""
        check_range(addr, size, self.config.size_bytes, "NVRAM read")
        self.total_read_bytes += size
        return bytes(self.image[addr:addr + size])

    def peek(self, addr: int, size: int) -> bytes:
        """Read without touching traffic counters (for recovery/tests)."""
        check_range(addr, size, self.config.size_bytes, "NVRAM peek")
        return bytes(self.image[addr:addr + size])

    def write(self, addr: int, data: bytes, completion_time: float = 0.0) -> None:
        """Apply a write that becomes durable at ``completion_time``.

        The write is applied to the image immediately (the simulator is
        functional-first); if crash tracking is on, the overwritten bytes
        are journaled so :meth:`revert_after` can undo writes that were
        still in flight at a crash.
        """
        size = len(data)
        check_range(addr, size, self.config.size_bytes, "NVRAM write")
        if self._track:
            old = bytes(self.image[addr:addr + size])
            self._journal.append((completion_time, addr, old))
        self.image[addr:addr + size] = data
        self.total_write_bytes += size
        self._account_region_write(addr, size)

    def poke(self, addr: int, data: bytes) -> None:
        """Write without timing, journaling, or counters (setup/recovery)."""
        check_range(addr, len(data), self.config.size_bytes, "NVRAM poke")
        self.image[addr:addr + len(data)] = data

    # ------------------------------------------------------------------
    # Crash support
    # ------------------------------------------------------------------
    def retire_journal(self, now: float) -> None:
        """Drop journal entries already durable at ``now`` (bounds memory)."""
        if not self._journal:
            return
        keep = [entry for entry in self._journal if entry[0] > now]
        self._journal = keep

    def revert_after(self, crash_time: float) -> int:
        """Undo writes whose durability time is after ``crash_time``.

        Entries are reverted in reverse application order, which restores
        the image to exactly the set of writes durable at the crash (writes
        to the same address are serviced FIFO by their bank, so the lost
        set is a per-address suffix).  Returns the number of reverted
        writes.
        """
        if not self._track:
            raise AddressError("crash tracking disabled for this NVRAM device")
        reverted = 0
        for completion, addr, old in reversed(self._journal):
            if completion > crash_time:
                self.image[addr:addr + len(old)] = old
                reverted += 1
        self._journal = []
        return reverted

    @property
    def journal_length(self) -> int:
        """Number of not-yet-retired journal entries (test visibility)."""
        return len(self._journal)
