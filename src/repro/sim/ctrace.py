"""Compiled workload traces: compact column-oriented micro-op streams.

The trace-compilation engine (:mod:`repro.sim.replay`) decodes each
workload's abstract operation stream **once** — per (workload identity,
thread count, transactions per thread) — into the columns held here, and
then replays the columns under any number of
:class:`~repro.core.design.DesignSpec` cells.  Columns are stdlib
``array.array`` instances (``'B'``/``'q'``/``'Q'`` typecodes); an optional
numpy fast path accelerates the derived-column computation at decode time
and is bit-identical by construction (it computes the same integers; a
unit test compares both).  When numpy is absent the stdlib path runs
automatically.

Symbolic addresses
------------------

A thread's allocation results depend on how the per-cell interleaving
orders the shared heap's bump cursor and free lists, so recorded traces
cannot bake real addresses of run-time allocations in.  The recorder
instead hands out *symbolic block tokens*::

    token = SYM_BASE + block_id * SYM_STRIDE + offset_in_block

with ``SYM_BASE = 2**52`` — far above any real address (the NVRAM device
is tens of MB) and below any workload data value that could be mistaken
for a pointer (string-element payloads repeat a byte, so their smallest
non-zero word value is ``0x0101_0101_0101_0101 > 2**56``).  At replay the
engine performs the thread's allocations live against the real heap and
binds each block id to the address actually returned; every recorded
address or pointer-valued word relocates through that binding.

Write values are stored per *word piece* (the units
:func:`repro.utils.split_words` produces — never more than 8 bytes) as
integers; a piece whose value is a symbolic token is flagged and
re-encoded with its relocated address at replay.
"""

from __future__ import annotations

import json
import sys
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Optional

try:  # optional fast path; the stdlib path below is the reference
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI images
    _np = None

TRACE_FORMAT = "ctrace-v1"
_MAGIC = b"CTRC0001"

# Op kinds (the ``kinds`` column).
K_COMPUTE = 0  # a = instruction count
K_READ = 1  # a = address, b = size
K_WRITE = 2  # a = first piece index, b = piece count
K_ALLOC = 3  # a = requested size, b = returned token (symbolic or real)
K_FREE = 4  # a = address token, b = requested size
K_TX_BEGIN = 5
K_TX_COMMIT = 6
K_YIELD = 7  # generator yield point (interleaving boundary)

SYM_BASE = 1 << 52
SYM_STRIDE = 1 << 24
SYM_OFF_MASK = SYM_STRIDE - 1


def sym_token(block_id: int) -> int:
    """The symbolic base address of allocation ``block_id``."""
    return SYM_BASE + block_id * SYM_STRIDE


def sym_block(addr: int) -> int:
    """Block id of a symbolic address."""
    return (addr - SYM_BASE) >> 24


def numpy_available() -> bool:
    """True when the optional numpy fast path is usable."""
    return _np is not None


@dataclass
class CompiledThread:
    """One thread's recorded op stream as parallel columns."""

    kinds: array = field(default_factory=lambda: array("B"))
    a: array = field(default_factory=lambda: array("q"))
    b: array = field(default_factory=lambda: array("q"))
    # Per-write-piece columns (a WRITE op spans a [a, a+b) slice of these).
    piece_addr: array = field(default_factory=lambda: array("q"))
    piece_len: array = field(default_factory=lambda: array("B"))
    piece_sym: array = field(default_factory=lambda: array("B"))
    piece_val: array = field(default_factory=lambda: array("Q"))
    #: Derived (decode-time, never serialised): for READ ops with a real
    #: address that stays inside one cache line, the line base address;
    #: -1 otherwise.  Lets the replay loop skip per-access line math.
    read_line: Optional[array] = None
    #: Derived: pre-encoded bytes per write piece (None for symbolic
    #: pointer pieces, which re-encode with their relocated address per
    #: replay).  Saves an ``int.to_bytes`` per piece per cell.
    piece_data: Optional[list] = None

    def op_count(self) -> int:
        """Number of recorded ops (yield markers included)."""
        return len(self.kinds)

    # ------------------------------------------------------------------
    # Analyzer views (static verifier / happens-before detector).  These
    # expose the columns as per-op tuples without copying; the consumers
    # walk each thread exactly once.
    # ------------------------------------------------------------------
    def iter_ops(self):
        """Yield ``(index, kind, a, b)`` for every recorded op."""
        kinds = self.kinds
        a = self.a
        b = self.b
        for i in range(len(kinds)):
            yield i, kinds[i], a[i], b[i]

    def write_pieces(self, first: int, count: int):
        """Yield ``(piece_index, addr, length, symbolic)`` for a WRITE op.

        ``first``/``count`` are the op's ``a``/``b`` column values.
        Addresses may be symbolic block tokens (see the module
        docstring); analyzers treat symbolic and real addresses
        uniformly, since distinct blocks never alias.
        """
        piece_addr = self.piece_addr
        piece_len = self.piece_len
        piece_sym = self.piece_sym
        for j in range(first, first + count):
            yield j, piece_addr[j], piece_len[j], bool(piece_sym[j])

    def txn_spans(self) -> list:
        """``(begin_index, commit_index)`` per transaction, in order.

        ``commit_index`` is ``None`` for a transaction left open at the
        end of the recorded stream (never the case for traces the
        compiler produces, but synthetic analyzer inputs may be
        truncated).
        """
        spans: list = []
        open_at = None
        for i, kind in enumerate(self.kinds):
            if kind == K_TX_BEGIN:
                open_at = i
            elif kind == K_TX_COMMIT and open_at is not None:
                spans.append((open_at, i))
                open_at = None
        if open_at is not None:
            spans.append((open_at, None))
        return spans

    # ------------------------------------------------------------------
    def derive_read_lines(self, line_size: int, use_numpy: Optional[bool] = None) -> None:
        """Build :attr:`read_line` (numpy when available, else stdlib).

        Both paths compute the same integers; ``use_numpy`` forces one
        implementation (tests compare the two).
        """
        if use_numpy is None:
            use_numpy = _np is not None
        mask = line_size - 1
        if use_numpy and _np is not None:
            kinds = _np.frombuffer(self.kinds, dtype=_np.uint8)
            a = _np.frombuffer(self.a, dtype=_np.int64)
            b = _np.frombuffer(self.b, dtype=_np.int64)
            line = a & ~mask
            single = (
                (kinds == K_READ)
                & (a >= 0)
                & (a < SYM_BASE)
                & (((a + b - 1) & ~mask) == line)
            )
            out = _np.where(single, line, -1)
            self.read_line = array("q", out.tobytes())
            return
        out = array("q", bytes(8 * len(self.kinds)))
        kinds = self.kinds
        a = self.a
        b = self.b
        for i in range(len(kinds)):
            if kinds[i] == K_READ:
                addr = a[i]
                line = addr & ~mask
                if 0 <= addr < SYM_BASE and (addr + b[i] - 1) & ~mask == line:
                    out[i] = line
                    continue
            out[i] = -1
        self.read_line = out

    def derive_piece_data(self) -> None:
        """Pre-encode non-symbolic piece values as bytes."""
        piece_val = self.piece_val
        piece_len = self.piece_len
        piece_sym = self.piece_sym
        self.piece_data = [
            None if piece_sym[j] else piece_val[j].to_bytes(piece_len[j], "little")
            for j in range(len(piece_val))
        ]

    # ------------------------------------------------------------------
    _COLUMNS = ("kinds", "a", "b", "piece_addr", "piece_len", "piece_sym", "piece_val")

    def column_blobs(self) -> list:
        """Raw column bytes, in :data:`_COLUMNS` order."""
        return [getattr(self, name).tobytes() for name in self._COLUMNS]

    @classmethod
    def from_blobs(cls, blobs: list) -> "CompiledThread":
        """Rebuild a thread from :meth:`column_blobs` output."""
        thread = cls()
        for name, blob in zip(cls._COLUMNS, blobs):
            column = getattr(thread, name)
            column.frombytes(blob)
        return thread


@dataclass
class CompiledTrace:
    """A fully decoded workload: columns plus the prepared initial state.

    Self-contained for replay — the original workload object is only
    needed to *compile* (its ``thread_body`` is recorded once); replaying
    needs the initial NVRAM prefix, the heap snapshot and the columns.
    """

    workload_key: tuple
    threads: int
    txns_per_thread: int
    image_prefix: bytes
    image_size: int
    heap_state: tuple
    block_sizes: list
    thread_cols: list
    #: Line size the derived columns were computed for (None = underived).
    derived_line_size: Optional[int] = None

    def op_count(self) -> int:
        """Total recorded ops across threads."""
        return sum(col.op_count() for col in self.thread_cols)

    def piece_count(self) -> int:
        """Total recorded write pieces across threads."""
        return sum(len(col.piece_addr) for col in self.thread_cols)

    def derive(self, line_size: int, use_numpy: Optional[bool] = None) -> None:
        """Compute every thread's derived columns for ``line_size``."""
        for col in self.thread_cols:
            col.derive_read_lines(line_size, use_numpy)
            if col.piece_data is None:
                col.derive_piece_data()
        self.derived_line_size = line_size

    # ------------------------------------------------------------------
    # Pickling (worker shipping) reuses the compact binary codec; the
    # derived columns are dropped and recomputed in the receiving process.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"blob": self.to_bytes()}

    def __setstate__(self, state: dict) -> None:
        restored = CompiledTrace.from_bytes(state["blob"])
        self.__dict__.update(restored.__dict__)

    # ------------------------------------------------------------------
    # Binary codec (content-addressed trace cache files)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise: JSON header + zlib image prefix + zlib column blobs."""
        image_blob = zlib.compress(self.image_prefix, 1)
        column_blobs = []
        column_lens = []
        for col in self.thread_cols:
            blobs = col.column_blobs()
            column_lens.append([len(blob) for blob in blobs])
            column_blobs.extend(blobs)
        columns_blob = zlib.compress(b"".join(column_blobs), 1)
        cursor, free = self.heap_state
        header = {
            "format": TRACE_FORMAT,
            "byteorder": sys.byteorder,
            "workload_key": _key_to_json(self.workload_key),
            "threads": self.threads,
            "txns_per_thread": self.txns_per_thread,
            "image_size": self.image_size,
            "image_blob_len": len(image_blob),
            "heap_cursor": cursor,
            "heap_free": {str(size): list(addrs) for size, addrs in free.items()},
            "block_sizes": list(self.block_sizes),
            "column_lens": column_lens,
            "columns_blob_len": len(columns_blob),
        }
        head = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        body = b"".join(
            [_MAGIC, len(head).to_bytes(4, "little"), head, image_blob, columns_blob]
        )
        # CRC32 trailer over everything before it: on-disk cache entries
        # can rot (torn writes, bit flips), and a flip inside the zlib
        # streams would otherwise either raise ``zlib.error`` or —
        # worse — decode to silently wrong replay columns.
        return body + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")

    @classmethod
    def from_bytes(cls, payload: bytes, line_size: Optional[int] = None) -> "CompiledTrace":
        """Decode :meth:`to_bytes` output; raises ``ValueError`` on any
        mismatch (magic, checksum, format version, byte order)."""
        if payload[:8] != _MAGIC:
            raise ValueError("not a compiled-trace blob")
        if len(payload) < 16:
            raise ValueError("truncated compiled-trace blob")
        # Verify the CRC32 trailer before trusting a single byte of the
        # header or the compressed streams.
        stored = int.from_bytes(payload[-4:], "little")
        computed = zlib.crc32(payload[:-4]) & 0xFFFFFFFF
        if stored != computed:
            raise ValueError(
                f"compiled-trace checksum mismatch "
                f"(stored {stored:#010x}, computed {computed:#010x})"
            )
        payload = payload[:-4]
        head_len = int.from_bytes(payload[8:12], "little")
        header = json.loads(payload[12:12 + head_len].decode())
        if header.get("format") != TRACE_FORMAT:
            raise ValueError(f"unsupported trace format {header.get('format')!r}")
        if header.get("byteorder") != sys.byteorder:
            raise ValueError("trace written with a different byte order")
        cursor = 12 + head_len
        image_blob = payload[cursor:cursor + header["image_blob_len"]]
        cursor += header["image_blob_len"]
        columns_raw = zlib.decompress(
            payload[cursor:cursor + header["columns_blob_len"]]
        )
        threads = []
        offset = 0
        for lens in header["column_lens"]:
            blobs = []
            for blob_len in lens:
                blobs.append(columns_raw[offset:offset + blob_len])
                offset += blob_len
            threads.append(CompiledThread.from_blobs(blobs))
        trace = cls(
            workload_key=_key_from_json(header["workload_key"]),
            threads=header["threads"],
            txns_per_thread=header["txns_per_thread"],
            image_prefix=zlib.decompress(image_blob),
            image_size=header["image_size"],
            heap_state=(
                header["heap_cursor"],
                {int(size): list(addrs) for size, addrs in header["heap_free"].items()},
            ),
            block_sizes=list(header["block_sizes"]),
            thread_cols=threads,
        )
        if line_size is not None:
            trace.derive(line_size)
        return trace


def _key_to_json(key):
    """Identity keys are nested tuples of strings; JSON stores lists."""
    if isinstance(key, tuple):
        return [_key_to_json(item) for item in key]
    return key


def _key_from_json(key):
    if isinstance(key, list):
        return tuple(_key_from_json(item) for item in key)
    return key
