"""Dynamic energy model (McPAT substitute).

The paper feeds McSimA+ results into McPAT and reports *relative* dynamic
energy, observing that processor dynamic energy barely changes between
configurations while memory dynamic energy tracks NVRAM traffic.  We model
exactly the quantities those relative results depend on:

* NVRAM access energy using the per-bit PCM parameters of Table II
  (row-buffer read/write 0.93/1.02 pJ/bit, array read/write 2.47/16.82
  pJ/bit).  Writes always pay the array-write energy (the dominant PCM
  cost); reads pay the array-read energy only on a row-buffer conflict.
* Cache access energy per L1/LLC access.
* Core energy per retired instruction.
"""

from __future__ import annotations

from .config import EnergyConfig
from .stats import MachineStats


class EnergyModel:
    """Accumulates dynamic energy into a :class:`MachineStats`."""

    def __init__(self, config: EnergyConfig, stats: MachineStats) -> None:
        self._config = config
        self._stats = stats

    def nvram_read(self, size_bytes: int, row_hit: bool) -> None:
        """Charge a NVRAM read of ``size_bytes`` (row hit or conflict)."""
        bits = size_bytes * 8
        pj = self._config.nvram_row_buffer_read_pj_per_bit * bits
        if not row_hit:
            pj += self._config.nvram_array_read_pj_per_bit * bits
        self._stats.energy_nvram_pj += pj

    def nvram_write(self, size_bytes: int, row_hit: bool) -> None:
        """Charge a NVRAM write; array-write energy always applies."""
        bits = size_bytes * 8
        pj = self._config.nvram_row_buffer_write_pj_per_bit * bits
        pj += self._config.nvram_array_write_pj_per_bit * bits
        self._stats.energy_nvram_pj += pj

    def cache_access(self, level: str) -> None:
        """Charge one access to ``level`` ("l1" or "llc")."""
        if level == "l1":
            self._stats.energy_cache_pj += self._config.l1_access_pj
        else:
            self._stats.energy_cache_pj += self._config.llc_access_pj

    def instructions(self, count: int) -> None:
        """Charge ``count`` retired instructions of core energy."""
        self._stats.energy_core_pj += self._config.instruction_pj * count
