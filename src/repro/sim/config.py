"""System configuration dataclasses.

Defaults follow Table II of the paper:

* 4 cores at 2.5 GHz (2 hardware threads per core; we model one simulated
  core per software thread),
* 32 KB 8-way L1D with 64 B lines at 1.6 ns,
* 8 MB 16-way shared LLC at 4.4 ns,
* 64-/64-entry memory-controller read/write queues,
* NVRAM DIMM with 8 banks, 2 KB rows, 36 ns row-buffer hit and 100/300 ns
  read/write row-buffer conflicts, and the PCM energy parameters of Lee et
  al. (row buffer 0.93/1.02 pJ/bit, array 2.47/16.82 pJ/bit).

Experiments may scale the LLC and memory footprint down together (the
ratios, not the absolute sizes, drive the paper's relative results); see
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import ConfigError
from ..utils import ns_to_cycles, require_power_of_two


@dataclass(frozen=True)
class CoreConfig:
    """Per-core pipeline cost model.

    The simulator is not a cycle-accurate out-of-order model; instead each
    micro-op charges a calibrated latency.  ``*_exposed`` factors model the
    fraction of a miss latency an out-of-order window cannot hide.
    """

    clock_ghz: float = 2.5
    cpi_alu: float = 0.35
    load_issue_cycles: float = 1.0
    store_issue_cycles: float = 1.0
    load_miss_exposed: float = 0.55
    store_miss_exposed: float = 0.25
    clwb_issue_cycles: float = 2.0
    fence_issue_cycles: float = 1.0
    uncached_store_issue_cycles: float = 8.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range values."""
        if self.clock_ghz <= 0:
            raise ConfigError("clock_ghz must be positive")
        if self.cpi_alu <= 0:
            raise ConfigError("cpi_alu must be positive")
        for name in ("load_miss_exposed", "store_miss_exposed"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int = 32 * 1024
    ways: int = 8
    line_size: int = 64
    latency_ns: float = 1.6

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.ways

    def latency_cycles(self, clock_ghz: float) -> int:
        """Access latency converted to core cycles."""
        return ns_to_cycles(self.latency_ns, clock_ghz)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent geometry."""
        require_power_of_two(self.line_size, "cache line size")
        if self.size_bytes % self.line_size:
            raise ConfigError("cache size must be a multiple of the line size")
        if self.num_lines % self.ways:
            raise ConfigError("cache lines must divide evenly into ways")
        require_power_of_two(self.num_sets, "number of cache sets")


@dataclass(frozen=True)
class MemCtrlConfig:
    """Memory-controller queue geometry and overheads."""

    read_queue_entries: int = 64
    write_queue_entries: int = 64
    queue_latency_ns: float = 4.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid queue sizes."""
        if self.read_queue_entries <= 0 or self.write_queue_entries <= 0:
            raise ConfigError("queue sizes must be positive")


@dataclass(frozen=True)
class NVDimmConfig:
    """NVRAM DIMM (PCM-like) timing, geometry, and capacity."""

    size_bytes: int = 64 * 1024 * 1024
    num_banks: int = 8
    row_bytes: int = 2048
    interleave_bytes: int = 64
    """Bank interleaving granularity (one cache line: sequential lines map
    to distinct banks)."""
    row_buffers_per_bank: int = 8
    """PCM banks with multiple row buffers, as in the Lee et al. DIMM
    architecture the paper's Table II cites — an access hits if its row is
    in any of the bank's buffers (LRU replacement)."""
    bus_cycles_per_transfer: float = 12.0
    """Channel occupancy per 64 B transfer (~13 GB/s at 2.5 GHz).  The
    shared bus is what makes unbuffered log updates stall the pipeline —
    the effect Figure 11(a) quantifies."""
    row_hit_ns: float = 36.0
    read_conflict_ns: float = 100.0
    write_conflict_ns: float = 300.0
    infinite_write_bandwidth: bool = False
    """When True, writes always complete at row-buffer-hit speed with no
    queue limit.  Used only for the 128/256-entry points of Figure 11(a),
    which the paper generates "assuming infinite NVRAM write bandwidth"."""
    adr_persist_domain: bool = False
    """ADR-style persistence domain: a write is durable once the memory
    controller accepts it (residual energy drains the queues on power
    failure).  The paper's 2018 model assumes NO ADR — writes must reach
    the NVRAM array — which is what makes clwb+fence expensive; this flag
    exists for the what-if ablation."""

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent DIMM geometry."""
        require_power_of_two(self.num_banks, "NVRAM bank count")
        require_power_of_two(self.row_bytes, "NVRAM row size")
        require_power_of_two(self.interleave_bytes, "NVRAM interleave granularity")
        if self.interleave_bytes > self.row_bytes:
            raise ConfigError("interleave granularity exceeds the row size")
        if self.row_buffers_per_bank <= 0:
            raise ConfigError("each bank needs at least one row buffer")
        if self.size_bytes % (self.row_bytes * self.num_banks):
            raise ConfigError("NVRAM size must be a whole number of rows per bank")


@dataclass(frozen=True)
class EnergyConfig:
    """Dynamic energy parameters (pJ).

    NVRAM values are per-bit from the paper's Table II; cache and core
    values are McPAT-like constants.  Only relative energy matters for the
    reproduced figures.
    """

    nvram_row_buffer_read_pj_per_bit: float = 0.93
    nvram_row_buffer_write_pj_per_bit: float = 1.02
    nvram_array_read_pj_per_bit: float = 2.47
    nvram_array_write_pj_per_bit: float = 16.82
    l1_access_pj: float = 20.0
    llc_access_pj: float = 160.0
    instruction_pj: float = 70.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on negative energy parameters."""
        for name in (
            "nvram_row_buffer_read_pj_per_bit",
            "nvram_row_buffer_write_pj_per_bit",
            "nvram_array_read_pj_per_bit",
            "nvram_array_write_pj_per_bit",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class LoggingConfig:
    """Parameters of the logging machinery (hardware and software).

    ``log_entries`` * ``log_entry_size`` gives the circular-log region size
    (the paper's running example: 64K entries x 64 B = 4 MB).
    ``log_buffer_entries`` is the optional volatile FIFO in the memory
    controller; the paper's persistence bound for the Table II machine is
    15 entries.  ``wcb_entries`` models the 4-6 line write-combining buffer
    used for uncacheable software log stores.
    """

    log_entries: int = 65536
    log_entry_size: int = 64
    log_buffer_entries: int = 15
    wcb_entries: int = 6
    enable_log_grow: bool = False
    """Section IV-A's log_grow(): allocate additional log regions instead
    of overwriting an active transaction's records."""
    log_grow_reserve_regions: int = 3
    """NVRAM regions reserved for log growth (each log_bytes large)."""
    distributed_logs: int = 0
    """Section III-F's distributed design: split the log region into this
    many per-thread rings (0 = the paper's centralized log)."""
    fwb_scan_cost_per_line: float = 0.8
    fwb_scan_interval_override: Optional[int] = None
    fwb_safety_factor: float = 2.0
    softlog_instrs_per_record: int = 8
    softlog_instrs_tx_begin: int = 8
    softlog_instrs_tx_commit: int = 8
    hw_instrs_tx_begin: int = 4
    hw_instrs_tx_commit: int = 2
    """tx_begin/tx_commit under hardware logging are plain function calls
    writing the txid special register; a handful of instructions each."""

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent logging parameters."""
        require_power_of_two(self.log_entries, "log entry count")
        if self.log_entry_size not in (32, 64):
            raise ConfigError("log entry size must be 32 or 64 bytes")
        if self.log_buffer_entries < 0:
            raise ConfigError("log buffer size must be >= 0")
        if self.wcb_entries <= 0:
            raise ConfigError("WCB must have at least one entry")
        if self.distributed_logs < 0:
            raise ConfigError("distributed_logs must be >= 0")
        if self.distributed_logs and self.log_entries % self.distributed_logs:
            raise ConfigError("log entries must split evenly into rings")
        if self.distributed_logs and self.enable_log_grow:
            raise ConfigError("log growth is only supported for the centralized log")
        if self.enable_log_grow and self.log_grow_reserve_regions <= 0:
            raise ConfigError("log growth needs at least one reserve region")

    @property
    def log_bytes(self) -> int:
        """Size of the circular log region in bytes."""
        return self.log_entries * self.log_entry_size


@dataclass(frozen=True)
class SystemConfig:
    """Complete machine configuration (Table II defaults)."""

    num_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(default_factory=CacheConfig)
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=8 * 1024 * 1024, ways=16, line_size=64, latency_ns=4.4
        )
    )
    memctrl: MemCtrlConfig = field(default_factory=MemCtrlConfig)
    nvram: NVDimmConfig = field(default_factory=NVDimmConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    logging: LoggingConfig = field(default_factory=LoggingConfig)
    track_crash_state: bool = True
    """Keep the bookkeeping needed for Machine.crash(); benchmark sweeps may
    disable it for speed."""

    def validate(self) -> "SystemConfig":
        """Validate all sub-configs and cross-field constraints."""
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")
        self.core.validate()
        self.l1.validate()
        self.llc.validate()
        self.memctrl.validate()
        self.nvram.validate()
        self.energy.validate()
        self.logging.validate()
        if self.l1.line_size != self.llc.line_size:
            raise ConfigError("L1 and LLC must share a line size")
        if self.logging.log_bytes >= self.nvram.size_bytes:
            raise ConfigError("log region does not fit in NVRAM")
        return self

    @property
    def line_size(self) -> int:
        """System-wide cache-line size in bytes."""
        return self.l1.line_size

    def scaled(self, **overrides) -> "SystemConfig":
        """Return a copy with fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)

    def min_store_traversal_cycles(self) -> int:
        """Minimum cycles for a cached store to exit the cache hierarchy.

        Section IV-C: the log buffer depth N must stay at or below this so
        log records reach the NVRAM bus before their data can.  With the
        Table II latencies (4-cycle L1 + 11-cycle LLC) this is 15 cycles,
        matching the paper's <= 15-entry bound.
        """
        ghz = self.core.clock_ghz
        return self.l1.latency_cycles(ghz) + self.llc.latency_cycles(ghz)

    def max_persistent_log_buffer_entries(self) -> int:
        """Largest log buffer that still guarantees persistence (15 here)."""
        return self.min_store_traversal_cycles()
