"""Set-associative cache holding real line data.

The cache is functional *and* timed: lines carry their 64 bytes so that
undo values (Section III-B: "its address, old value, and new value are all
available in the cache hierarchy") and crash states are exact.  Each line
also carries the paper's two persistence-related bits:

* ``dirty`` — standard write-back dirty bit;
* ``fwb`` — the extra force-write-back bit added by the FWB mechanism
  (Section IV-D), driving the IDLE/FLAG/FWB state machine.

``log_release`` records the time by which all HWL log records covering the
line's dirty words are durable; a write-back may not reach NVRAM earlier
(the inherent ordering guarantee of Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import SimulationError
from ..utils import line_address
from .config import CacheConfig


class CacheLine:
    """One cache line: tag (= line base address), data, and state bits."""

    __slots__ = ("addr", "data", "dirty", "fwb", "last_use", "log_release")

    def __init__(self, addr: int, data: bytes, now: float) -> None:
        self.addr = addr
        self.data = bytearray(data)
        self.dirty = False
        self.fwb = False
        self.last_use = now
        self.log_release = 0.0


@dataclass(frozen=True)
class EvictedLine:
    """A line pushed out of a cache (victim or invalidation)."""

    addr: int
    data: bytes
    dirty: bool
    log_release: float


class SetAssociativeCache:
    """LRU set-associative cache with write-back write-allocate semantics.

    Sets are allocated lazily (a dict keyed by set index) so that large
    caches cost memory only for the sets actually touched.
    """

    def __init__(self, config: CacheConfig, name: str) -> None:
        config.validate()
        self.config = config
        self.name = name
        self._sets: dict[int, list[CacheLine]] = {}
        self._num_sets = config.num_sets
        self._line_size = config.line_size

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self._line_size) % self._num_sets

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Return the line containing ``addr`` or None (no LRU update)."""
        line_addr = line_address(addr, self._line_size)
        bucket = self._sets.get(self._set_index(line_addr))
        if bucket is None:
            return None
        for line in bucket:
            if line.addr == line_addr:
                return line
        return None

    def touch(self, line: CacheLine, now: float) -> None:
        """Mark ``line`` most-recently-used at ``now``."""
        line.last_use = now

    # ------------------------------------------------------------------
    # Allocation / eviction
    # ------------------------------------------------------------------
    def insert(
        self, line_addr: int, data: bytes, now: float, dirty: bool = False
    ) -> Optional[EvictedLine]:
        """Insert a line, evicting the LRU victim if the set is full.

        Returns the evicted line (which the caller must write back if
        dirty) or None.  Inserting a line that is already present is a
        simulator bug and raises :class:`SimulationError`.
        """
        if len(data) != self._line_size:
            raise SimulationError(
                f"{self.name}: insert of {len(data)} bytes, line is {self._line_size}"
            )
        index = self._set_index(line_addr)
        bucket = self._sets.setdefault(index, [])
        for line in bucket:
            if line.addr == line_addr:
                raise SimulationError(f"{self.name}: duplicate insert {line_addr:#x}")
        victim: Optional[EvictedLine] = None
        if len(bucket) >= self.config.ways:
            lru = min(bucket, key=lambda ln: ln.last_use)
            bucket.remove(lru)
            victim = EvictedLine(lru.addr, bytes(lru.data), lru.dirty, lru.log_release)
        line = CacheLine(line_addr, data, now)
        line.dirty = dirty
        bucket.append(line)
        return victim

    def invalidate(self, addr: int) -> Optional[EvictedLine]:
        """Remove the line containing ``addr``; return its final state."""
        line_addr = line_address(addr, self._line_size)
        index = self._set_index(line_addr)
        bucket = self._sets.get(index)
        if not bucket:
            return None
        for line in bucket:
            if line.addr == line_addr:
                bucket.remove(line)
                return EvictedLine(
                    line.addr, bytes(line.data), line.dirty, line.log_release
                )
        return None

    def drop_all(self) -> None:
        """Discard every line (power loss)."""
        self._sets.clear()

    # ------------------------------------------------------------------
    # Iteration (FWB scanning, tests)
    # ------------------------------------------------------------------
    def iter_lines(self) -> Iterator[CacheLine]:
        """Iterate all valid lines (order unspecified)."""
        for bucket in self._sets.values():
            yield from bucket

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently cached."""
        return sum(len(bucket) for bucket in self._sets.values())

    def dirty_count(self) -> int:
        """Number of dirty lines (test/FWB visibility)."""
        return sum(1 for line in self.iter_lines() if line.dirty)
