"""Set-associative cache holding real line data.

The cache is functional *and* timed: lines carry their 64 bytes so that
undo values (Section III-B: "its address, old value, and new value are all
available in the cache hierarchy") and crash states are exact.  Each line
also carries the paper's two persistence-related bits:

* ``dirty`` — standard write-back dirty bit;
* ``fwb`` — the extra force-write-back bit added by the FWB mechanism
  (Section IV-D), driving the IDLE/FLAG/FWB state machine.

``log_release`` records the time by which all HWL log records covering the
line's dirty words are durable; a write-back may not reach NVRAM earlier
(the inherent ordering guarantee of Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import SimulationError
from ..utils import line_address
from .config import CacheConfig


class CacheLine:
    """One cache line: tag (= line base address), data, and state bits."""

    __slots__ = ("addr", "data", "dirty", "fwb", "last_use", "log_release")

    def __init__(self, addr: int, data: bytes, now: float) -> None:
        self.addr = addr
        self.data = bytearray(data)
        self.dirty = False
        self.fwb = False
        self.last_use = now
        self.log_release = 0.0


@dataclass(frozen=True)
class EvictedLine:
    """A line pushed out of a cache (victim or invalidation)."""

    addr: int
    data: bytes
    dirty: bool
    log_release: float


class SetAssociativeCache:
    """LRU set-associative cache with write-back write-allocate semantics.

    Sets are allocated lazily (a dict keyed by set index) so that large
    caches cost memory only for the sets actually touched.  Each set is
    itself a ``dict[tag -> CacheLine]`` — a tag probe is one hash lookup
    instead of a linear scan of up to ``ways`` tags, which is the
    simulator's single hottest operation (every load, store, fill,
    coherence probe and write-back probes a set).

    The insertion order of a set's dict doubles as the LRU tie-break
    order: Python dicts preserve insertion order, victim selection takes
    the minimum ``last_use`` with first-inserted winning ties, and
    removal + reinsertion moves a line to the back — exactly the order a
    list with ``append``/``remove`` (the previous representation)
    maintains, keeping eviction behaviour bit-identical.
    """

    def __init__(self, config: CacheConfig, name: str) -> None:
        config.validate()
        self.config = config
        self.name = name
        self._sets: dict[int, dict[int, CacheLine]] = {}
        self._num_sets = config.num_sets
        self._line_size = config.line_size

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self._line_size) % self._num_sets

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Return the line containing ``addr`` or None (no LRU update)."""
        line_addr = addr & ~(self._line_size - 1)
        bucket = self._sets.get(self._set_index(line_addr))
        if bucket is None:
            return None
        return bucket.get(line_addr)

    def touch(self, line: CacheLine, now: float) -> None:
        """Mark ``line`` most-recently-used at ``now``."""
        line.last_use = now

    # ------------------------------------------------------------------
    # Allocation / eviction
    # ------------------------------------------------------------------
    def fill(
        self, line_addr: int, data: bytes, now: float, dirty: bool = False
    ) -> tuple[CacheLine, Optional[EvictedLine]]:
        """Insert a line and return ``(new_line, evicted_victim)``.

        The victim (which the caller must write back if dirty) is None
        when the set had room.  Inserting a line that is already present
        is a simulator bug and raises :class:`SimulationError`.  Hot
        paths use this instead of :meth:`insert` + :meth:`lookup` to
        avoid probing the set twice per fill.
        """
        if len(data) != self._line_size:
            raise SimulationError(
                f"{self.name}: insert of {len(data)} bytes, line is {self._line_size}"
            )
        index = self._set_index(line_addr)
        bucket = self._sets.get(index)
        if bucket is None:
            bucket = self._sets[index] = {}
        elif line_addr in bucket:
            raise SimulationError(f"{self.name}: duplicate insert {line_addr:#x}")
        victim: Optional[EvictedLine] = None
        if len(bucket) >= self.config.ways:
            lru = min(bucket.values(), key=lambda ln: ln.last_use)
            del bucket[lru.addr]
            victim = EvictedLine(lru.addr, bytes(lru.data), lru.dirty, lru.log_release)
        line = CacheLine(line_addr, data, now)
        line.dirty = dirty
        bucket[line_addr] = line
        return line, victim

    def insert(
        self, line_addr: int, data: bytes, now: float, dirty: bool = False
    ) -> Optional[EvictedLine]:
        """Insert a line, evicting the LRU victim if the set is full.

        Returns the evicted line or None; see :meth:`fill`.
        """
        return self.fill(line_addr, data, now, dirty)[1]

    def invalidate(self, addr: int) -> Optional[EvictedLine]:
        """Remove the line containing ``addr``; return its final state."""
        line_addr = line_address(addr, self._line_size)
        bucket = self._sets.get(self._set_index(line_addr))
        if not bucket:
            return None
        line = bucket.pop(line_addr, None)
        if line is None:
            return None
        return EvictedLine(line.addr, bytes(line.data), line.dirty, line.log_release)

    def drop_all(self) -> None:
        """Discard every line (power loss)."""
        self._sets.clear()

    # ------------------------------------------------------------------
    # Iteration (FWB scanning, tests)
    # ------------------------------------------------------------------
    def iter_lines(self) -> Iterator[CacheLine]:
        """Iterate all valid lines (order unspecified)."""
        for bucket in self._sets.values():
            yield from bucket.values()

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently cached."""
        return sum(len(bucket) for bucket in self._sets.values())

    def dirty_count(self) -> int:
        """Number of dirty lines (test/FWB visibility)."""
        return sum(1 for line in self.iter_lines() if line.dirty)
