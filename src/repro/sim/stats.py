"""Statistics collected during simulation.

One :class:`MachineStats` instance is shared by every component of a
:class:`~repro.sim.machine.Machine`.  All counters are plain attributes so
tests can assert on them directly; derived metrics (IPC, throughput,
traffic) are computed by properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MachineStats:
    """Event counters and derived metrics for one simulation run."""

    # Execution
    instructions: int = 0
    cycles: float = 0.0
    transactions_committed: int = 0
    transactions_started: int = 0

    # Cache events
    l1_hits: int = 0
    l1_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    coherence_invalidations: int = 0
    writebacks: int = 0

    # Memory controller / NVRAM
    nvram_reads: int = 0
    nvram_read_bytes: int = 0
    nvram_writes: int = 0
    nvram_write_bytes: int = 0
    nvram_row_hits: int = 0
    nvram_row_conflicts: int = 0
    write_queue_stall_cycles: float = 0.0

    # Logging
    log_records: int = 0
    log_bytes: int = 0
    log_buffer_stall_cycles: float = 0.0
    wcb_stall_cycles: float = 0.0
    log_wrap_forced_writebacks: int = 0

    # Adaptive design switching (repro.adapt)
    design_switches: int = 0
    switch_barrier_cycles: float = 0.0

    # Persistence machinery
    clwb_count: int = 0
    fence_stall_cycles: float = 0.0
    fwb_scans: int = 0
    fwb_lines_scanned: int = 0
    fwb_writebacks: int = 0
    fwb_tax_cycles: float = 0.0

    # Energy (picojoules)
    energy_nvram_pj: float = 0.0
    energy_cache_pj: float = 0.0
    energy_core_pj: float = 0.0

    per_core_instructions: dict = field(default_factory=dict)
    per_core_cycles: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle (0 when nothing ran)."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def throughput(self) -> float:
        """Committed transactions per million cycles."""
        if self.cycles <= 0:
            return 0.0
        return self.transactions_committed * 1e6 / self.cycles

    @property
    def nvram_traffic_bytes(self) -> int:
        """Total NVRAM traffic, reads plus writes, in bytes."""
        return self.nvram_read_bytes + self.nvram_write_bytes

    @property
    def memory_dynamic_energy_pj(self) -> float:
        """Dynamic energy of the memory system (NVRAM accesses)."""
        return self.energy_nvram_pj

    @property
    def total_dynamic_energy_pj(self) -> float:
        """Dynamic energy including caches and core activity."""
        return self.energy_nvram_pj + self.energy_cache_pj + self.energy_core_pj

    @property
    def l1_hit_rate(self) -> float:
        """L1 hit fraction over all L1 accesses (0 if no accesses)."""
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    def record_core(self, core_id: int, instructions: int, cycles: float) -> None:
        """Store per-core totals at the end of a run."""
        self.per_core_instructions[core_id] = instructions
        self.per_core_cycles[core_id] = cycles

    def snapshot(self) -> dict:
        """Return a plain-dict summary useful for reports and JSON dumps."""
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "transactions_committed": self.transactions_committed,
            "throughput_per_mcycle": self.throughput,
            "l1_hit_rate": self.l1_hit_rate,
            "nvram_write_bytes": self.nvram_write_bytes,
            "nvram_read_bytes": self.nvram_read_bytes,
            "log_bytes": self.log_bytes,
            "memory_energy_pj": self.memory_dynamic_energy_pj,
            "total_energy_pj": self.total_dynamic_energy_pj,
            "clwb_count": self.clwb_count,
            "fwb_writebacks": self.fwb_writebacks,
            "fence_stall_cycles": self.fence_stall_cycles,
        }
