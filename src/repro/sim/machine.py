"""The assembled machine: cores, caches, memory controller, logging.

Address-space layout (all inside the NVRAM device; the paper's DRAM side
holds non-persistent data and is not evaluated):

* ``[HEAP_BASE, log_base)`` — persistent heap (working data);
* ``[log_base, nvram_size)`` — the circular log region, where
  ``log_base = nvram_size - log_entries * log_entry_size``.

The machine wires the persistence machinery selected by the
:class:`~repro.core.design.DesignSpec` mechanisms: the HWL engine and
log buffer for hardware-logging designs, a
:class:`~repro.core.softlog.SoftwareLog` for software designs, and the
FWB scanner when the spec's write-back discipline is ``fwb``.
"""

from __future__ import annotations

from typing import Optional

from ..core.fwb import ForceWriteBack
from ..core.growlog import DIRECTORY_BYTES, GrowableCircularLog, RegionDirectory
from ..core.hwl import HardwareLogging
from ..core.logbuffer import LogBuffer
from ..core.multilog import LogRouter, split_log_region
from ..core.design import NON_PERS, DesignSpec, resolve_design
from ..core.nvlog import CircularLog
from ..core.registers import SpecialRegisters
from ..core.softlog import SoftwareLog
from ..errors import SimulationError
from .config import SystemConfig
from .core import Core
from .energy import EnergyModel
from .hierarchy import CacheHierarchy
from .memctrl import MemoryController
from .microops import MicroOp
from .nvram import NVRAM
from .stats import MachineStats
from .wcb import WriteCombiningBuffer

HEAP_BASE = 4096
_RETIRE_PERIOD = 4096  # ops between housekeeping passes


class Machine:
    """A complete simulated system under one persistence policy."""

    def __init__(self, config: SystemConfig, policy=NON_PERS) -> None:
        config.validate()
        self.config = config
        self.policy: DesignSpec = resolve_design(policy)
        policy = self.policy
        self.stats = MachineStats()
        self.energy = EnergyModel(config.energy, self.stats)
        self.nvram = NVRAM(config.nvram, config.track_crash_state)
        self.memctrl = MemoryController(
            config.memctrl,
            config.nvram,
            self.nvram,
            self.energy,
            self.stats,
            config.core.clock_ghz,
        )
        self.hierarchy = CacheHierarchy(config, self.memctrl, self.energy, self.stats)
        self.registers = SpecialRegisters()

        logging = config.logging
        log_bytes = logging.log_bytes
        self.log_base = config.nvram.size_bytes - log_bytes
        heap_limit = self.log_base
        self.log_directory_addr: Optional[int] = None
        self._grow_cursor = 0
        self._grow_floor = 0
        if logging.enable_log_grow:
            # Reserve the directory block and a growth arena below the
            # primary log region.
            self.log_directory_addr = self.log_base - DIRECTORY_BYTES
            arena_bytes = logging.log_grow_reserve_regions * log_bytes
            self._grow_floor = self.log_directory_addr - arena_bytes
            self._grow_cursor = self.log_directory_addr
            heap_limit = self._grow_floor
        if heap_limit <= HEAP_BASE:
            raise SimulationError("log region leaves no room for the heap")
        self._heap_limit = heap_limit

        if logging.enable_log_grow:
            self.log = GrowableCircularLog(
                self.log_base,
                logging.log_entries,
                logging.log_entry_size,
                config.line_size,
                region_allocator=self._alloc_grow_region,
                activity_token=self.registers.activity_token,
                directory=RegionDirectory(self.nvram, self.log_directory_addr),
            )
            self.logs = [self.log]
        elif logging.distributed_logs > 0:
            self.logs = split_log_region(
                self.log_base,
                logging.log_entries,
                logging.log_entry_size,
                logging.distributed_logs,
                config.line_size,
            )
            self.log = self.logs[0]
        else:
            self.log = CircularLog(
                self.log_base,
                logging.log_entries,
                logging.log_entry_size,
                config.line_size,
            )
            self.logs = [self.log]
        self.nvram.register_region("heap", HEAP_BASE, heap_limit - HEAP_BASE)
        self.nvram.register_region("log", heap_limit, config.nvram.size_bytes - heap_limit)

        self.hwl: Optional[HardwareLogging] = None
        self.log_buffer: Optional[LogBuffer] = None
        self.log_buffers: list = []
        self.log_router: Optional[LogRouter] = None
        self.swlog: Optional[SoftwareLog] = None
        self.fwb: Optional[ForceWriteBack] = None
        if policy.uses_hw_logging:
            buffers = [
                LogBuffer(logging.log_buffer_entries, self.memctrl, self.stats)
                for _ in self.logs
            ]
            self.log_buffer = buffers[0]
            self.log_buffers = buffers
            self.log_router = LogRouter(self.logs, buffers)
            self.hwl = HardwareLogging(
                self.log_router,
                self.hierarchy,
                self.registers,
                self.stats,
                record_undo=policy.logs_undo,
                record_redo=policy.logs_redo,
                protect_wrap=policy.protects_log_wrap,
            )
        if policy.uses_sw_logging:
            self.swlog = SoftwareLog(
                self.log,
                self.registers,
                record_undo=policy.logs_undo,
                record_redo=policy.logs_redo,
            )
        if policy.uses_fwb:
            self.fwb = ForceWriteBack(config, self.hierarchy, self.stats)

        self.cores = [
            Core(
                core_id,
                config.core,
                self.hierarchy,
                WriteCombiningBuffer(
                    config.logging.wcb_entries,
                    config.line_size,
                    self.memctrl,
                    self.stats,
                ),
                self.stats,
                self.energy,
                hwl=self.hwl,
            )
            for core_id in range(config.num_cores)
        ]
        if policy.uses_sw_logging and policy.persistence_guaranteed:
            # Software log records must not be overtaken by their data
            # lines; flush the WCBs before any data write-back.
            self.hierarchy.writeback_release_hook = self._flush_wcbs
        self.crashed = False
        self._ops_since_retire = 0
        self._tracer = None
        self.fault_monitor = None
        """Optional :class:`~repro.faults.crashpoints.FaultMonitor`
        observing every retired micro-op (and, via the stats counters,
        log-buffer drains, FWB scans, and log-wrap forces).  It may raise
        :class:`~repro.errors.SimulatedCrash` to request an
        event-indexed crash; None (the default) costs one attribute
        test per op."""

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """Optional :class:`~repro.sim.trace.Tracer` recording tx/store/
        log/FWB/crash events; None (the default) costs nothing.  Setting
        it propagates to every component that emits events (cores, NVRAM,
        HWL engine, log buffers, FWB scanner)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self.nvram.tracer = tracer
        for core in self.cores:
            core.tracer = tracer
        if self.hwl is not None:
            self.hwl.tracer = tracer
        for index, buffer in enumerate(self.log_buffers):
            buffer.tracer = tracer
            buffer.ident = index
        if self.fwb is not None:
            self.fwb.tracer = tracer

    # ------------------------------------------------------------------
    # Address-space helpers
    # ------------------------------------------------------------------
    @property
    def heap_base(self) -> int:
        """First usable heap address."""
        return HEAP_BASE

    @property
    def heap_limit(self) -> int:
        """One past the last usable heap address."""
        return self._heap_limit

    def _alloc_grow_region(self, size_bytes: int) -> int:
        """Carve a fresh log region out of the reserved growth arena."""
        if self._grow_cursor - size_bytes < self._grow_floor:
            raise SimulationError("log growth arena exhausted")
        self._grow_cursor -= size_bytes
        return self._grow_cursor

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, core_id: int, op: MicroOp) -> Optional[object]:
        """Execute one micro-op on ``core_id``; returns op-specific data."""
        if self.crashed:
            raise SimulationError("machine has crashed; no further execution")
        core = self.cores[core_id]
        if self._tracer is None:
            if self.fwb is not None:
                self.fwb.maybe_scan(core.time)
            result = core.execute(op)
        else:
            result = self._execute_traced(core, op)
        if self.fault_monitor is not None:
            self.fault_monitor.after_op(core.time, self.stats)
        self._ops_since_retire += 1
        if self._ops_since_retire >= _RETIRE_PERIOD:
            self._ops_since_retire = 0
            self.memctrl.retire(min(c.time for c in self.cores))
        return result

    def _execute_traced(self, core: Core, op: MicroOp):
        from .microops import TxBegin, TxCommit

        forces_before = self.stats.log_wrap_forced_writebacks
        if self.fwb is not None:
            self.fwb.maybe_scan(core.time)
        result = core.execute(op)
        if isinstance(op, TxBegin):
            self._tracer.emit(
                core.time, "tx_begin", core.core_id, txid=op.txid, tid=op.tid
            )
        elif isinstance(op, TxCommit):
            durable = float(result) if isinstance(result, float) else None
            self._tracer.emit(
                core.time,
                "tx_commit",
                core.core_id,
                txid=op.txid,
                tid=op.tid,
                durable=durable,
            )
        if self.stats.log_wrap_forced_writebacks > forces_before:
            self._tracer.emit(
                core.time,
                "log_wrap_force",
                core.core_id,
                count=self.stats.log_wrap_forced_writebacks - forces_before,
            )
        return result

    def core_time(self, core_id: int) -> float:
        """Local clock of ``core_id``."""
        return self.cores[core_id].time

    def advance_core(self, core_id: int, cycle: float) -> float:
        """Advance ``core_id``'s clock to ``cycle`` if it lags (idle wait).

        Used by the steppable-shard scheduler (:mod:`repro.sched`) when a
        core that was parked on an empty request queue resumes at a
        request's arrival instant: the elapsed gap is idle time, not
        executed instructions, so only the clock moves.  Returns the
        core's (possibly unchanged) clock.
        """
        core = self.cores[core_id]
        if cycle > core.time:
            core.time = cycle
        return core.time

    def _flush_wcbs(self, _line_addr: int, now: float) -> float:
        """Drain every core's WCB; returns the last record completion."""
        release = 0.0
        for core in self.cores:
            release = max(release, core.wcb.flush(now))
        return release

    def force_line_durable(self, line_addr: int, now: float) -> float:
        """Force a dirty line to NVRAM (software log-wrap protection).

        Returns the time at which the line is durable (``now`` if it was
        already clean).
        """
        completion = self.hierarchy.force_writeback(line_addr, now)
        if completion is None:
            return now
        self.stats.log_wrap_forced_writebacks += 1
        return completion

    # ------------------------------------------------------------------
    # Safe-switch epoch barrier (repro.adapt)
    # ------------------------------------------------------------------
    def switch_design(self, new_policy) -> float:
        """Atomically swap the active :class:`DesignSpec` at an epoch barrier.

        The barrier makes the swap invisible to recovery: with no
        transaction in flight (the caller quiesces threads first — see
        :meth:`repro.sched.shard.ShardMachine.switch_design`), it drains
        every write-combining buffer, waits for the volatile log FIFOs to
        settle on the NVRAM bus, and forces every dirty cached line
        durable.  After that, every pre-switch log record belongs to a
        committed transaction whose data is durable, so a crash on either
        side of the swap recovers to the same image under either spec.

        Only guarantee-preserving transitions are legal
        (:func:`repro.core.design.check_switch_transition`): same log
        backend, same commit protocol, equal ``persistence_guaranteed``
        — e.g. ``clwb`` ↔ ``fwb`` ↔ ``nowb`` under ``hw+undo+redo``, or
        ``undo`` ↔ ``undo+redo`` under ``sw+clwb``.

        Returns the barrier completion cycle (all cores advanced to it).
        An installed fault monitor observes ``switch-before`` /
        ``switch-after`` events exactly at the barrier, so crash points
        can land on either side of the swap.
        """
        from ..core.design import check_switch_transition

        if self.crashed:
            raise SimulationError("machine has crashed; no design switch")
        new = resolve_design(new_policy)
        old = self.policy
        now = max((core.time for core in self.cores), default=0.0)
        if new == old:
            return now
        check_switch_transition(old, new)
        if self.hwl is not None and self.hwl.active_transactions:
            raise SimulationError(
                "design switch requires quiesced transactions; "
                f"{self.hwl.active_transactions} still in flight"
            )

        # (1) Drain the write-combining buffers: pre-switch log records
        # must be on NVRAM before their data lines can be stolen.
        barrier = max(now, self._flush_wcbs(0, now))
        # (2) Let the volatile log FIFOs settle on the NVRAM bus.
        for buffer in self.log_buffers:
            barrier = max(barrier, buffer.last_completion)
        # (3) Force every dirty cached line durable, in address order:
        # after this, no pre-switch undo record is still needed and no
        # logged line is awaiting write-back.
        dirty = set()
        for l1 in self.hierarchy.l1s:
            for line in l1.iter_lines():
                if line.dirty:
                    dirty.add(line.addr)
        for line in self.hierarchy.llc.iter_lines():
            if line.dirty:
                dirty.add(line.addr)
        issue = barrier
        for line_addr in sorted(dirty):
            completion = self.hierarchy.force_writeback(line_addr, issue)
            if completion is not None:
                barrier = max(barrier, completion)
        # (4) Wait out every write still in flight on the NVRAM banks:
        # a clwb posted just before the barrier is clean in cache (so the
        # dirty scan skips it) but not yet durable — the epoch boundary
        # must lie after its completion, or that write straddles it.
        for free in self.nvram.bank_write_free:
            barrier = max(barrier, free)

        if self.fault_monitor is not None:
            from ..faults.crashpoints import EventKind

            self.fault_monitor.at_switch(EventKind.SWITCH_BEFORE, barrier)

        # --- the swap: retune every engine the spec parameterizes ---
        self.policy = new
        truncated = old.log_content is not new.log_content
        if truncated:
            # Changing the record *content* makes pre-switch records
            # poisonous: a committed undo+redo record still in the ring
            # would be replayed by recovery and clobber data that a later
            # undo-only transaction persisted in place (which logs no
            # superseding redo).  The barrier proved every pre-switch
            # record's data durable, so the records are dead — truncate
            # the ring(s) with the recovery manager's crash-safe marker
            # sequence.  Write-back-policy switches keep the ring: both
            # epochs record the same sides, so replay stays sound.
            self._truncate_logs_at_barrier()
        if self.hwl is not None:
            self.hwl.retune(
                record_undo=new.logs_undo,
                record_redo=new.logs_redo,
                protect_wrap=new.protects_log_wrap,
            )
        if self.swlog is not None:
            self.swlog.retune(
                record_undo=new.logs_undo, record_redo=new.logs_redo
            )
        if new.uses_fwb:
            if self.fwb is None:
                self.fwb = ForceWriteBack(self.config, self.hierarchy, self.stats)
                self.fwb.tracer = self._tracer
            # Scans restart from the barrier, not from cycle zero.
            self.fwb.next_scan = barrier + self.fwb.interval
        else:
            self.fwb = None
        self.hierarchy.writeback_release_hook = (
            self._flush_wcbs
            if new.uses_sw_logging and new.persistence_guaranteed
            else None
        )

        self.stats.design_switches += 1
        self.stats.switch_barrier_cycles += barrier - now
        for core in self.cores:
            self.advance_core(core.core_id, barrier)
        if self._tracer is not None:
            self._tracer.emit(
                barrier,
                "design_switch",
                -1,
                old=old.mechanism_string(),
                new=new.mechanism_string(),
                truncated=truncated,
            )
        if self.fault_monitor is not None:
            from ..faults.crashpoints import EventKind

            self.fault_monitor.at_switch(EventKind.SWITCH_AFTER, barrier)
        return barrier

    def _truncate_logs_at_barrier(self) -> None:
        """Invalidate every log entry and rewind the ring(s) to empty.

        Only called from a clean epoch barrier (all records committed,
        all logged data durable in place).  Uses the same crash-safe
        ordering as recovery's log reset: slot 0 takes the reset marker
        first — a region whose slot 0 holds the marker scans as empty —
        then the remaining slots are cleared, then the marker itself.
        The system-software pokes don't ride the memory pipeline (the
        barrier already quiesced it), so the swap stays instantaneous.
        """
        from ..core.logrecord import reset_marker

        for log in self.logs:
            for view in log.region_views():
                marker = reset_marker(view.entry_size)
                zero = bytes(view.entry_size)
                self.nvram.poke(view.entry_addr(0), marker)
                for slot in range(1, view.num_entries):
                    self.nvram.poke(view.entry_addr(slot), zero)
                self.nvram.poke(view.entry_addr(0), zero)
                view.tail = 0
                view.head = 0
                view.parity = 1
                view.wrapped = False
                view._slot_lines = [None] * view.num_entries
                view._slot_kinds = [None] * view.num_entries

    # ------------------------------------------------------------------
    # End of run / crash
    # ------------------------------------------------------------------
    def finalize(self) -> MachineStats:
        """Record per-core totals and overall cycle count; return stats."""
        self.stats.cycles = max((core.time for core in self.cores), default=0.0)
        for core in self.cores:
            self.stats.record_core(core.core_id, core.instret, core.time)
        return self.stats

    def crash_at_point(self, event) -> float:
        """Crash at the instant an event-indexed crash point fired.

        ``event`` is the :class:`~repro.errors.SimulatedCrash` raised by
        an installed fault monitor; the crash lands exactly at the core
        clock of the triggering event, so the surviving NVRAM state is a
        pure function of (configuration, crash point).
        """
        return self.crash(at_time=event.at_time)

    def crash(self, at_time: Optional[float] = None) -> float:
        """Power failure at ``at_time`` (default: the latest core clock).

        All volatile state disappears: caches, WCBs, the log buffer, and
        any NVRAM write that had not completed by the crash instant.
        Returns the crash time.  Only the NVRAM image survives; recover
        with :class:`repro.core.recovery.RecoveryManager`.
        """
        crash_time = at_time
        if crash_time is None:
            crash_time = max((core.time for core in self.cores), default=0.0)
        if self._tracer is not None:
            self._tracer.emit(crash_time, "crash")
        self.nvram.revert_after(crash_time)
        self.hierarchy.drop_all()
        for core in self.cores:
            core.wcb.drop()
        self.crashed = True
        self.finalize()
        return crash_time
