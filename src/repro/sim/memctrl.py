"""Memory controller: queues, bank scheduling, posted writes.

Timing model (Table II): requests pay a fixed queue latency, then occupy
their NVRAM bank.  A request to the bank's open row takes the row-buffer
hit latency (36 ns); otherwise the read/write row-conflict latency
(100/300 ns) and the row is opened.  Writes are *posted*: the issuing core
continues immediately unless the 64-entry write queue is full, in which
case the core stalls until a slot frees (this back-pressure is what makes
uncacheable software-log stores expensive in the paper).
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass

from ..utils import ns_to_cycles
from .config import MemCtrlConfig, NVDimmConfig
from .energy import EnergyModel
from .nvram import NVRAM
from .stats import MachineStats


@dataclass(frozen=True)
class WriteTicket:
    """Outcome of a posted write.

    ``completion`` — when the data is durable in NVRAM;
    ``stall`` — cycles the issuer waited for a write-queue slot;
    ``accepted`` — when the transfer won the channel (bus acceptance),
    which is what an unbuffered uncacheable store must wait for.
    """

    completion: float
    stall: float
    accepted: float


class MemoryController:
    """Schedules reads and posted writes onto the NVRAM banks."""

    def __init__(
        self,
        config: MemCtrlConfig,
        nvram_config: NVDimmConfig,
        nvram: NVRAM,
        energy: EnergyModel,
        stats: MachineStats,
        clock_ghz: float,
    ) -> None:
        config.validate()
        self.config = config
        self.nvram = nvram
        self._energy = energy
        self._stats = stats
        self._queue_latency = ns_to_cycles(config.queue_latency_ns, clock_ghz)
        self._row_hit = ns_to_cycles(nvram_config.row_hit_ns, clock_ghz)
        self._read_conflict = ns_to_cycles(nvram_config.read_conflict_ns, clock_ghz)
        self._write_conflict = ns_to_cycles(nvram_config.write_conflict_ns, clock_ghz)
        self._infinite_write_bw = nvram_config.infinite_write_bandwidth
        self._adr = nvram_config.adr_persist_domain
        self._bus_cycles = nvram_config.bus_cycles_per_transfer
        self._bus_free = 0.0
        # Min-heap of completion times of writes occupying write-queue slots.
        self._write_slots: list[float] = []

    # ------------------------------------------------------------------
    # Bank timing
    # ------------------------------------------------------------------
    def _service(self, addr: int, now: float, is_write: bool) -> tuple[float, float, bool]:
        """Occupy bus and bank for one access; return (start, finish, row_hit).

        Reads are scheduled with priority: a read waits for earlier reads
        on its bank and for at most one non-preemptible in-service write,
        while posted writes drain behind both read and write occupancy —
        the read-over-write policy of contemporary persistent-memory
        controllers (e.g. FIRM).  Row-buffer state is shared, so heavy
        write drains still cost reads their row hits.
        """
        bank = self.nvram.bank_of(addr)
        row = self.nvram.row_of(addr)
        # The channel is occupied per transfer from issue time (DIMM-side
        # buffers decouple the transfer from bank service).
        bus_start = max(self._bus_free, now + self._queue_latency)
        self._bus_free = bus_start + self._bus_cycles
        if is_write:
            start = max(
                bus_start,
                self.nvram.bank_write_free[bank],
                self.nvram.bank_read_free[bank],
            )
        else:
            write_block = min(
                self.nvram.bank_write_free[bank], now + self._row_hit
            )
            start = max(
                bus_start,
                self.nvram.bank_read_free[bank],
                write_block,
            )
        row_hit = self.nvram.row_buffer_access(bank, row)
        if row_hit:
            service = self._row_hit
        else:
            service = self._write_conflict if is_write else self._read_conflict
        finish = start + service
        if is_write:
            self.nvram.bank_write_free[bank] = finish
        else:
            self.nvram.bank_read_free[bank] = finish
        if row_hit:
            self._stats.nvram_row_hits += 1
        else:
            self._stats.nvram_row_conflicts += 1
        return start, finish, row_hit

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int, now: float) -> tuple[float, bytes]:
        """Blocking read; returns (finish_time, data)."""
        _start, finish, row_hit = self._service(addr, now, is_write=False)
        data = self.nvram.read(addr, size)
        self._stats.nvram_reads += 1
        self._stats.nvram_read_bytes += size
        self._energy.nvram_read(size, row_hit)
        return finish, data

    def write(
        self, addr: int, data: bytes, now: float, min_completion: float = 0.0
    ) -> "WriteTicket":
        """Posted write; returns a :class:`WriteTicket`.

        ``stall`` is non-zero when the write queue was full and the issuer
        had to wait for a slot.  ``min_completion`` clamps the durability
        time to be no earlier than a previous write — used by the log
        buffer and WCB, whose updates must enter the persistence domain in
        FIFO order even when banks complete out of order.
        """
        size = len(data)
        stall = 0.0
        if self._infinite_write_bw:
            completion = max(now + self._queue_latency + self._row_hit, min_completion)
            self._finish_write(addr, data, size, completion, row_hit=True)
            return WriteTicket(completion, stall, now + self._queue_latency)
        # Free slots whose writes have completed.
        while self._write_slots and self._write_slots[0] <= now:
            heapq.heappop(self._write_slots)
        if len(self._write_slots) >= self.config.write_queue_entries:
            freed_at = heapq.heappop(self._write_slots)
            stall = max(0.0, freed_at - now)
            now = max(now, freed_at)
            self._stats.write_queue_stall_cycles += stall
        accepted, service_finish, row_hit = self._service(addr, now, is_write=True)
        heapq.heappush(self._write_slots, service_finish)
        # Durability: at bank-service completion in the paper's model, or
        # at controller acceptance under an ADR persist domain.
        durable = accepted if self._adr else service_finish
        durable = max(durable, min_completion)
        self._finish_write(addr, data, size, durable, row_hit)
        return WriteTicket(durable, stall, accepted)

    def _finish_write(
        self, addr: int, data: bytes, size: int, completion: float, row_hit: bool
    ) -> None:
        self.nvram.write(addr, data, completion_time=completion)
        self._stats.nvram_writes += 1
        self._stats.nvram_write_bytes += size
        self._energy.nvram_write(size, row_hit)

    def pending_write_completion(self) -> float:
        """Latest completion time among writes still holding queue slots."""
        return max(self._write_slots) if self._write_slots else 0.0

    def retire(self, now: float) -> None:
        """Release bookkeeping for activity durable at ``now``."""
        while self._write_slots and self._write_slots[0] <= now:
            heapq.heappop(self._write_slots)
        self.nvram.retire_journal(now)

    @property
    def write_queue_occupancy(self) -> int:
        """Current number of occupied write-queue slots (test visibility)."""
        return len(self._write_slots)
