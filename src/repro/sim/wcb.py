"""Write-combining buffer (WCB) for uncacheable stores.

Software log updates bypass the caches and are buffered in a small (4-6
cache-line) write-combining buffer, as in commodity x86 processors
(Section II-B of the paper).  Stores to the same line coalesce; when a new
line is needed and the buffer is full, the oldest entry drains to the
memory controller as a posted write.  ``sfence`` flushes the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils import line_address
from .memctrl import MemoryController
from .stats import MachineStats


@dataclass
class _Entry:
    line_addr: int
    data: bytearray
    lo: int
    hi: int
    opened: float = field(default=0.0)


class WriteCombiningBuffer:
    """FIFO of line-sized write-combining entries."""

    def __init__(
        self,
        entries: int,
        line_size: int,
        memctrl: MemoryController,
        stats: MachineStats,
    ) -> None:
        self._capacity = entries
        self._line_size = line_size
        self._memctrl = memctrl
        self._stats = stats
        self._entries: list[_Entry] = []
        self.last_completion = 0.0

    def push(self, addr: int, data: bytes, now: float) -> float:
        """Buffer an uncacheable store; returns stall cycles (usually 0).

        A stall occurs only when an entry must drain and the memory
        controller's write queue is full.
        """
        line_addr = line_address(addr, self._line_size)
        for entry in self._entries:
            if entry.line_addr == line_addr:
                off = addr - line_addr
                entry.data[off:off + len(data)] = data
                entry.lo = min(entry.lo, off)
                entry.hi = max(entry.hi, off + len(data))
                return 0.0
        stall = 0.0
        if len(self._entries) >= self._capacity:
            stall = self._drain_one(now)
        off = addr - line_addr
        entry = _Entry(line_addr, bytearray(self._line_size), off, off + len(data), now)
        entry.data[off:off + len(data)] = data
        self._entries.append(entry)
        return stall

    def _drain_one(self, now: float) -> float:
        entry = self._entries.pop(0)
        # Uncacheable log stores must become durable in order (they bypass
        # the caches precisely to keep store order, Section II-B).
        ticket = self._memctrl.write(
            entry.line_addr + entry.lo,
            bytes(entry.data[entry.lo:entry.hi]),
            now,
            min_completion=self.last_completion,
        )
        self.last_completion = max(self.last_completion, ticket.completion)
        self._stats.wcb_stall_cycles += ticket.stall
        return ticket.stall

    def flush(self, now: float) -> float:
        """Drain every entry (sfence); returns the last completion time."""
        while self._entries:
            self._drain_one(now)
        return self.last_completion

    def drop(self) -> None:
        """Power loss: buffered entries are lost."""
        self._entries.clear()

    @property
    def occupancy(self) -> int:
        """Number of open write-combining entries."""
        return len(self._entries)
