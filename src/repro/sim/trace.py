"""Optional execution tracer.

Attach a :class:`Tracer` to a machine to record a timeline of
persistence-relevant events — transaction begins/commits (with their
durability times), per-store and per-log-record events, FWB scans,
log-wrap forced write-backs, NVRAM write completions, and the crash
instant.  Useful for debugging recovery scenarios, for inspecting how far
commit durability lags the core clock under "steal but no force", and as
the event stream the persistency-ordering sanitizer
(:mod:`repro.sanitizer`) verifies.

.. code-block:: python

    machine = Machine(config, Policy.FWB)
    machine.tracer = Tracer()
    ...
    print(machine.tracer.summary())

Event kinds emitted by the simulator are registered in
:mod:`repro.sim.events`; detail values are JSON-safe primitives so a
trace can round-trip through :meth:`Tracer.to_jsonl` /
:meth:`Tracer.from_jsonl` and be sanitized offline.

Live consumers (the sanitizer) should :meth:`subscribe` rather than read
:meth:`events` afterwards: the in-memory ring is bounded by ``capacity``
and old events are dropped once it fills (the drop count is reported by
:meth:`summary` and :attr:`dropped`), while subscribers see every event.
"""

from __future__ import annotations

import json
import sys
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str
    core: int
    detail: dict = field(default_factory=dict)


class Tracer:
    """Bounded in-memory event recorder."""

    def __init__(self, capacity: int = 100_000) -> None:
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.counts: Counter = Counter()
        self._listeners: list = []
        # Kind strings repeat millions of times in a long trace; intern
        # them once so every event shares one object instead of carrying
        # its own copy (and so equality checks are pointer comparisons).
        self._interned: dict = {}

    def emit(self, time: float, kind: str, core: int = -1, /, **detail) -> None:
        """Record one event.

        The leading parameters are positional-only so detail keys may
        reuse their names (log records have their own ``kind``).
        """
        interned = self._interned.get(kind)
        if interned is None:
            interned = self._interned.setdefault(kind, sys.intern(kind))
        event = TraceEvent(time, interned, core, detail)
        self._events.append(event)
        self.counts[interned] += 1
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------------
    # Live consumption
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Call ``listener`` with every event as it is emitted.

        Subscribers are independent of the bounded ring: they see events
        that the ring later drops.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events silently evicted from the bounded ring (capacity hit)."""
        return sum(self.counts.values()) - len(self._events)

    def events(self, kind: Optional[str] = None) -> list:
        """All retained events, optionally filtered by kind, in order."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def commit_lags(self) -> list:
        """Per-commit durability lag (durable_time - commit_time).

        Under the full design commits are instant at the core but durable
        only once the commit record drains — this is that gap.
        """
        lags = []
        for event in self.events("tx_commit"):
            durable = event.detail.get("durable")
            if durable is not None:
                lags.append(max(0.0, durable - event.time))
        return lags

    def summary(self) -> str:
        """Human-readable event-count summary."""
        lines = ["trace summary", "-------------"]
        for kind, count in sorted(self.counts.items()):
            lines.append(f"{kind:24s} {count}")
        dropped = self.dropped
        if dropped:
            lines.append(
                f"{'dropped (capacity)':24s} {dropped} "
                f"(ring holds {self.capacity}; oldest events evicted)"
            )
        lags = self.commit_lags()
        if lags:
            lines.append(
                f"{'commit durability lag':24s} "
                f"avg {sum(lags) / len(lags):.0f} / max {max(lags):.0f} cycles"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Offline persistence (psan on saved traces)
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str) -> int:
        """Write the retained events to ``path``, one JSON object per line.

        Returns the number of events written.  Detail values are emitted
        as-is, so components must keep them JSON-serialisable (ints,
        floats, strings, bools, None) — which the registered event schema
        does.  Note the ring is bounded: a trace meant for offline
        sanitizing should be recorded with a capacity sized to the run
        (``Tracer(capacity=...)``), and :attr:`dropped` says whether any
        events were lost.
        """
        written = 0
        with open(path, "w", encoding="utf-8") as fh:
            for event in self._events:
                fh.write(
                    json.dumps(
                        {
                            "t": event.time,
                            "k": event.kind,
                            "c": event.core,
                            "d": event.detail,
                        },
                        separators=(",", ":"),
                    )
                )
                fh.write("\n")
                written += 1
        return written

    @classmethod
    def from_jsonl(cls, path: str) -> "Tracer":
        """Rebuild a tracer from a :meth:`to_jsonl` file.

        The returned tracer's capacity covers the whole file, so nothing
        is dropped on reload and the sanitizer can replay the full stream.
        """
        events = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                events.append((raw["t"], raw["k"], raw.get("c", -1), raw.get("d", {})))
        tracer = cls(capacity=max(len(events), 1))
        for time, kind, core, detail in events:
            tracer.emit(time, kind, core, **detail)
        return tracer
