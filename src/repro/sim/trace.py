"""Optional execution tracer.

Attach a :class:`Tracer` to a machine to record a timeline of
persistence-relevant events — transaction begins/commits (with their
durability times), FWB scans, log-wrap forced write-backs, and the crash
instant.  Useful for debugging recovery scenarios and for inspecting how
far commit durability lags the core clock under "steal but no force".

.. code-block:: python

    machine = Machine(config, Policy.FWB)
    machine.tracer = Tracer()
    ...
    print(machine.tracer.summary())
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str
    core: int
    detail: dict = field(default_factory=dict)


class Tracer:
    """Bounded in-memory event recorder."""

    def __init__(self, capacity: int = 100_000) -> None:
        self._events: deque = deque(maxlen=capacity)
        self.counts: Counter = Counter()

    def emit(self, time: float, kind: str, core: int = -1, **detail) -> None:
        """Record one event."""
        self._events.append(TraceEvent(time, kind, core, detail))
        self.counts[kind] += 1

    # ------------------------------------------------------------------
    def events(self, kind: Optional[str] = None) -> list:
        """All events, optionally filtered by kind, in emission order."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def commit_lags(self) -> list:
        """Per-commit durability lag (durable_time - commit_time).

        Under the full design commits are instant at the core but durable
        only once the commit record drains — this is that gap.
        """
        lags = []
        for event in self.events("tx_commit"):
            durable = event.detail.get("durable")
            if durable is not None:
                lags.append(max(0.0, durable - event.time))
        return lags

    def summary(self) -> str:
        """Human-readable event-count summary."""
        lines = ["trace summary", "-------------"]
        for kind, count in sorted(self.counts.items()):
            lines.append(f"{kind:24s} {count}")
        lags = self.commit_lags()
        if lags:
            lines.append(
                f"{'commit durability lag':24s} "
                f"avg {sum(lags) / len(lags):.0f} / max {max(lags):.0f} cycles"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)
