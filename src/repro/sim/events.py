"""Registered trace event kinds.

Every event-kind string a simulator component passes to
:meth:`~repro.sim.trace.Tracer.emit` must be a member of
:data:`EVENT_KINDS`.  The registry serves two purposes:

* the ``event-kind`` rule of ``repro lint`` statically rejects emit calls
  whose kind literal is not registered, so a typo (``"tx_comit"``) cannot
  silently create a parallel event stream nobody consumes;
* the persistency-ordering sanitizer (:mod:`repro.sanitizer`) dispatches
  on these kinds and documents here which ones it consumes.

Tests may emit ad-hoc kinds (the lint only runs over ``src/``); the
tracer itself stays permissive at runtime so exploratory instrumentation
is cheap.
"""

from __future__ import annotations

EVENT_KINDS = frozenset(
    {
        # Run-level metadata written once when a checker attaches:
        # address-space geometry, policy, log regions.
        "meta",
        # Transaction lifecycle (emitted by the traced machine).
        "tx_begin",
        "tx_commit",
        # The durability time the runtime *reported* to the caller for a
        # commit (the value the golden model records) — psan compares it
        # against the COMMIT record's actual NVRAM completion.
        "commit_reported",
        # One client request's transaction became commit-durable (serve
        # mode; carries enqueue->durable latency attribution).
        "request_done",
        # FWB scanner pass over the cache tags.
        "fwb_scan",
        # Log wrap-around forced a dirty data line back to NVRAM.
        "log_wrap_force",
        # Power failure instant.
        "crash",
        # A safe-switch epoch barrier atomically swapped the active
        # DesignSpec (repro.adapt); carries old/new mechanism strings.
        "design_switch",
        # One timed cacheable store retired by a core (heap mutation).
        "store",
        # A log record was placed in a circular-log slot (hardware HWL
        # append or software log store), with wrap/displacement details.
        "log_place",
        # A record entered the volatile log buffer on its way to the bus.
        "log_push",
        # A timed write reached the NVRAM device (its durability point).
        "nvram_write",
        # --- Distributed log shipping (repro.dist) -------------------
        # A batch of durable log records left the primary on one link.
        "ship",
        # The batch arrived at the replica end of the link.
        "repl_deliver",
        # One shipped record became durable in the replica's log ring.
        "repl_append",
        # The replica's acknowledgement for a batch reached the primary.
        "repl_ack",
        # A transaction became cluster-committed (ack quorum reached).
        "dist_commit",
    }
)
"""All event kinds the simulator may emit (see module docstring)."""
