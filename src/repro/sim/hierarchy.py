"""Two-level cache hierarchy: private L1Ds over a shared, inclusive LLC.

The hierarchy is functional (lines carry data) and timed.  It implements:

* write-back, write-allocate policies at both levels (the caching policies
  HWL piggybacks on, Section III-B);
* a directory at the LLC tracking which L1s hold each line, with
  write-invalidation and read-downgrade (enough coherence for the paper's
  per-thread-partitioned workloads);
* inclusion (an LLC eviction invalidates the L1 copies, merging their
  dirty data into the write-back);
* the log-ordering constraint: a line's write-back is posted no earlier
  than ``log_release``, the durability time of the HWL records covering
  its dirty words;
* the FWB scan tax: scans deposit cycles of "debt" that subsequent
  accesses pay one cycle at a time, modelling interleaved tag scans
  (calibrated to the paper's ~3.6% overhead for an 8 MB LLC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import SimulationError
from ..utils import line_address
from .cache import CacheLine, EvictedLine, SetAssociativeCache
from .config import SystemConfig
from .energy import EnergyModel
from .memctrl import MemoryController
from .stats import MachineStats


@dataclass(frozen=True)
class LoadResult:
    """Outcome of a load: latency, servicing level, and the data."""

    latency: float
    level: str
    data: bytes


@dataclass(frozen=True)
class StoreResult:
    """Outcome of a store: latency, level, and the overwritten bytes.

    ``old_data`` is the undo value HWL captures from the write-allocated
    line (hit or miss) without any extra read instruction.
    """

    latency: float
    level: str
    old_data: bytes
    line_addr: int


class CacheHierarchy:
    """Private L1 data caches per core plus one shared inclusive LLC."""

    def __init__(
        self,
        config: SystemConfig,
        memctrl: MemoryController,
        energy: EnergyModel,
        stats: MachineStats,
    ) -> None:
        self.config = config
        self._memctrl = memctrl
        self._energy = energy
        self._stats = stats
        self.l1s = [
            SetAssociativeCache(config.l1, f"L1-{i}") for i in range(config.num_cores)
        ]
        self.llc = SetAssociativeCache(config.llc, "LLC")
        self._directory: dict[int, set[int]] = {}
        ghz = config.core.clock_ghz
        self.l1_latency = config.l1.latency_cycles(ghz)
        self.llc_latency = config.llc.latency_cycles(ghz)
        self._line_size = config.line_size
        self.scan_debt = 0.0
        self.writeback_release_hook: Optional[Callable[[int, float], float]] = None
        """Optional ordering hook consulted before any data write-back.

        Software logging keeps records in per-core write-combining
        buffers; the hook flushes them and returns the completion time so
        that no data line can reach NVRAM before the log records covering
        it (the natural ordering of Section II-B, made explicit)."""

    # ------------------------------------------------------------------
    # FWB scan tax
    # ------------------------------------------------------------------
    def add_scan_debt(self, cycles: float) -> None:
        """Deposit scan cost to be paid by subsequent accesses."""
        self.scan_debt += cycles

    def _take_tax(self) -> float:
        if self.scan_debt <= 0.0:
            return 0.0
        tax = min(1.0, self.scan_debt)
        self.scan_debt -= tax
        self._stats.fwb_tax_cycles += tax
        return tax

    # ------------------------------------------------------------------
    # Directory helpers
    # ------------------------------------------------------------------
    def _owners(self, line_addr: int) -> set[int]:
        return self._directory.get(line_addr, set())

    def _directory_add(self, line_addr: int, core_id: int) -> None:
        self._directory.setdefault(line_addr, set()).add(core_id)

    def _directory_remove(self, line_addr: int, core_id: int) -> None:
        owners = self._directory.get(line_addr)
        if owners is not None:
            owners.discard(core_id)
            if not owners:
                del self._directory[line_addr]

    # ------------------------------------------------------------------
    # Internal movement
    # ------------------------------------------------------------------
    def _post_writeback(self, addr: int, data: bytes, now: float, release: float) -> float:
        """Post a line write-back to NVRAM honouring the log-release time."""
        if self.writeback_release_hook is not None:
            release = max(release, self.writeback_release_hook(addr, now))
        ticket = self._memctrl.write(addr, data, max(now, release))
        self._stats.writebacks += 1
        return ticket.completion

    def _evict_llc_victim(self, victim: EvictedLine, now: float) -> None:
        """Handle an LLC eviction: inclusion invalidations, then write-back."""
        data = bytearray(victim.data)
        dirty = victim.dirty
        release = victim.log_release
        for core_id in list(self._owners(victim.addr)):
            dropped = self.l1s[core_id].invalidate(victim.addr)
            self._directory_remove(victim.addr, core_id)
            if dropped is not None and dropped.dirty:
                data[:] = dropped.data
                dirty = True
                release = max(release, dropped.log_release)
        if dirty:
            self._post_writeback(victim.addr, bytes(data), now, release)

    def _fetch_llc(self, line_addr: int, now: float) -> tuple[float, CacheLine]:
        """Ensure ``line_addr`` is resident in the LLC; return (extra_latency, line)."""
        self._energy.cache_access("llc")
        line = self.llc.lookup(line_addr)
        if line is not None:
            self._stats.llc_hits += 1
            self.llc.touch(line, now)
            return self.llc_latency, line
        self._stats.llc_misses += 1
        issue = now + self.l1_latency + self.llc_latency
        finish, data = self._memctrl.read(line_addr, self._line_size, issue)
        line, victim = self.llc.fill(line_addr, data, now)
        if victim is not None:
            self._evict_llc_victim(victim, now)
        return self.llc_latency + (finish - issue), line

    def _fill_l1(
        self, core_id: int, line_addr: int, data: bytes, now: float, release: float
    ) -> CacheLine:
        """Install a line in ``core_id``'s L1, evicting a victim into the LLC.

        ``data`` may be any bytes-like buffer (the new line copies it
        once); callers pass the LLC line's backing buffer directly rather
        than materialising an intermediate ``bytes``.
        """
        l1 = self.l1s[core_id]
        line, victim = l1.fill(line_addr, data, now)
        self._directory_add(line_addr, core_id)
        if victim is not None:
            self._directory_remove(victim.addr, core_id)
            if victim.dirty:
                self._merge_into_llc(victim, now)
        line.log_release = release
        return line

    def _merge_into_llc(self, victim: EvictedLine, now: float) -> None:
        """Write an evicted dirty L1 line into the (inclusive) LLC copy."""
        llc_line = self.llc.lookup(victim.addr)
        if llc_line is None:  # pragma: no cover - inclusion guarantees presence
            raise SimulationError(f"inclusion violated for {victim.addr:#x}")
        llc_line.data[:] = victim.data
        llc_line.dirty = True
        llc_line.log_release = max(llc_line.log_release, victim.log_release)
        self.llc.touch(llc_line, now)

    def _pull_remote_dirty(self, core_id: int, line_addr: int, now: float, invalidate: bool) -> float:
        """Fetch another core's dirty copy into the LLC (downgrade or invalidate).

        Returns extra latency charged for the coherence action.
        """
        extra = 0.0
        for owner in list(self._owners(line_addr)):
            if owner == core_id:
                continue
            remote = self.l1s[owner].lookup(line_addr)
            if remote is None:
                continue
            if remote.dirty:
                self._merge_into_llc(
                    EvictedLine(line_addr, bytes(remote.data), True, remote.log_release),
                    now,
                )
                remote.dirty = False
                remote.log_release = 0.0
                self._stats.coherence_invalidations += 1
                extra = self.llc_latency
            if invalidate:
                self.l1s[owner].invalidate(line_addr)
                self._directory_remove(line_addr, owner)
                self._stats.coherence_invalidations += 1
                extra = self.llc_latency
        return extra

    # ------------------------------------------------------------------
    # Public access paths
    # ------------------------------------------------------------------
    def load(self, core_id: int, addr: int, size: int, now: float) -> LoadResult:
        """Cacheable read of ``size`` bytes (must not cross a line)."""
        line_addr = line_address(addr, self._line_size)
        self._check_single_line(addr, size, line_addr)
        tax = self._take_tax()
        self._energy.cache_access("l1")
        l1 = self.l1s[core_id]
        line = l1.lookup(addr)
        if line is not None:
            self._stats.l1_hits += 1
            l1.touch(line, now)
            off = addr - line_addr
            return LoadResult(self.l1_latency + tax, "l1", bytes(line.data[off:off + size]))
        self._stats.l1_misses += 1
        extra = self._pull_remote_dirty(core_id, line_addr, now, invalidate=False)
        llc_extra, llc_line = self._fetch_llc(line_addr, now)
        # Sentinel compare: _fetch_llc returns exactly llc_latency on a
        # hit (never a derived float), so equality is intentional.
        level = "llc" if llc_extra == self.llc_latency else "mem"  # lint: allow(float-eq)
        filled = self._fill_l1(core_id, line_addr, llc_line.data, now, 0.0)
        off = addr - line_addr
        latency = self.l1_latency + llc_extra + extra + tax
        return LoadResult(latency, level, bytes(filled.data[off:off + size]))

    def load_fast(
        self, core_id: int, addr: int, now: float, line_addr: int
    ) -> tuple[float, bool]:
        """Stat/timing-identical :meth:`load` without materialising data.

        The trace-replay engine (:mod:`repro.sim.replay`) never consumes
        load results, so this path skips the ``bytes`` slice and the
        :class:`LoadResult` construction; ``line_addr`` is precomputed by
        the caller (once per compiled trace, not once per access).
        Returns ``(latency, l1_hit)``.  Every counter, energy charge and
        functional state transition matches :meth:`load` exactly.
        """
        tax = self._take_tax()
        self._energy.cache_access("l1")
        l1 = self.l1s[core_id]
        line = l1.lookup(addr)
        if line is not None:
            self._stats.l1_hits += 1
            l1.touch(line, now)
            return self.l1_latency + tax, True
        self._stats.l1_misses += 1
        extra = self._pull_remote_dirty(core_id, line_addr, now, invalidate=False)
        llc_extra, llc_line = self._fetch_llc(line_addr, now)
        self._fill_l1(core_id, line_addr, llc_line.data, now, 0.0)
        return self.l1_latency + llc_extra + extra + tax, False

    def store_prepare(self, core_id: int, addr: int, size: int, now: float) -> StoreResult:
        """Write-allocate phase of a store: bring the line to L1 and read
        the old bytes — the undo value HWL captures — *without* making the
        new value visible yet.  The caller completes the store with
        :meth:`store_finish` (possibly after logging), guaranteeing that a
        write-back racing in between cannot leak an unlogged new value.
        """
        line_addr = line_address(addr, self._line_size)
        self._check_single_line(addr, size, line_addr)
        tax = self._take_tax()
        self._energy.cache_access("l1")
        l1 = self.l1s[core_id]
        line = l1.lookup(addr)
        if line is not None:
            level = "l1"
            latency = self.l1_latency + tax
            self._stats.l1_hits += 1
            l1.touch(line, now)
            # Upgrade: a store to a *shared* line must still invalidate the
            # other cores' copies before writing.
            latency += self._pull_remote_dirty(core_id, line_addr, now, invalidate=True)
        else:
            self._stats.l1_misses += 1
            extra = self._pull_remote_dirty(core_id, line_addr, now, invalidate=True)
            llc_extra, llc_line = self._fetch_llc(line_addr, now)
            # Sentinel compare, as in load() above.
            level = "llc" if llc_extra == self.llc_latency else "mem"  # lint: allow(float-eq)
            line = self._fill_l1(core_id, line_addr, llc_line.data, now, 0.0)
            latency = self.l1_latency + llc_extra + extra + tax
        off = addr - line_addr
        old = bytes(line.data[off:off + size])
        return StoreResult(latency, level, old, line_addr)

    def store_finish(
        self, core_id: int, addr: int, data: bytes, release: float = 0.0
    ) -> None:
        """Complete a prepared store: write the new value and mark dirty.

        ``release`` forbids write-back before the covering log record is
        durable (the HWL ordering guarantee).
        """
        line_addr = line_address(addr, self._line_size)
        line = self.l1s[core_id].lookup(addr)
        if line is None:  # pragma: no cover - prepare just installed it
            raise SimulationError(f"store_finish without prepared line {addr:#x}")
        off = addr - line_addr
        line.data[off:off + len(data)] = data
        line.dirty = True
        line.log_release = max(line.log_release, release)

    def store(self, core_id: int, addr: int, data: bytes, now: float) -> StoreResult:
        """Cacheable write (write-allocate); returns the overwritten bytes."""
        result = self.store_prepare(core_id, addr, len(data), now)
        self.store_finish(core_id, addr, data)
        return result

    def set_log_release(self, core_id: int, line_addr: int, release: float) -> None:
        """Forbid write-back of ``line_addr`` before ``release`` (HWL order)."""
        line = self.l1s[core_id].lookup(line_addr)
        if line is not None:
            line.log_release = max(line.log_release, release)

    def clwb(self, core_id: int, addr: int, now: float) -> Optional[float]:
        """Write the newest dirty copy of the line back to NVRAM.

        Copies stay cached but clean (clwb semantics).  Returns the
        write-back completion time, or None if the line was clean.
        """
        line_addr = line_address(addr, self._line_size)
        self._stats.clwb_count += 1
        newest: Optional[bytes] = None
        release = 0.0
        for owner in list(self._owners(line_addr)):
            remote = self.l1s[owner].lookup(line_addr)
            if remote is not None and remote.dirty:
                newest = bytes(remote.data)
                release = max(release, remote.log_release)
                remote.dirty = False
                remote.log_release = 0.0
        llc_line = self.llc.lookup(line_addr)
        if llc_line is not None:
            if newest is not None:
                llc_line.data[:] = newest
            elif llc_line.dirty:
                newest = bytes(llc_line.data)
                release = max(release, llc_line.log_release)
            llc_line.dirty = False
            llc_line.log_release = 0.0
        if newest is None:
            return None
        return self._post_writeback(line_addr, newest, now, release)

    def force_writeback(self, line_addr: int, now: float) -> Optional[float]:
        """Force a line to NVRAM (log-wrap protection path).

        Same data movement as :meth:`clwb` but counted separately.
        """
        completion = self.clwb(0, line_addr, now)
        self._stats.clwb_count -= 1  # not an executed clwb instruction
        return completion

    def is_line_dirty(self, line_addr: int) -> bool:
        """True if any cache holds a dirty copy of ``line_addr``."""
        for owner in self._owners(line_addr):
            line = self.l1s[owner].lookup(line_addr)
            if line is not None and line.dirty:
                return True
        llc_line = self.llc.lookup(line_addr)
        return llc_line is not None and llc_line.dirty

    def flush_all(self, now: float) -> None:
        """Write every dirty line back to NVRAM (inspection/shutdown).

        Not a crash path — an orderly flush, e.g. to examine the NVRAM
        image after a timed run.
        """
        for core_id, l1 in enumerate(self.l1s):
            for line in list(l1.iter_lines()):
                if line.dirty:
                    self.fwb_writeback_l1(core_id, line, now)
        for line in list(self.llc.iter_lines()):
            if line.dirty:
                self.fwb_writeback_llc(line, now)

    def drop_all(self) -> None:
        """Power loss: all cached state disappears."""
        for l1 in self.l1s:
            l1.drop_all()
        self.llc.drop_all()
        self._directory.clear()
        self.scan_debt = 0.0

    # ------------------------------------------------------------------
    # FWB write-back helpers (used by repro.core.fwb)
    # ------------------------------------------------------------------
    def fwb_writeback_l1(self, core_id: int, line: CacheLine, now: float) -> None:
        """FWB at an L1: push the dirty line down into the LLC."""
        self._merge_into_llc(
            EvictedLine(line.addr, bytes(line.data), True, line.log_release), now
        )
        line.dirty = False
        line.fwb = False
        line.log_release = 0.0

    def fwb_writeback_llc(self, line: CacheLine, now: float) -> float:
        """FWB at the LLC: post the dirty line to NVRAM."""
        completion = self._post_writeback(line.addr, bytes(line.data), now, line.log_release)
        line.dirty = False
        line.fwb = False
        line.log_release = 0.0
        return completion

    # ------------------------------------------------------------------
    def _check_single_line(self, addr: int, size: int, line_addr: int) -> None:
        if addr + size > line_addr + self._line_size:
            raise SimulationError(
                f"access {addr:#x}+{size} crosses a {self._line_size}B line"
            )
