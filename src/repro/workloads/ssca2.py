"""SSCA2 microbenchmark (Table III: "SSCA2").

"A transactional implementation of SSCA 2.2, performing several analyses
of a large, scale-free graph."  We implement the transactional flavour of
its kernels over a persistent adjacency-list graph:

* kernel 1 (graph construction) — transactions insert weighted edges,
  with endpoints drawn from a scale-free (preferential-attachment-like)
  distribution;
* kernel 2 (classify large edges) — transactions scan a vertex's
  adjacency list for the maximum weight and persist it in the vertex's
  record;
* kernel 3/4-flavoured analysis — transactions walk a short
  multi-hop neighbourhood, accumulate into a per-vertex metric, and
  persist the result.

SSCA2 transactions read and compute far more than they write, which is
why the paper sees the smallest logging gains on it.

Layout: a vertex table (``head(8) | degree(8) | metric(8)`` per vertex)
and edge nodes ``dest(8) | weight(8) | next(8)``.
"""

from __future__ import annotations

from typing import Iterator

from ..txn.runtime import PersistentMemory, ThreadAPI
from .base import SetupAccessor, Workload
from .rng import thread_rng

MAX_PARTITIONS = 8
VERTEX_SIZE = 24
_HEAD = 0
_DEGREE = 8
_METRIC = 16
EDGE_SIZE = 24
_DEST = 0
_WEIGHT = 8
_NEXT = 16

KERNEL_COMPUTE = 12  # instructions of kernel bookkeeping per transaction
PER_EDGE_COMPUTE = 6  # instructions per scanned edge (weight compare etc.)


class SSCA2Workload(Workload):
    """Transactional SSCA 2.2-style graph analyses."""

    name = "ssca2"
    trace_compilable = True
    paper_footprint = "16 MB"
    description = (
        "A transactional implementation of SSCA 2.2, performing several "
        "analyses of a large, scale-free graph."
    )

    def __init__(
        self,
        seed: int = 42,
        value_kind: str = "int",
        vertices_per_partition: int = 4096,
        initial_edges_per_vertex: int = 6,
    ) -> None:
        super().__init__(seed, value_kind)
        self.vertices_per_partition = vertices_per_partition
        self.initial_edges_per_vertex = initial_edges_per_vertex
        self._vertices_base = 0
        self._heap = None

    def _vertex_addr(self, part: int, v: int) -> int:
        index = part * self.vertices_per_partition + v
        return self._vertices_base + index * VERTEX_SIZE

    def _pick_vertex(self, rng) -> int:
        """Scale-free-ish endpoint choice: square the uniform draw so low
        vertex ids act as hubs."""
        u = rng.random()
        return int(u * u * self.vertices_per_partition) % self.vertices_per_partition

    # ------------------------------------------------------------------
    def setup(self, pm: PersistentMemory) -> None:
        """Build the initial scale-free graph in each partition."""
        self._heap = pm.heap
        acc = SetupAccessor(pm)
        total = MAX_PARTITIONS * self.vertices_per_partition
        self._vertices_base = pm.heap.alloc(total * VERTEX_SIZE)
        for part in range(MAX_PARTITIONS):
            for v in range(self.vertices_per_partition):
                base = self._vertex_addr(part, v)
                self.write_word(acc, base + _HEAD, 0)
                self.write_word(acc, base + _DEGREE, 0)
                self.write_word(acc, base + _METRIC, 0)
        rng = thread_rng(self.seed, 0x55CA)
        for part in range(MAX_PARTITIONS):
            for v in range(self.vertices_per_partition):
                for _ in range(self.initial_edges_per_vertex):
                    self._insert_edge(
                        acc, part, v, self._pick_vertex(rng), rng.randrange(1, 1 << 16)
                    )

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """Mix of edge-insert (50%), classify (25%), analysis (25%) txns."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        for _txn in range(num_txns):
            kind = rng.random()
            with api.transaction():
                api.compute(KERNEL_COMPUTE)
                if kind < 0.5:
                    self._insert_edge(
                        api,
                        part,
                        self._pick_vertex(rng),
                        self._pick_vertex(rng),
                        rng.randrange(1, 1 << 16),
                    )
                elif kind < 0.75:
                    self._classify_edges(api, part, self._pick_vertex(rng))
                else:
                    self._analyze_neighbourhood(api, part, self._pick_vertex(rng))
            yield

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _insert_edge(self, acc, part: int, src: int, dst: int, weight: int) -> None:
        """Kernel 1: prepend an edge node to src's adjacency list."""
        vertex = self._vertex_addr(part, src)
        head = self.read_word(acc, vertex + _HEAD)
        edge = acc.alloc(EDGE_SIZE)
        self.write_word(acc, edge + _DEST, dst)
        self.write_word(acc, edge + _WEIGHT, weight)
        self.write_word(acc, edge + _NEXT, head)
        self.write_word(acc, vertex + _HEAD, edge)
        degree = self.read_word(acc, vertex + _DEGREE)
        self.write_word(acc, vertex + _DEGREE, degree + 1)

    def _classify_edges(self, acc, part: int, v: int) -> None:
        """Kernel 2: find the maximum edge weight and persist it."""
        vertex = self._vertex_addr(part, v)
        edge = self.read_word(acc, vertex + _HEAD)
        best = 0
        hops = 0
        while edge != 0 and hops < 32:
            acc.compute(PER_EDGE_COMPUTE)
            weight = self.read_word(acc, edge + _WEIGHT)
            if weight > best:
                best = weight
            edge = self.read_word(acc, edge + _NEXT)
            hops += 1
        self.write_word(acc, vertex + _METRIC, best)

    def _analyze_neighbourhood(self, acc, part: int, v: int) -> None:
        """Kernel 3/4 flavour: two-hop walk accumulating a centrality-ish
        metric, persisted on the start vertex."""
        total = 0
        frontier = [v]
        for _depth in range(2):
            next_frontier = []
            for u in frontier[:4]:
                vertex = self._vertex_addr(part, u)
                edge = self.read_word(acc, vertex + _HEAD)
                hops = 0
                while edge != 0 and hops < 8:
                    acc.compute(PER_EDGE_COMPUTE)
                    dest = self.read_word(acc, edge + _DEST)
                    total += self.read_word(acc, edge + _WEIGHT)
                    next_frontier.append(dest)
                    edge = self.read_word(acc, edge + _NEXT)
                    hops += 1
            frontier = next_frontier
        vertex = self._vertex_addr(part, v)
        old = self.read_word(acc, vertex + _METRIC)
        self.write_word(acc, vertex + _METRIC, (old + total) & ((1 << 64) - 1))

    # ------------------------------------------------------------------
    def degree_of(self, acc, part: int, v: int) -> int:
        """Persisted degree counter (for tests)."""
        return self.read_word(acc, self._vertex_addr(part, v) + _DEGREE)

    def adjacency(self, acc, part: int, v: int) -> list:
        """List of (dest, weight) for vertex ``v`` (for tests)."""
        edges = []
        edge = self.read_word(acc, self._vertex_addr(part, v) + _HEAD)
        while edge != 0:
            edges.append(
                (self.read_word(acc, edge + _DEST), self.read_word(acc, edge + _WEIGHT))
            )
            edge = self.read_word(acc, edge + _NEXT)
        return edges
