"""Shared persistent primitives for the WHISPER-like kernels.

Three reusable structures, all per-partition (one partition per thread,
as in the paper's Figure 4 usage):

* :class:`ProbingTable` — fixed-capacity open-addressing hash table with
  linear probing (slot = ``key(8) | value(value_size)``, key 0 = empty);
* :class:`AppendLog` — an application-level circular append region (the
  "persist log" pattern WHISPER workloads use heavily — distinct from
  the *system* log of :mod:`repro.core.nvlog`);
* :class:`LRUList` — a doubly-linked LRU list over fixed node slots.

Kernels compose these inside transactions through the accessor protocol
of :mod:`repro.workloads.base`.
"""

from __future__ import annotations

from ..base import Workload

MAX_PARTITIONS = 8


class ProbingTable:
    """Open-addressing hash table with linear probing, per partition."""

    def __init__(self, workload: Workload, capacity: int, value_size: int) -> None:
        self._w = workload
        self.capacity = capacity
        self.value_size = value_size
        self.slot_size = 8 + value_size
        self._base = 0

    def allocate(self, heap) -> None:
        """Reserve slots for every partition (call once during setup)."""
        self._base = heap.alloc(MAX_PARTITIONS * self.capacity * self.slot_size)

    def clear(self, acc) -> None:
        """Mark every slot empty."""
        for part in range(MAX_PARTITIONS):
            for slot in range(self.capacity):
                self._w.write_word(acc, self.slot_addr(part, slot), 0)

    def slot_addr(self, part: int, slot: int) -> int:
        """Address of ``slot`` in ``part``."""
        index = part * self.capacity + slot
        return self._base + index * self.slot_size

    def _probe(self, acc, part: int, key: int) -> tuple:
        """Find ``key``; returns (slot_addr, found).  When not found the
        returned slot is the first empty one on the probe path."""
        slot = (key * 2654435761) % self.capacity
        for _step in range(self.capacity):
            addr = self.slot_addr(part, slot)
            stored = self._w.read_word(acc, addr)
            acc.compute(2)
            if stored == key:
                return addr, True
            if stored == 0:
                return addr, False
            slot = (slot + 1) % self.capacity
        raise RuntimeError("probing table full")

    def get(self, acc, part: int, key: int) -> bytes:
        """Value for ``key`` or b''."""
        addr, found = self._probe(acc, part, key)
        if not found:
            return b""
        return acc.read(addr + 8, self.value_size)

    def put(self, acc, part: int, key: int, value: bytes) -> None:
        """Insert or update ``key``.  Keys must be non-zero."""
        addr, found = self._probe(acc, part, key)
        if not found:
            self._w.write_word(acc, addr, key)
        acc.write(addr + 8, value)

    def remove(self, acc, part: int, key: int) -> bool:
        """Tombstone-free removal by key zeroing.

        Linear-probing deletion normally needs re-insertion of the
        cluster; kernels here only remove keys they re-insert soon after,
        so key-zeroing (leaving the value block) keeps probe chains
        correct enough for the access-pattern purpose of the kernels.
        """
        addr, found = self._probe(acc, part, key)
        if not found:
            return False
        self._w.write_word(acc, addr, 0)
        return True


class AppendLog:
    """Application-level circular append region, per partition."""

    def __init__(self, workload: Workload, entries: int, entry_size: int) -> None:
        self._w = workload
        self.entries = entries
        self.entry_size = entry_size
        self._base = 0
        self._cursor = [0] * MAX_PARTITIONS

    def allocate(self, heap) -> None:
        """Reserve the region for every partition."""
        self._base = heap.alloc(MAX_PARTITIONS * self.entries * self.entry_size)

    def append(self, acc, part: int, payload: bytes) -> int:
        """Append one record; returns its address."""
        slot = self._cursor[part]
        self._cursor[part] = (slot + 1) % self.entries
        addr = self._base + (part * self.entries + slot) * self.entry_size
        acc.write(addr, payload[: self.entry_size])
        return addr

    def reset(self) -> None:
        """Rewind every partition's cursor (per-run volatile state).

        The cursors are host-side run state, not persistent structure:
        without the rewind a second run of the same workload instance
        appends at different addresses than the first, breaking the
        deterministic-per-``(seed, tid)`` half of the
        ``trace_compilable`` contract.
        """
        self._cursor = [0] * MAX_PARTITIONS

    def snapshot(self) -> tuple:
        """Immutable cursor checkpoint (see ``Workload.run_state``)."""
        return tuple(self._cursor)

    def restore(self, state: tuple) -> None:
        """Reinstate cursors captured by :meth:`snapshot`."""
        self._cursor = list(state)


class LRUList:
    """Doubly-linked LRU list over pre-allocated node slots.

    Node layout: ``prev(8) | next(8) | tag(8)``.  The list head/tail live
    in a per-partition anchor block.
    """

    NODE_SIZE = 24
    _PREV = 0
    _NEXT = 8
    _TAG = 16

    def __init__(self, workload: Workload, nodes: int) -> None:
        self._w = workload
        self.nodes = nodes
        self._anchors = 0
        self._base = 0

    def allocate(self, heap) -> None:
        """Reserve anchors and node slots for every partition."""
        self._anchors = heap.alloc(MAX_PARTITIONS * 16)
        self._base = heap.alloc(MAX_PARTITIONS * self.nodes * self.NODE_SIZE)

    def node_addr(self, part: int, index: int) -> int:
        """Address of node ``index`` in ``part``."""
        return self._base + (part * self.nodes + index) * self.NODE_SIZE

    def _anchor(self, part: int) -> int:
        return self._anchors + part * 16

    def init_chain(self, acc, part: int) -> None:
        """Link every node into one chain, index 0 at the head."""
        anchor = self._anchor(part)
        self._w.write_word(acc, anchor, self.node_addr(part, 0))  # head
        self._w.write_word(acc, anchor + 8, self.node_addr(part, self.nodes - 1))
        for i in range(self.nodes):
            node = self.node_addr(part, i)
            prev_addr = self.node_addr(part, i - 1) if i > 0 else 0
            next_addr = self.node_addr(part, i + 1) if i < self.nodes - 1 else 0
            self._w.write_word(acc, node + self._PREV, prev_addr)
            self._w.write_word(acc, node + self._NEXT, next_addr)
            self._w.write_word(acc, node + self._TAG, i)

    def move_to_front(self, acc, part: int, index: int) -> None:
        """Splice node ``index`` out and relink it at the head."""
        anchor = self._anchor(part)
        node = self.node_addr(part, index)
        head = self._w.read_word(acc, anchor)
        if head == node:
            return
        prev_addr = self._w.read_word(acc, node + self._PREV)
        next_addr = self._w.read_word(acc, node + self._NEXT)
        if prev_addr != 0:
            self._w.write_word(acc, prev_addr + self._NEXT, next_addr)
        if next_addr != 0:
            self._w.write_word(acc, next_addr + self._PREV, prev_addr)
        else:
            self._w.write_word(acc, anchor + 8, prev_addr)  # new tail
        self._w.write_word(acc, node + self._PREV, 0)
        self._w.write_word(acc, node + self._NEXT, head)
        self._w.write_word(acc, head + self._PREV, node)
        self._w.write_word(acc, anchor, node)

    def head_tag(self, acc, part: int) -> int:
        """Tag of the most recently used node (for tests)."""
        head = self._w.read_word(acc, self._anchor(part))
        return self._w.read_word(acc, head + self._TAG)

    def chain_tags(self, acc, part: int) -> list:
        """Tags in head-to-tail order (for tests)."""
        tags = []
        node = self._w.read_word(acc, self._anchor(part))
        while node != 0:
            tags.append(self._w.read_word(acc, node + self._TAG))
            node = self._w.read_word(acc, node + self._NEXT)
        return tags
