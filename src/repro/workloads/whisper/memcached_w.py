"""WHISPER "memcached" kernel: cache gets/sets with LRU maintenance.

A get is read-mostly but still writes — the LRU list splice persists
three pointers; a set updates the value and splices too.  90% gets /
10% sets over a zipfian key popularity, memcached's classic profile.
"""

from __future__ import annotations

from typing import Iterator

from ...txn.runtime import PersistentMemory, ThreadAPI
from ..base import SetupAccessor, Workload
from ..rng import ZipfGenerator, thread_rng
from .base import MAX_PARTITIONS, LRUList, ProbingTable

GET_RATIO = 0.9
HASH_COMPUTE = 12


class MemcachedKernel(Workload):
    """Get/set cache transactions with persistent LRU."""

    name = "memcached"
    description = "Cache get/set with LRU list splices (WHISPER memcached)."
    trace_compilable = True
    request_shaped = True

    def __init__(
        self, seed: int = 42, value_kind: str = "int", keys_per_partition: int = 2048
    ) -> None:
        super().__init__(seed, value_kind)
        self.keys_per_partition = keys_per_partition
        self._table = ProbingTable(
            self, capacity=keys_per_partition * 2, value_size=self.value_size
        )
        self._lru = LRUList(self, nodes=keys_per_partition)

    def setup(self, pm: PersistentMemory) -> None:
        """Fill the cache and initialise the LRU chains."""
        acc = SetupAccessor(pm)
        self._table.allocate(pm.heap)
        self._lru.allocate(pm.heap)
        self._table.clear(acc)
        rng = thread_rng(self.seed, 0x3E3)
        for part in range(MAX_PARTITIONS):
            self._lru.init_chain(acc, part)
            for key in range(1, self.keys_per_partition + 1):
                self._table.put(acc, part, key, self.make_value(rng, key))

    def _request_ops(self, api, part: int, index: int, is_get: bool, tag: int) -> None:
        """The transaction interior of one get/set request — shared by
        the closed-loop thread body and the open-loop serve path so both
        issue the identical micro-op stream."""
        api.compute(HASH_COMPUTE)
        key = index + 1
        if is_get:
            self._table.get(api, part, key)
        else:
            self._table.put(api, part, key, self.make_value(None, tag))
        self._lru.move_to_front(api, part, index)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One get/set transaction with an LRU splice per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        zipf = ZipfGenerator(self.keys_per_partition, rng=rng)
        for txn in range(num_txns):
            index = zipf.next()
            is_get = rng.random() < GET_RATIO
            with api.transaction():
                self._request_ops(api, part, index, is_get, txn)
            yield

    def serve_request(self, api: ThreadAPI, tid: int, request) -> None:
        """One client request inside the caller's transaction."""
        if not hasattr(self, "_serve_zipf"):
            self._serve_zipf = ZipfGenerator(self.keys_per_partition)
        index = self._serve_zipf.rank(request.key_u)
        self._request_ops(
            api, tid % MAX_PARTITIONS, index, request.op_u < GET_RATIO, request.seq
        )

    @property
    def lru(self) -> LRUList:
        """Underlying LRU list (for tests)."""
        return self._lru
