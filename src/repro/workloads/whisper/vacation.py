"""WHISPER "vacation" kernel: travel-reservation transactions.

Vacation (from STAMP, carried into WHISPER) makes reservations across
car / flight / room tables: each transaction reads several candidate
records across the tables, computes a choice, and writes a small
reservation — a read-heavy mix with only a few persistent stores.
"""

from __future__ import annotations

from typing import Iterator

from ...txn.runtime import PersistentMemory, ThreadAPI
from ..base import SetupAccessor, Workload
from ..rng import thread_rng
from .base import MAX_PARTITIONS, AppendLog

TABLES = 3  # cars, flights, rooms
RECORD_SIZE = 16  # price(8) | available(8)
RESERVATION_RECORD = 32
CANDIDATES = 4  # records consulted per table
CHOICE_COMPUTE = 6  # per candidate comparison


class VacationKernel(Workload):
    """Read-heavy reservation transactions."""

    name = "vacation"
    description = "Travel reservations: read-heavy, few writes (WHISPER vacation)."
    trace_compilable = True

    def __init__(
        self, seed: int = 42, value_kind: str = "int", records_per_table: int = 1024
    ) -> None:
        super().__init__(seed, value_kind)
        self.records_per_table = records_per_table
        self._tables_base = 0
        self._reservations = AppendLog(self, entries=2048, entry_size=RESERVATION_RECORD)

    def _record_addr(self, part: int, table: int, record: int) -> int:
        index = (part * TABLES + table) * self.records_per_table + record
        return self._tables_base + index * RECORD_SIZE

    def setup(self, pm: PersistentMemory) -> None:
        """Populate the three tables with prices and availability."""
        acc = SetupAccessor(pm)
        total = MAX_PARTITIONS * TABLES * self.records_per_table
        self._tables_base = pm.heap.alloc(total * RECORD_SIZE)
        self._reservations.allocate(pm.heap)
        rng = thread_rng(self.seed, 0xACA)
        for part in range(MAX_PARTITIONS):
            for table in range(TABLES):
                for record in range(self.records_per_table):
                    addr = self._record_addr(part, table, record)
                    self.write_word(acc, addr, rng.randrange(50, 500))
                    self.write_word(acc, addr + 8, rng.randrange(1, 100))

    def reset_run_state(self) -> None:
        """Rewind the append-log cursors (volatile per-run state)."""
        self._reservations.reset()

    def run_state(self) -> tuple:
        """Checkpoint the reservation cursors (see ``Workload.run_state``)."""
        return self._reservations.snapshot()

    def restore_run_state(self, state: tuple) -> None:
        """Reinstate cursors captured by :meth:`run_state`."""
        self._reservations.restore(state)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One reservation transaction (reads-heavy) per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        for txn in range(num_txns):
            picks = [
                [rng.randrange(self.records_per_table) for _ in range(CANDIDATES)]
                for _ in range(TABLES)
            ]
            with api.transaction():
                chosen = []
                for table in range(TABLES):
                    best_record, best_price = -1, 1 << 62
                    for record in picks[table]:
                        api.compute(CHOICE_COMPUTE)
                        addr = self._record_addr(part, table, record)
                        price = self.read_word(api, addr)
                        available = self.read_word(api, addr + 8)
                        if available > 0 and price < best_price:
                            best_record, best_price = record, price
                    chosen.append(best_record)
                for table, record in enumerate(chosen):
                    if record < 0:
                        continue
                    addr = self._record_addr(part, table, record)
                    available = self.read_word(api, addr + 8)
                    self.write_word(api, addr + 8, max(0, available - 1))
                reservation = (
                    txn.to_bytes(8, "little")
                    + b"".join(
                        max(0, record).to_bytes(8, "little") for record in chosen
                    )
                )
                self._reservations.append(api, part, reservation)
            yield
