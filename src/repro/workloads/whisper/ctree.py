"""WHISPER "ctree" kernel: binary search tree insert/remove.

WHISPER's ctree is a crit-bit tree; its persistent-memory behaviour
(pointer-chasing descent, small scattered updates on insert/remove) is
what matters here, so we use an unbalanced binary search tree over
random keys — the paper notes ctree "accurately corresponds to" the
RBTree microbenchmark.

Node layout: ``key(8) | left(8) | right(8) | value(8)``.
"""

from __future__ import annotations

from typing import Iterator

from ...txn.runtime import PersistentMemory, ThreadAPI
from ..base import SetupAccessor, Workload
from ..rng import thread_rng
from .base import MAX_PARTITIONS

_KEY = 0
_LEFT = 8
_RIGHT = 16
_VALUE = 24
NODE_SIZE = 32
DESCEND_COMPUTE = 4


class CTreeKernel(Workload):
    """Insert-if-absent / remove-if-found over a binary search tree."""

    name = "ctree"
    description = "Crit-bit-style tree insert/remove (WHISPER ctree)."
    trace_compilable = True

    def __init__(
        self, seed: int = 42, value_kind: str = "int", keys_per_partition: int = 4096
    ) -> None:
        super().__init__(seed, value_kind)
        self.keys_per_partition = keys_per_partition
        self._roots_base = 0
        self._heap = None
        self._resident: list[set[int]] = []

    def _root_addr(self, part: int) -> int:
        return self._roots_base + part * 8

    # ------------------------------------------------------------------
    def setup(self, pm: PersistentMemory) -> None:
        """Allocate roots and pre-populate half of each tree."""
        self._heap = pm.heap
        acc = SetupAccessor(pm)
        self._roots_base = pm.heap.alloc(MAX_PARTITIONS * 8)
        for part in range(MAX_PARTITIONS):
            self.write_word(acc, self._root_addr(part), 0)
        self._resident = [set() for _ in range(MAX_PARTITIONS)]
        rng = thread_rng(self.seed, 0xC7EE)
        for part in range(MAX_PARTITIONS):
            for key in rng.sample(
                range(1, self.keys_per_partition + 1), self.keys_per_partition // 2
            ):
                self.insert(acc, part, key, rng.randrange(1 << 32))
                self._resident[part].add(key)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One insert-or-remove transaction per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        resident = set(self._resident[part])
        for txn in range(num_txns):
            key = rng.randrange(1, self.keys_per_partition + 1)
            with api.transaction():
                if key in resident:
                    self.remove(api, part, key)
                    resident.discard(key)
                else:
                    self.insert(api, part, key, txn)
                    resident.add(key)
            yield

    # ------------------------------------------------------------------
    def insert(self, acc, part: int, key: int, value: int) -> bool:
        """Insert ``key``; returns False if present."""
        parent = 0
        side = _LEFT
        node = self.read_word(acc, self._root_addr(part))
        while node != 0:
            acc.compute(DESCEND_COMPUTE)
            node_key = self.read_word(acc, node + _KEY)
            if node_key == key:
                return False
            parent = node
            side = _LEFT if key < node_key else _RIGHT
            node = self.read_word(acc, node + side)
        fresh = acc.alloc(NODE_SIZE)
        self.write_word(acc, fresh + _KEY, key)
        self.write_word(acc, fresh + _LEFT, 0)
        self.write_word(acc, fresh + _RIGHT, 0)
        self.write_word(acc, fresh + _VALUE, value)
        if parent == 0:
            self.write_word(acc, self._root_addr(part), fresh)
        else:
            self.write_word(acc, parent + side, fresh)
        return True

    def remove(self, acc, part: int, key: int) -> bool:
        """Remove ``key``; returns False if absent."""
        parent = 0
        side = _LEFT
        node = self.read_word(acc, self._root_addr(part))
        while node != 0:
            acc.compute(DESCEND_COMPUTE)
            node_key = self.read_word(acc, node + _KEY)
            if node_key == key:
                break
            parent = node
            side = _LEFT if key < node_key else _RIGHT
            node = self.read_word(acc, node + side)
        if node == 0:
            return False
        left = self.read_word(acc, node + _LEFT)
        right = self.read_word(acc, node + _RIGHT)
        if left != 0 and right != 0:
            # Two children: splice in the successor's key/value, then
            # unlink the successor (which has no left child).
            succ_parent = node
            succ = right
            while True:
                succ_left = self.read_word(acc, succ + _LEFT)
                if succ_left == 0:
                    break
                succ_parent = succ
                succ = succ_left
            self.write_word(acc, node + _KEY, self.read_word(acc, succ + _KEY))
            self.write_word(acc, node + _VALUE, self.read_word(acc, succ + _VALUE))
            replacement = self.read_word(acc, succ + _RIGHT)
            if succ_parent == node:
                self.write_word(acc, succ_parent + _RIGHT, replacement)
            else:
                self.write_word(acc, succ_parent + _LEFT, replacement)
            acc.free(succ, NODE_SIZE)
            return True
        replacement = left if left != 0 else right
        if parent == 0:
            self.write_word(acc, self._root_addr(part), replacement)
        else:
            self.write_word(acc, parent + side, replacement)
        acc.free(node, NODE_SIZE)
        return True

    def contains(self, acc, part: int, key: int) -> bool:
        """Membership test (for tests)."""
        node = self.read_word(acc, self._root_addr(part))
        while node != 0:
            node_key = self.read_word(acc, node + _KEY)
            if node_key == key:
                return True
            node = self.read_word(acc, node + (_LEFT if key < node_key else _RIGHT))
        return False
