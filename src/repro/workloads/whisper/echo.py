"""WHISPER "echo" kernel: scalable KV store with a persist queue.

Echo batches client updates into per-worker persistent queues before
merging them into a master index.  Each transaction appends a record to
the thread's queue region and updates the index entry — small
transactions, one append plus one index write, with light computation.
"""

from __future__ import annotations

from typing import Iterator

from ...txn.runtime import PersistentMemory, ThreadAPI
from ..base import SetupAccessor, Workload
from ..rng import thread_rng
from ..rng import ZipfGenerator
from .base import MAX_PARTITIONS, AppendLog, ProbingTable

RECORD_SIZE = 32
COMPUTE_PER_TXN = 10


class EchoKernel(Workload):
    """Append-then-index update transactions."""

    name = "echo"
    description = "Scalable KV store: queue append + index update (WHISPER echo)."
    trace_compilable = True

    def __init__(
        self, seed: int = 42, value_kind: str = "int", keys_per_partition: int = 2048
    ) -> None:
        super().__init__(seed, value_kind)
        self.keys_per_partition = keys_per_partition
        self._queue = AppendLog(self, entries=1024, entry_size=RECORD_SIZE)
        self._index = ProbingTable(self, capacity=keys_per_partition * 2, value_size=8)

    def setup(self, pm: PersistentMemory) -> None:
        """Allocate queue and index; seed every key."""
        acc = SetupAccessor(pm)
        self._queue.allocate(pm.heap)
        self._index.allocate(pm.heap)
        self._index.clear(acc)
        rng = thread_rng(self.seed, 0xEC0)
        for part in range(MAX_PARTITIONS):
            for key in range(1, self.keys_per_partition + 1):
                self._index.put(acc, part, key, self.make_value(rng, key)[:8])

    def reset_run_state(self) -> None:
        """Rewind the append-log cursors (volatile per-run state)."""
        self._queue.reset()

    def run_state(self) -> tuple:
        """Checkpoint the queue cursors (see ``Workload.run_state``)."""
        return self._queue.snapshot()

    def restore_run_state(self, state: tuple) -> None:
        """Reinstate queue cursors captured by :meth:`run_state`."""
        self._queue.restore(state)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One queue-append + index-update transaction per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        zipf = ZipfGenerator(self.keys_per_partition, rng=rng)
        for txn in range(num_txns):
            key = zipf.next() + 1
            with api.transaction():
                api.compute(COMPUTE_PER_TXN)
                record = key.to_bytes(8, "little") + (txn & 0xFFFFFFFF).to_bytes(
                    8, "little"
                ) + bytes(16)
                self._queue.append(api, part, record)
                self._index.put(api, part, key, (txn & ((1 << 64) - 1)).to_bytes(8, "little"))
            yield
