"""WHISPER "nfs" kernel: file-server operations over a PMFS-like layout.

WHISPER runs an NFS server over PMFS; the persistent-memory behaviour is
filesystem metadata plus data-block writes.  The kernel models a flat
file store: an inode table, a directory index, and a block region.

Transaction mix: 45% block write (append a 256 B chunk to a file and
bump its inode size/mtime), 25% metadata update (chmod/utime-style
inode rewrite), 20% lookup (directory probe + inode read, no writes
except the atime word), 10% create (directory insert + fresh inode).
"""

from __future__ import annotations

from typing import Iterator

from ...txn.runtime import PersistentMemory, ThreadAPI
from ..base import SetupAccessor, Workload
from ..rng import thread_rng
from .base import MAX_PARTITIONS, AppendLog, ProbingTable

INODE_SIZE = 48  # size(8) mtime(8) atime(8) mode(8) blocks(8) pad(8)
_SIZE = 0
_MTIME = 8
_ATIME = 16
_MODE = 24
_BLOCKS = 32
BLOCK_CHUNK = 256
PATH_COMPUTE = 10  # path resolution per operation


class NFSKernel(Workload):
    """NFS-over-PMFS style file operations."""

    name = "nfs"
    description = "File server: block writes + inode/dir metadata (WHISPER nfs)."
    trace_compilable = True

    def __init__(
        self, seed: int = 42, value_kind: str = "int", files_per_partition: int = 512
    ) -> None:
        super().__init__(seed, value_kind)
        self.files_per_partition = files_per_partition
        self._directory = ProbingTable(self, capacity=files_per_partition * 4, value_size=8)
        self._blocks = AppendLog(self, entries=files_per_partition * 4, entry_size=BLOCK_CHUNK)
        self._inodes_base = 0

    def _inode_addr(self, part: int, inode: int) -> int:
        index = part * self.files_per_partition * 2 + inode
        return self._inodes_base + index * INODE_SIZE

    def setup(self, pm: PersistentMemory) -> None:
        """Create the initial files: directory entries + inodes."""
        acc = SetupAccessor(pm)
        self._directory.allocate(pm.heap)
        self._directory.clear(acc)
        self._blocks.allocate(pm.heap)
        total = MAX_PARTITIONS * self.files_per_partition * 2
        self._inodes_base = pm.heap.alloc(total * INODE_SIZE)
        rng = thread_rng(self.seed, 0x0F5)
        self._next_inode = [self.files_per_partition] * MAX_PARTITIONS
        for part in range(MAX_PARTITIONS):
            for handle in range(1, self.files_per_partition + 1):
                inode = handle - 1
                self._directory.put(acc, part, handle, inode.to_bytes(8, "little"))
                addr = self._inode_addr(part, inode)
                self.write_word(acc, addr + _SIZE, rng.randrange(1 << 20))
                self.write_word(acc, addr + _MODE, 0o644)

    def reset_run_state(self) -> None:
        """Rewind the append-log cursors and inode rotors (volatile
        per-run state).  Thread bodies copy ``_next_inode`` into a local
        today, but the rotor is part of the checkpointable run-state
        contract so interleaved shard stepping can never leak a creation
        cursor across requests."""
        self._blocks.reset()
        self._next_inode = [self.files_per_partition] * MAX_PARTITIONS

    def run_state(self) -> tuple:
        """Checkpoint block cursors + inode rotors (see
        ``Workload.run_state``)."""
        return (self._blocks.snapshot(), tuple(self._next_inode))

    def restore_run_state(self, state: tuple) -> None:
        """Reinstate the checkpoint captured by :meth:`run_state`."""
        blocks, next_inode = state
        self._blocks.restore(blocks)
        self._next_inode = list(next_inode)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One file operation (write/metadata/lookup/create) per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        next_inode = self._next_inode[part]
        clock = 1
        for txn in range(num_txns):
            handle = rng.randrange(1, self.files_per_partition + 1)
            op = rng.random()
            clock += 1
            with api.transaction():
                api.compute(PATH_COMPUTE)
                raw = self._directory.get(api, part, handle)
                inode = int.from_bytes(raw, "little") if raw else 0
                addr = self._inode_addr(part, inode)
                if op < 0.45:
                    self._write_block(api, part, addr, handle, txn, clock)
                elif op < 0.70:
                    self.write_word(api, addr + _MODE, 0o600 + (txn & 0o177))
                    self.write_word(api, addr + _MTIME, clock)
                elif op < 0.90:
                    self.read_word(api, addr + _SIZE)
                    self.read_word(api, addr + _MODE)
                    self.write_word(api, addr + _ATIME, clock)
                else:
                    fresh = next_inode
                    next_inode += 1
                    if fresh < self.files_per_partition * 2:
                        new_handle = self.files_per_partition + fresh
                        self._directory.put(
                            api, part, new_handle, fresh.to_bytes(8, "little")
                        )
                        fresh_addr = self._inode_addr(part, fresh)
                        self.write_word(api, fresh_addr + _SIZE, 0)
                        self.write_word(api, fresh_addr + _MODE, 0o644)
                        self.write_word(api, fresh_addr + _MTIME, clock)
            yield

    def _write_block(self, api, part: int, inode_addr: int, handle: int,
                     txn: int, clock: int) -> None:
        chunk = (handle.to_bytes(8, "little") + (txn & 0xFFFFFFFF).to_bytes(8, "little"))
        chunk += bytes(BLOCK_CHUNK - len(chunk))
        self._blocks.append(api, part, chunk)
        size = self.read_word(api, inode_addr + _SIZE)
        blocks = self.read_word(api, inode_addr + _BLOCKS)
        self.write_word(api, inode_addr + _SIZE, size + BLOCK_CHUNK)
        self.write_word(api, inode_addr + _BLOCKS, blocks + 1)
        self.write_word(api, inode_addr + _MTIME, clock)

    def inode_state(self, acc, part: int, inode: int) -> tuple:
        """(size, blocks) for tests."""
        addr = self._inode_addr(part, inode)
        return self.read_word(acc, addr + _SIZE), self.read_word(acc, addr + _BLOCKS)
