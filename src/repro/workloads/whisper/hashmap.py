"""WHISPER "hashmap" kernel: open-addressing hash map insert/remove.

Corresponds to the Hash microbenchmark (the paper notes hashmap
"accurately corresponds to" it) but uses linear probing rather than
chaining — single-structure updates with occasional probe walks.
"""

from __future__ import annotations

from typing import Iterator

from ...txn.runtime import PersistentMemory, ThreadAPI
from ..base import SetupAccessor, Workload
from ..rng import thread_rng
from .base import MAX_PARTITIONS, ProbingTable

HASH_COMPUTE = 14


class HashmapKernel(Workload):
    """Insert-or-remove over an open-addressing hash map."""

    name = "hashmap"
    description = "Open-addressing hash map insert/remove (WHISPER hashmap)."
    trace_compilable = True

    def __init__(
        self, seed: int = 42, value_kind: str = "int", keys_per_partition: int = 4096
    ) -> None:
        super().__init__(seed, value_kind)
        self.keys_per_partition = keys_per_partition
        self._table = ProbingTable(
            self, capacity=keys_per_partition * 2, value_size=self.value_size
        )
        self._resident: list[set[int]] = []

    def setup(self, pm: PersistentMemory) -> None:
        """Allocate the table and pre-populate half of each partition."""
        acc = SetupAccessor(pm)
        self._table.allocate(pm.heap)
        self._table.clear(acc)
        self._resident = [set() for _ in range(MAX_PARTITIONS)]
        rng = thread_rng(self.seed, 0x4A5)
        for part in range(MAX_PARTITIONS):
            for key in rng.sample(
                range(1, self.keys_per_partition + 1), self.keys_per_partition // 2
            ):
                self._table.put(acc, part, key, self.make_value(rng, key))
                self._resident[part].add(key)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One insert-or-remove transaction per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        resident = set(self._resident[part])
        for txn in range(num_txns):
            key = rng.randrange(1, self.keys_per_partition + 1)
            with api.transaction():
                api.compute(HASH_COMPUTE)
                if key in resident:
                    self._table.remove(api, part, key)
                    resident.discard(key)
                else:
                    self._table.put(api, part, key, self.make_value(rng, txn))
                    resident.add(key)
            yield

    @property
    def table(self) -> ProbingTable:
        """Underlying table (for tests)."""
        return self._table
