"""WHISPER "redis" kernel: KV updates with an append-only-file log.

Redis persists every mutation to its AOF before updating the in-memory
(here: persistent) dictionary — each transaction is one sequential AOF
append plus one hash update.  80% writes / 20% reads, moderate skew.
"""

from __future__ import annotations

from typing import Iterator

from ...txn.runtime import PersistentMemory, ThreadAPI
from ..base import SetupAccessor, Workload
from ..rng import ZipfGenerator, thread_rng
from .base import MAX_PARTITIONS, AppendLog, ProbingTable

WRITE_RATIO = 0.8
AOF_RECORD = 48
COMMAND_COMPUTE = 16


class RedisKernel(Workload):
    """AOF-append plus dictionary update transactions."""

    name = "redis"
    description = "KV store with append-only-file persistence (WHISPER redis)."
    trace_compilable = True
    request_shaped = True

    def __init__(
        self, seed: int = 42, value_kind: str = "int", keys_per_partition: int = 2048
    ) -> None:
        super().__init__(seed, value_kind)
        self.keys_per_partition = keys_per_partition
        self._aof = AppendLog(self, entries=2048, entry_size=AOF_RECORD)
        self._dict = ProbingTable(
            self, capacity=keys_per_partition * 2, value_size=self.value_size
        )

    def setup(self, pm: PersistentMemory) -> None:
        """Allocate AOF region and dictionary; seed every key."""
        acc = SetupAccessor(pm)
        self._aof.allocate(pm.heap)
        self._dict.allocate(pm.heap)
        self._dict.clear(acc)
        rng = thread_rng(self.seed, 0x4ED)
        for part in range(MAX_PARTITIONS):
            for key in range(1, self.keys_per_partition + 1):
                self._dict.put(acc, part, key, self.make_value(rng, key))

    def reset_run_state(self) -> None:
        """Rewind the append-log cursors (volatile per-run state)."""
        self._aof.reset()

    def run_state(self) -> tuple:
        """Checkpoint the AOF cursors (see ``Workload.run_state``)."""
        return self._aof.snapshot()

    def restore_run_state(self, state: tuple) -> None:
        """Reinstate AOF cursors captured by :meth:`run_state`."""
        self._aof.restore(state)

    def _request_ops(self, api, part: int, key: int, is_write: bool, tag: int) -> None:
        """The transaction interior of one command — shared by the
        closed-loop thread body and the open-loop serve path."""
        api.compute(COMMAND_COMPUTE)
        if is_write:
            record = key.to_bytes(8, "little") + bytes(AOF_RECORD - 8)
            self._aof.append(api, part, record)
            self._dict.put(api, part, key, self.make_value(None, tag))
        else:
            self._dict.get(api, part, key)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One AOF-append + dictionary update (or read) per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        zipf = ZipfGenerator(self.keys_per_partition, theta=0.8, rng=rng)
        for txn in range(num_txns):
            key = zipf.next() + 1
            with api.transaction():
                is_write = rng.random() < WRITE_RATIO
                self._request_ops(api, part, key, is_write, txn)
            yield

    def serve_request(self, api: ThreadAPI, tid: int, request) -> None:
        """One client command inside the caller's transaction."""
        if not hasattr(self, "_serve_zipf"):
            self._serve_zipf = ZipfGenerator(self.keys_per_partition, theta=0.8)
        key = self._serve_zipf.rank(request.key_u) + 1
        self._request_ops(
            api, tid % MAX_PARTITIONS, key, request.op_u < WRITE_RATIO, request.seq
        )
