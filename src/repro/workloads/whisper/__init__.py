"""WHISPER-like persistent-memory application kernels (Figure 10).

The WHISPER suite (Nalli et al., ASPLOS 2017) is not redistributable
here; these synthetic kernels reproduce the characteristics that drive
the paper's Figure 10 trends — transaction size, write intensity, and
access skew — per workload:

========== ==========================================================
ctree      crit-bit-style binary search tree insert/remove
hashmap    open-addressing hash map insert/remove
echo       scalable KV store: append a record, update its index
exim       mail server: spool create/append/delete churn
nfs        file server: block writes + inode/dir metadata
memcached  cache: get/set over a hash with LRU list splices
redis      KV store with an append-only-file style persist log
tpcc       new-order transactions: multi-record, write-intensive
vacation   travel reservations: read-heavy with few writes
ycsb       zipfian 50/50 read/update key-value mix
========== ==========================================================
"""

from .ctree import CTreeKernel
from .echo import EchoKernel
from .exim_w import EximKernel
from .hashmap import HashmapKernel
from .memcached_w import MemcachedKernel
from .nfs_w import NFSKernel
from .redis_w import RedisKernel
from .tpcc import TPCCKernel
from .vacation import VacationKernel
from .ycsb import YCSBKernel

WHISPER_KERNELS = {
    "ctree": CTreeKernel,
    "hashmap": HashmapKernel,
    "echo": EchoKernel,
    "exim": EximKernel,
    "memcached": MemcachedKernel,
    "nfs": NFSKernel,
    "redis": RedisKernel,
    "tpcc": TPCCKernel,
    "vacation": VacationKernel,
    "ycsb": YCSBKernel,
}
"""Registry of WHISPER-like kernels by workload name."""


def make_whisper_kernel(name: str, **kwargs):
    """Instantiate a WHISPER-like kernel by name."""
    try:
        factory = WHISPER_KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown WHISPER kernel {name!r}; choose from {sorted(WHISPER_KERNELS)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "CTreeKernel",
    "HashmapKernel",
    "EchoKernel",
    "EximKernel",
    "NFSKernel",
    "MemcachedKernel",
    "RedisKernel",
    "TPCCKernel",
    "VacationKernel",
    "YCSBKernel",
    "WHISPER_KERNELS",
    "make_whisper_kernel",
]
