"""WHISPER "ycsb" kernel: zipfian 50/50 read/update key-value mix.

YCSB workload-A over a persistent hash table: half the transactions
update a (zipfian-popular) key, half read one.  With the skew, updates
concentrate on a few cache lines — the write-coalescing opportunity the
paper's design preserves and forced write-backs destroy, which is why
ycsb is among the biggest winners in Figure 10.
"""

from __future__ import annotations

from typing import Iterator

from ...txn.runtime import PersistentMemory, ThreadAPI
from ..base import SetupAccessor, Workload
from ..rng import ZipfGenerator, thread_rng
from .base import MAX_PARTITIONS, ProbingTable

UPDATE_RATIO = 0.5
KEY_COMPUTE = 10


class YCSBKernel(Workload):
    """Workload-A style 50/50 read/update mix."""

    name = "ycsb"
    description = "Zipfian 50/50 read/update KV mix (WHISPER ycsb)."
    trace_compilable = True
    request_shaped = True

    def __init__(
        self, seed: int = 42, value_kind: str = "int", keys_per_partition: int = 2048
    ) -> None:
        super().__init__(seed, value_kind)
        self.keys_per_partition = keys_per_partition
        self._table = ProbingTable(
            self, capacity=keys_per_partition * 2, value_size=self.value_size
        )

    def setup(self, pm: PersistentMemory) -> None:
        """Load every key once (YCSB load phase)."""
        acc = SetupAccessor(pm)
        self._table.allocate(pm.heap)
        self._table.clear(acc)
        rng = thread_rng(self.seed, 0x4C5B)
        for part in range(MAX_PARTITIONS):
            for key in range(1, self.keys_per_partition + 1):
                self._table.put(acc, part, key, self.make_value(rng, key))

    def _request_ops(self, api, part: int, key: int, update: bool, tag: int) -> None:
        """The transaction interior of one read/update — shared by the
        closed-loop thread body and the open-loop serve path."""
        api.compute(KEY_COMPUTE)
        if update:
            self._table.put(api, part, key, self.make_value(None, tag))
        else:
            self._table.get(api, part, key)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One zipfian read or update transaction per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        zipf = ZipfGenerator(self.keys_per_partition, rng=rng)
        for txn in range(num_txns):
            key = zipf.next() + 1
            update = rng.random() < UPDATE_RATIO
            with api.transaction():
                self._request_ops(api, part, key, update, txn)
            yield

    def serve_request(self, api: ThreadAPI, tid: int, request) -> None:
        """One client request inside the caller's transaction."""
        if not hasattr(self, "_serve_zipf"):
            self._serve_zipf = ZipfGenerator(self.keys_per_partition)
        key = self._serve_zipf.rank(request.key_u) + 1
        self._request_ops(
            api, tid % MAX_PARTITIONS, key, request.op_u < UPDATE_RATIO, request.seq
        )

    @property
    def table(self) -> ProbingTable:
        """Underlying table (for tests)."""
        return self._table
