"""WHISPER "exim" kernel: mail-spool churn over a PMFS-like layout.

Exim accepts a message (create a spool entry, append the body in
chunks), then a delivery pass removes it — a create/append/delete churn
over filesystem state.  Each accept transaction writes a spool-index
entry plus 2-6 body chunks; each delivery transaction tombstones the
entry and accounts the delivery.

60% accepts / 40% deliveries over a bounded spool (deliveries pick the
oldest live message), so spool occupancy stays bounded.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from ...txn.runtime import PersistentMemory, ThreadAPI
from ..base import SetupAccessor, Workload
from ..rng import thread_rng
from .base import MAX_PARTITIONS, AppendLog, ProbingTable

CHUNK = 128
HEADER_COMPUTE = 14  # envelope parsing per message


class EximKernel(Workload):
    """Mail-spool accept/deliver churn."""

    name = "exim"
    description = "Mail server: spool create/append/delete churn (WHISPER exim)."
    trace_compilable = True

    def __init__(
        self, seed: int = 42, value_kind: str = "int", spool_slots: int = 1024
    ) -> None:
        super().__init__(seed, value_kind)
        self.spool_slots = spool_slots
        self._index = ProbingTable(self, capacity=spool_slots * 2, value_size=16)
        self._bodies = AppendLog(self, entries=spool_slots * 8, entry_size=CHUNK)
        self._stats_base = 0  # per-partition delivered counter

    def setup(self, pm: PersistentMemory) -> None:
        """Empty spool; allocate the index, body region, and counters."""
        acc = SetupAccessor(pm)
        self._index.allocate(pm.heap)
        self._index.clear(acc)
        self._bodies.allocate(pm.heap)
        self._stats_base = pm.heap.alloc(MAX_PARTITIONS * 8)
        for part in range(MAX_PARTITIONS):
            self.write_word(acc, self._stats_base + part * 8, 0)

    def reset_run_state(self) -> None:
        """Rewind the append-log cursors (volatile per-run state)."""
        self._bodies.reset()

    def run_state(self) -> tuple:
        """Checkpoint the spool cursors (see ``Workload.run_state``)."""
        return self._bodies.snapshot()

    def restore_run_state(self, state: tuple) -> None:
        """Reinstate spool cursors captured by :meth:`run_state`."""
        self._bodies.restore(state)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One accept (multi-chunk) or delivery transaction per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        live: deque = deque()
        next_id = 1
        for _txn in range(num_txns):
            deliver = live and (rng.random() < 0.4 or len(live) > 64)
            with api.transaction():
                api.compute(HEADER_COMPUTE)
                if deliver:
                    message = live.popleft()
                    self._index.remove(api, part, message)
                    delivered_addr = self._stats_base + part * 8
                    delivered = self.read_word(api, delivered_addr)
                    self.write_word(api, delivered_addr, delivered + 1)
                else:
                    message = next_id
                    next_id += 1
                    chunks = rng.randint(2, 6)
                    for seq in range(chunks):
                        body = message.to_bytes(8, "little") + seq.to_bytes(8, "little")
                        self._bodies.append(api, part, body + bytes(CHUNK - len(body)))
                    entry = message.to_bytes(8, "little") + chunks.to_bytes(8, "little")
                    self._index.put(api, part, message, entry)
                    live.append(message)
            yield

    def delivered_count(self, acc, part: int) -> int:
        """Persisted delivery counter (for tests)."""
        return self.read_word(acc, self._stats_base + part * 8)

    @property
    def index(self) -> ProbingTable:
        """Spool index (for tests)."""
        return self._index
