"""WHISPER "tpcc" kernel: new-order style transactions.

TPC-C's new-order is the write-intensive heavyweight of the suite: one
order header, 5-15 order lines, and a stock read-modify-write per line,
all persisted in one transaction.  The paper's Figure 10 highlights tpcc
(with ycsb) as gaining the most memory energy from the design because of
this write intensity.

Tables: ``orders`` (header records in an append region), ``order_lines``
(append region), ``stock`` (array of ``quantity(8) | ytd(8)`` records).
"""

from __future__ import annotations

from typing import Iterator

from ...txn.runtime import PersistentMemory, ThreadAPI
from ..base import SetupAccessor, Workload
from ..rng import thread_rng
from .base import MAX_PARTITIONS, AppendLog

ORDER_RECORD = 32
ORDER_LINE_RECORD = 40
STOCK_RECORD = 16
PRICING_COMPUTE = 8  # per order line


class TPCCKernel(Workload):
    """New-order transactions over orders, order-lines, and stock."""

    name = "tpcc"
    description = "TPC-C new-order: multi-record, write-intensive (WHISPER tpcc)."
    trace_compilable = True

    def __init__(
        self, seed: int = 42, value_kind: str = "int", items_per_partition: int = 4096
    ) -> None:
        super().__init__(seed, value_kind)
        self.items_per_partition = items_per_partition
        self._orders = AppendLog(self, entries=1024, entry_size=ORDER_RECORD)
        self._lines = AppendLog(self, entries=8192, entry_size=ORDER_LINE_RECORD)
        self._stock_base = 0

    def _stock_addr(self, part: int, item: int) -> int:
        index = part * self.items_per_partition + item
        return self._stock_base + index * STOCK_RECORD

    def setup(self, pm: PersistentMemory) -> None:
        """Allocate tables; stock starts at quantity 100, ytd 0."""
        acc = SetupAccessor(pm)
        self._orders.allocate(pm.heap)
        self._lines.allocate(pm.heap)
        total = MAX_PARTITIONS * self.items_per_partition
        self._stock_base = pm.heap.alloc(total * STOCK_RECORD)
        for part in range(MAX_PARTITIONS):
            for item in range(self.items_per_partition):
                addr = self._stock_addr(part, item)
                self.write_word(acc, addr, 100)
                self.write_word(acc, addr + 8, 0)

    def reset_run_state(self) -> None:
        """Rewind the append-log cursors (volatile per-run state)."""
        self._orders.reset()
        self._lines.reset()

    def run_state(self) -> tuple:
        """Checkpoint both append cursors (see ``Workload.run_state``)."""
        return (self._orders.snapshot(), self._lines.snapshot())

    def restore_run_state(self, state: tuple) -> None:
        """Reinstate cursors captured by :meth:`run_state`."""
        orders, lines = state
        self._orders.restore(orders)
        self._lines.restore(lines)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One new-order transaction (5-15 order lines) per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        for order_id in range(num_txns):
            n_lines = rng.randint(5, 15)
            items = [rng.randrange(self.items_per_partition) for _ in range(n_lines)]
            with api.transaction():
                header = (
                    order_id.to_bytes(8, "little")
                    + n_lines.to_bytes(8, "little")
                    + bytes(ORDER_RECORD - 16)
                )
                self._orders.append(api, part, header)
                for line_no, item in enumerate(items):
                    api.compute(PRICING_COMPUTE)
                    line = (
                        order_id.to_bytes(8, "little")
                        + line_no.to_bytes(8, "little")
                        + item.to_bytes(8, "little")
                        + bytes(ORDER_LINE_RECORD - 24)
                    )
                    self._lines.append(api, part, line)
                    stock = self._stock_addr(part, item)
                    quantity = self.read_word(api, stock)
                    ytd = self.read_word(api, stock + 8)
                    new_quantity = quantity - 1 if quantity > 10 else quantity + 91
                    self.write_word(api, stock, new_quantity)
                    self.write_word(api, stock + 8, ytd + 1)
            yield

    def stock_state(self, acc, part: int, item: int) -> tuple:
        """(quantity, ytd) for tests."""
        addr = self._stock_addr(part, item)
        return self.read_word(acc, addr), self.read_word(acc, addr + 8)
