"""Open-chain hash table microbenchmark (Table III: "Hash").

"Searches for a value in an open-chain hash table.  Insert if absent,
remove if found."  Each transaction hashes a key, walks the bucket chain,
and either unlinks the found node or links a fresh one at the head.

Layout (all in the persistent heap):

* bucket array — one word (head pointer, 0 = empty) per bucket;
* node — ``key(8) | next(8) | value(value_size)``.

Buckets are partitioned per thread (the paper's Figure 4 runs one
persistent transaction per thread on per-thread data), so transactions
never contend on the same words.
"""

from __future__ import annotations

from typing import Iterator

from ..txn.runtime import PersistentMemory, ThreadAPI
from .base import SetupAccessor, Workload
from .rng import thread_rng

MAX_PARTITIONS = 8
HASH_COMPUTE = 18  # instructions to hash a key
COMPARE_COMPUTE = 3  # instructions per chain-node comparison


class HashTableWorkload(Workload):
    """Insert-if-absent / remove-if-found over an open-chain hash table."""

    name = "hash"
    trace_compilable = True
    paper_footprint = "256 MB"
    description = (
        "Searches for a value in an open-chain hash table. "
        "Insert if absent, remove if found."
    )

    def __init__(
        self,
        seed: int = 42,
        value_kind: str = "int",
        buckets_per_partition: int = 4096,
        keys_per_partition: int = 65536,
    ) -> None:
        super().__init__(seed, value_kind)
        self.buckets_per_partition = buckets_per_partition
        self.keys_per_partition = keys_per_partition
        self._buckets_base = 0
        self._heap = None
        self._resident: list[set[int]] = []

    @property
    def node_size(self) -> int:
        """Bytes per chain node."""
        return 16 + self.value_size

    # ------------------------------------------------------------------
    def setup(self, pm: PersistentMemory) -> None:
        """Allocate buckets and pre-populate half of each partition."""
        self._heap = pm.heap
        acc = SetupAccessor(pm)
        total_buckets = MAX_PARTITIONS * self.buckets_per_partition
        self._buckets_base = pm.heap.alloc(total_buckets * 8)
        # One bulk write of zeros instead of a word-at-a-time loop over
        # every bucket head (same bytes).
        acc.write(self._buckets_base, bytes(total_buckets * 8))
        self._resident = [set() for _ in range(MAX_PARTITIONS)]
        rng = thread_rng(self.seed, 0xBEEF)
        for part in range(MAX_PARTITIONS):
            for key in rng.sample(
                range(self.keys_per_partition), self.keys_per_partition // 2
            ):
                self._insert(acc, part, key, self.make_value(rng, key))
                self._resident[part].add(key)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One insert-or-remove transaction per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        resident = set(self._resident[part])
        for txn in range(num_txns):
            key = rng.randrange(self.keys_per_partition)
            with api.transaction():
                api.compute(HASH_COMPUTE)
                if key in resident:
                    self._remove(api, part, key)
                    resident.discard(key)
                else:
                    self._insert(api, part, key, self.make_value(rng, txn))
                    resident.add(key)
            yield

    # ------------------------------------------------------------------
    # Structure operations (work on any accessor)
    # ------------------------------------------------------------------
    def _bucket_addr(self, part: int, key: int) -> int:
        index = part * self.buckets_per_partition + (
            (key * 2654435761) % self.buckets_per_partition
        )
        return self._buckets_base + index * 8

    # read_word/write_word are inlined in _insert (the setup loop calls
    # it hundreds of thousands of times); same bytes, fewer frames.
    def _insert(self, acc, part: int, key: int, value: bytes) -> None:
        bucket = self._bucket_addr(part, key)
        head = int.from_bytes(acc.read(bucket, 8), "little")
        node = acc.alloc(self.node_size)
        acc.write(node, key.to_bytes(8, "little"))
        acc.write(node + 8, head.to_bytes(8, "little"))
        acc.write(node + 16, value)
        acc.write(bucket, node.to_bytes(8, "little"))

    def _remove(self, acc, part: int, key: int) -> None:
        bucket = self._bucket_addr(part, key)
        prev = 0
        node = self.read_word(acc, bucket)
        while node != 0:
            node_key = self.read_word(acc, node)
            acc.compute(COMPARE_COMPUTE)
            if node_key == key:
                nxt = self.read_word(acc, node + 8)
                if prev == 0:
                    self.write_word(acc, bucket, nxt)
                else:
                    self.write_word(acc, prev + 8, nxt)
                acc.free(node, self.node_size)
                return
            prev = node
            node = self.read_word(acc, node + 8)

    def lookup(self, acc, part: int, key: int) -> bytes:
        """Return the value stored for ``key`` or b'' (for tests)."""
        node = self.read_word(acc, self._bucket_addr(part, key))
        while node != 0:
            if self.read_word(acc, node) == key:
                return acc.read(node + 16, self.value_size)
            node = self.read_word(acc, node + 8)
        return b""
