"""Evaluated workloads.

Microbenchmarks (Table III of the paper) — each transaction performs an
insert, delete, or swap against a persistent data structure:

========== =========================== =================
name       structure                   paper footprint
========== =========================== =================
hash       open-chain hash table       256 MB
rbtree     red-black tree              256 MB
sps        random swaps in a vector    1 GB
btree      B+ tree                     256 MB
ssca2      scale-free graph (SSCA 2.2) 16 MB
========== =========================== =================

Each exists in an integer-element and a string-element variant (string
elements span multiple cache lines, as in the paper's methodology).

WHISPER-like kernels (Figure 10) live in :mod:`repro.workloads.whisper`.
"""

from .base import SetupAccessor, Workload, WorkloadResult
from .btree import BTreeWorkload
from .hashtable import HashTableWorkload
from .rbtree import RBTreeWorkload
from .sps import SPSWorkload
from .ssca2 import SSCA2Workload

MICROBENCHMARKS = {
    "hash": HashTableWorkload,
    "rbtree": RBTreeWorkload,
    "sps": SPSWorkload,
    "btree": BTreeWorkload,
    "ssca2": SSCA2Workload,
}
"""Registry of Table III microbenchmarks by paper name."""


def make_microbenchmark(name: str, **kwargs) -> Workload:
    """Instantiate a Table III microbenchmark by name."""
    try:
        factory = MICROBENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown microbenchmark {name!r}; choose from {sorted(MICROBENCHMARKS)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "Workload",
    "WorkloadResult",
    "SetupAccessor",
    "HashTableWorkload",
    "RBTreeWorkload",
    "SPSWorkload",
    "BTreeWorkload",
    "SSCA2Workload",
    "MICROBENCHMARKS",
    "make_microbenchmark",
]
