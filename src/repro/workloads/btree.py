"""B+ tree microbenchmark (Table III: "BTree").

"Searches for a value in a B+ tree.  Insert if absent, remove if found."
A complete B+ tree with leaf splits, internal splits, and rebalancing
deletes (borrow from sibling or merge), entirely in persistent memory.
Key shifting within nodes produces runs of small persistent stores;
structure manipulation (descent comparisons, shifts) dominates the
logging cost, which is why BTree shows the smallest gains in the paper's
Figure 6.

Node layout: ``is_leaf(8) | nkeys(8) | next(8) | keys | ptrs`` (with one
spare key/ptr slot for the momentary overflow between insert and split).
Leaf ``ptrs[i]`` points at a value block; internal ``ptrs[i]`` at a
child node.
"""

from __future__ import annotations

from typing import Iterator

from ..txn.runtime import PersistentMemory, ThreadAPI
from .base import SetupAccessor, Workload
from .rng import thread_rng

MAX_PARTITIONS = 8
ORDER = 8  # max keys per node
MIN_KEYS = ORDER // 2

_IS_LEAF = 0
_NKEYS = 8
_NEXT = 16
_KEYS = 24
# One spare key/ptr slot: nodes overflow to ORDER+1 keys momentarily
# between insert and split.
_PTRS = _KEYS + 8 * (ORDER + 1)
NODE_SIZE = _PTRS + 8 * (ORDER + 2)

SEARCH_COMPUTE = 3  # instructions per key comparison


class BTreeWorkload(Workload):
    """Insert-if-absent / remove-if-found over a B+ tree."""

    name = "btree"
    trace_compilable = True
    paper_footprint = "256 MB"
    description = (
        "Searches for a value in a B+ tree. Insert if absent, remove if found."
    )

    def __init__(
        self,
        seed: int = 42,
        value_kind: str = "int",
        keys_per_partition: int = 16384,
    ) -> None:
        super().__init__(seed, value_kind)
        self.keys_per_partition = keys_per_partition
        self._roots_base = 0
        self._heap = None
        self._resident: list[set[int]] = []

    # ------------------------------------------------------------------
    # Node field helpers
    # ------------------------------------------------------------------
    def _root_addr(self, part: int) -> int:
        return self._roots_base + part * 8

    def _is_leaf(self, acc, node: int) -> bool:
        return self.read_word(acc, node + _IS_LEAF) == 1

    def _nkeys(self, acc, node: int) -> int:
        return self.read_word(acc, node + _NKEYS)

    def _set_nkeys(self, acc, node: int, n: int) -> None:
        self.write_word(acc, node + _NKEYS, n)

    def _key(self, acc, node: int, i: int) -> int:
        return self.read_word(acc, node + _KEYS + 8 * i)

    def _set_key(self, acc, node: int, i: int, key: int) -> None:
        self.write_word(acc, node + _KEYS + 8 * i, key)

    def _ptr(self, acc, node: int, i: int) -> int:
        return self.read_word(acc, node + _PTRS + 8 * i)

    def _set_ptr(self, acc, node: int, i: int, ptr: int) -> None:
        self.write_word(acc, node + _PTRS + 8 * i, ptr)

    def _new_node(self, acc, is_leaf: bool) -> int:
        node = acc.alloc(NODE_SIZE)
        self.write_word(acc, node + _IS_LEAF, 1 if is_leaf else 0)
        self._set_nkeys(acc, node, 0)
        self.write_word(acc, node + _NEXT, 0)
        return node

    # ------------------------------------------------------------------
    def setup(self, pm: PersistentMemory) -> None:
        """Allocate per-partition roots and pre-populate half the keys."""
        self._heap = pm.heap
        acc = SetupAccessor(pm)
        self._roots_base = pm.heap.alloc(MAX_PARTITIONS * 8)
        for part in range(MAX_PARTITIONS):
            root = self._new_node(acc, is_leaf=True)
            self.write_word(acc, self._root_addr(part), root)
        self._resident = [set() for _ in range(MAX_PARTITIONS)]
        rng = thread_rng(self.seed, 0xB7EE)
        for part in range(MAX_PARTITIONS):
            for key in rng.sample(
                range(self.keys_per_partition), self.keys_per_partition // 2
            ):
                self.insert(acc, part, key, self.make_value(rng, key))
                self._resident[part].add(key)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One insert-or-remove transaction per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        resident = set(self._resident[part])
        for txn in range(num_txns):
            key = rng.randrange(self.keys_per_partition)
            with api.transaction():
                if key in resident:
                    self.delete(api, part, key)
                    resident.discard(key)
                else:
                    self.insert(api, part, key, self.make_value(rng, txn))
                    resident.add(key)
            yield

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _find_leaf(self, acc, part: int, key: int) -> tuple:
        """Descend to the leaf for ``key``; returns (leaf, path).

        ``path`` is a list of (node, child_index) from the root down.
        """
        path = []
        node = self.read_word(acc, self._root_addr(part))
        while not self._is_leaf(acc, node):
            n = self._nkeys(acc, node)
            i = 0
            while i < n and key >= self._key(acc, node, i):
                acc.compute(SEARCH_COMPUTE)
                i += 1
            path.append((node, i))
            node = self._ptr(acc, node, i)
        return node, path

    def _leaf_pos(self, acc, leaf: int, key: int) -> tuple:
        """Position of ``key`` in ``leaf``; returns (index, found)."""
        n = self._nkeys(acc, leaf)
        for i in range(n):
            acc.compute(SEARCH_COMPUTE)
            leaf_key = self._key(acc, leaf, i)
            if leaf_key == key:
                return i, True
            if leaf_key > key:
                return i, False
        return n, False

    def lookup(self, acc, part: int, key: int) -> bytes:
        """Value stored for ``key`` or b'' (for tests)."""
        leaf, _path = self._find_leaf(acc, part, key)
        pos, found = self._leaf_pos(acc, leaf, key)
        if not found:
            return b""
        return acc.read(self._ptr(acc, leaf, pos), self.value_size)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, acc, part: int, key: int, value: bytes) -> bool:
        """Insert ``key``; returns False if already present."""
        leaf, path = self._find_leaf(acc, part, key)
        pos, found = self._leaf_pos(acc, leaf, key)
        if found:
            return False
        block = acc.alloc(self.value_size)
        acc.write(block, value)
        self._leaf_insert_at(acc, leaf, pos, key, block)
        if self._nkeys(acc, leaf) > ORDER:
            self._split_leaf(acc, part, leaf, path)
        return True

    def _leaf_insert_at(self, acc, leaf: int, pos: int, key: int, ptr: int) -> None:
        n = self._nkeys(acc, leaf)
        for i in range(n, pos, -1):
            self._set_key(acc, leaf, i, self._key(acc, leaf, i - 1))
            self._set_ptr(acc, leaf, i, self._ptr(acc, leaf, i - 1))
        self._set_key(acc, leaf, pos, key)
        self._set_ptr(acc, leaf, pos, ptr)
        self._set_nkeys(acc, leaf, n + 1)

    def _split_leaf(self, acc, part: int, leaf: int, path: list) -> None:
        n = self._nkeys(acc, leaf)
        half = n // 2
        new = self._new_node(acc, is_leaf=True)
        for i in range(half, n):
            self._set_key(acc, new, i - half, self._key(acc, leaf, i))
            self._set_ptr(acc, new, i - half, self._ptr(acc, leaf, i))
        self._set_nkeys(acc, new, n - half)
        self._set_nkeys(acc, leaf, half)
        self.write_word(acc, new + _NEXT, self.read_word(acc, leaf + _NEXT))
        self.write_word(acc, leaf + _NEXT, new)
        separator = self._key(acc, new, 0)
        self._insert_into_parent(acc, part, leaf, separator, new, path)

    def _insert_into_parent(
        self, acc, part: int, left: int, separator: int, right: int, path: list
    ) -> None:
        if not path:
            root = self._new_node(acc, is_leaf=False)
            self._set_nkeys(acc, root, 1)
            self._set_key(acc, root, 0, separator)
            self._set_ptr(acc, root, 0, left)
            self._set_ptr(acc, root, 1, right)
            self.write_word(acc, self._root_addr(part), root)
            return
        parent, index = path[-1]
        n = self._nkeys(acc, parent)
        for i in range(n, index, -1):
            self._set_key(acc, parent, i, self._key(acc, parent, i - 1))
            self._set_ptr(acc, parent, i + 1, self._ptr(acc, parent, i))
        self._set_key(acc, parent, index, separator)
        self._set_ptr(acc, parent, index + 1, right)
        self._set_nkeys(acc, parent, n + 1)
        if n + 1 > ORDER:
            self._split_internal(acc, part, parent, path[:-1])

    def _split_internal(self, acc, part: int, node: int, path: list) -> None:
        n = self._nkeys(acc, node)
        mid = n // 2
        up_key = self._key(acc, node, mid)
        new = self._new_node(acc, is_leaf=False)
        for i in range(mid + 1, n):
            self._set_key(acc, new, i - mid - 1, self._key(acc, node, i))
        for i in range(mid + 1, n + 1):
            self._set_ptr(acc, new, i - mid - 1, self._ptr(acc, node, i))
        self._set_nkeys(acc, new, n - mid - 1)
        self._set_nkeys(acc, node, mid)
        self._insert_into_parent(acc, part, node, up_key, new, path)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, acc, part: int, key: int) -> bool:
        """Remove ``key``; returns False if absent."""
        leaf, path = self._find_leaf(acc, part, key)
        pos, found = self._leaf_pos(acc, leaf, key)
        if not found:
            return False
        acc.free(self._ptr(acc, leaf, pos), self.value_size)
        self._remove_at(acc, leaf, pos, leaf_node=True)
        root = self.read_word(acc, self._root_addr(part))
        if leaf != root and self._nkeys(acc, leaf) < MIN_KEYS:
            self._rebalance(acc, part, leaf, path)
        return True

    def _remove_at(self, acc, node: int, pos: int, leaf_node: bool) -> None:
        n = self._nkeys(acc, node)
        for i in range(pos, n - 1):
            self._set_key(acc, node, i, self._key(acc, node, i + 1))
        if leaf_node:
            for i in range(pos, n - 1):
                self._set_ptr(acc, node, i, self._ptr(acc, node, i + 1))
        else:
            for i in range(pos + 1, n):
                self._set_ptr(acc, node, i, self._ptr(acc, node, i + 1))
        self._set_nkeys(acc, node, n - 1)

    def _rebalance(self, acc, part: int, node: int, path: list) -> None:
        parent, index = path[-1]
        leaf_node = self._is_leaf(acc, node)
        # Try borrowing from the left sibling.
        if index > 0:
            left = self._ptr(acc, parent, index - 1)
            if self._nkeys(acc, left) > MIN_KEYS:
                self._borrow_from_left(acc, parent, index, left, node, leaf_node)
                return
        # Try borrowing from the right sibling.
        nparent = self._nkeys(acc, parent)
        if index < nparent:
            right = self._ptr(acc, parent, index + 1)
            if self._nkeys(acc, right) > MIN_KEYS:
                self._borrow_from_right(acc, parent, index, node, right, leaf_node)
                return
        # Merge with a sibling.
        if index > 0:
            left = self._ptr(acc, parent, index - 1)
            self._merge(acc, parent, index - 1, left, node, leaf_node)
        else:
            right = self._ptr(acc, parent, index + 1)
            self._merge(acc, parent, index, node, right, leaf_node)
        root = self.read_word(acc, self._root_addr(part))
        if parent == root:
            if self._nkeys(acc, parent) == 0:
                new_root = self._ptr(acc, parent, 0)
                self.write_word(acc, self._root_addr(part), new_root)
                acc.free(parent, NODE_SIZE)
        elif self._nkeys(acc, parent) < MIN_KEYS:
            self._rebalance(acc, part, parent, path[:-1])

    def _borrow_from_left(
        self, acc, parent: int, index: int, left: int, node: int, leaf_node: bool
    ) -> None:
        ln = self._nkeys(acc, left)
        n = self._nkeys(acc, node)
        # Shift node right by one.
        for i in range(n, 0, -1):
            self._set_key(acc, node, i, self._key(acc, node, i - 1))
        limit = n if leaf_node else n + 1
        for i in range(limit, 0, -1):
            self._set_ptr(acc, node, i, self._ptr(acc, node, i - 1))
        if leaf_node:
            self._set_key(acc, node, 0, self._key(acc, left, ln - 1))
            self._set_ptr(acc, node, 0, self._ptr(acc, left, ln - 1))
            self._set_key(acc, parent, index - 1, self._key(acc, node, 0))
        else:
            self._set_key(acc, node, 0, self._key(acc, parent, index - 1))
            self._set_ptr(acc, node, 0, self._ptr(acc, left, ln))
            self._set_key(acc, parent, index - 1, self._key(acc, left, ln - 1))
        self._set_nkeys(acc, left, ln - 1)
        self._set_nkeys(acc, node, n + 1)

    def _borrow_from_right(
        self, acc, parent: int, index: int, node: int, right: int, leaf_node: bool
    ) -> None:
        n = self._nkeys(acc, node)
        if leaf_node:
            self._set_key(acc, node, n, self._key(acc, right, 0))
            self._set_ptr(acc, node, n, self._ptr(acc, right, 0))
            self._remove_at(acc, right, 0, leaf_node=True)
            self._set_key(acc, parent, index, self._key(acc, right, 0))
        else:
            rn = self._nkeys(acc, right)
            self._set_key(acc, node, n, self._key(acc, parent, index))
            self._set_ptr(acc, node, n + 1, self._ptr(acc, right, 0))
            self._set_key(acc, parent, index, self._key(acc, right, 0))
            for i in range(rn - 1):
                self._set_key(acc, right, i, self._key(acc, right, i + 1))
            for i in range(rn):
                self._set_ptr(acc, right, i, self._ptr(acc, right, i + 1))
            self._set_nkeys(acc, right, rn - 1)
        self._set_nkeys(acc, node, n + 1)

    def _merge(
        self, acc, parent: int, sep_index: int, left: int, right: int, leaf_node: bool
    ) -> None:
        ln = self._nkeys(acc, left)
        rn = self._nkeys(acc, right)
        if leaf_node:
            for i in range(rn):
                self._set_key(acc, left, ln + i, self._key(acc, right, i))
                self._set_ptr(acc, left, ln + i, self._ptr(acc, right, i))
            self._set_nkeys(acc, left, ln + rn)
            self.write_word(acc, left + _NEXT, self.read_word(acc, right + _NEXT))
        else:
            self._set_key(acc, left, ln, self._key(acc, parent, sep_index))
            for i in range(rn):
                self._set_key(acc, left, ln + 1 + i, self._key(acc, right, i))
            for i in range(rn + 1):
                self._set_ptr(acc, left, ln + 1 + i, self._ptr(acc, right, i))
            self._set_nkeys(acc, left, ln + rn + 1)
        self._remove_at(acc, parent, sep_index, leaf_node=False)
        acc.free(right, NODE_SIZE)

    # ------------------------------------------------------------------
    # Verification helpers (tests)
    # ------------------------------------------------------------------
    def all_keys(self, acc, part: int) -> list:
        """All keys in order, walking the leaf chain."""
        node = self.read_word(acc, self._root_addr(part))
        while not self._is_leaf(acc, node):
            node = self._ptr(acc, node, 0)
        keys = []
        while node != 0:
            for i in range(self._nkeys(acc, node)):
                keys.append(self._key(acc, node, i))
            node = self.read_word(acc, node + _NEXT)
        return keys

    def check_invariants(self, acc, part: int) -> None:
        """Validate sortedness and occupancy bounds."""
        keys = self.all_keys(acc, part)
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(keys) == len(set(keys)), "duplicate keys"
        root = self.read_word(acc, self._root_addr(part))
        self._check_node_bounds(acc, root, is_root=True)

    def _check_node_bounds(self, acc, node: int, is_root: bool) -> None:
        n = self._nkeys(acc, node)
        assert n <= ORDER, "node overflow"
        if not is_root:
            assert n >= (1 if self._is_leaf(acc, node) else 1), "node underflow"
        if not self._is_leaf(acc, node):
            for i in range(n + 1):
                self._check_node_bounds(acc, self._ptr(acc, node, i), is_root=False)
