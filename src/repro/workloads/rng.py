"""Deterministic random streams for workloads.

Every workload thread gets its own :class:`random.Random` seeded from the
workload seed and thread ID, so runs are reproducible and threads are
decorrelated.  Zipfian sampling (used by the YCSB-like kernel) is
implemented with the classic rejection-free inverse-CDF table.
"""

from __future__ import annotations

import random  # lint: allow(wall-clock) every Random here is explicitly seeded


def thread_rng(seed: int, tid: int) -> random.Random:
    """Deterministic per-thread RNG."""
    return random.Random((seed * 0x9E3779B1 + tid * 0x85EBCA77) & 0xFFFFFFFF)


class ZipfGenerator:
    """Zipfian integer sampler over ``[0, n)`` with exponent ``theta``."""

    def __init__(self, n: int, theta: float = 0.99, rng: random.Random = None) -> None:
        if n <= 0:
            raise ValueError("population must be positive")
        self._rng = rng or random.Random(0)
        self._n = n
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)

    def next(self) -> int:
        """Draw one sample (0 is the most popular)."""
        return self.rank(self._rng.random())

    def rank(self, point: float) -> int:
        """Rank whose CDF interval contains ``point`` (rng-free inverse
        CDF) — lets an external uniform draw (e.g. a traffic generator's
        ``key_u``) be mapped through this distribution deterministically."""
        lo, hi = 0, self._n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        return lo
