"""SPS microbenchmark (Table III: "SPS").

"Random swaps between entries in a 1 GB vector of values."  Each
transaction picks two distinct slots in the thread's partition of a
persistent vector, reads both, and writes both back exchanged — two
persistent updates per transaction with almost no surrounding
computation, making SPS the most logging-bound microbenchmark.
"""

from __future__ import annotations

from typing import Iterator

from ..txn.runtime import PersistentMemory, ThreadAPI
from .base import SetupAccessor, Workload
from .rng import thread_rng

MAX_PARTITIONS = 8
INDEX_COMPUTE = 6  # instructions to form the two random indices


class SPSWorkload(Workload):
    """Random swaps in a persistent vector."""

    name = "sps"
    trace_compilable = True
    paper_footprint = "1 GB"
    description = "Random swaps between entries in a vector of values."

    def __init__(
        self,
        seed: int = 42,
        value_kind: str = "int",
        entries_per_partition: int = 0,
    ) -> None:
        super().__init__(seed, value_kind)
        if entries_per_partition <= 0:
            # Default to a footprint well beyond the LLC; string entries
            # are 12x larger, so fewer of them reach the same regime.
            entries_per_partition = 131072 if self.value_kind == "int" else 16384
        self.entries_per_partition = entries_per_partition
        self._base = 0

    @property
    def entry_size(self) -> int:
        """Bytes per vector entry."""
        return self.value_size

    def entry_addr(self, part: int, index: int) -> int:
        """Address of entry ``index`` in partition ``part``."""
        offset = (part * self.entries_per_partition + index) * self.entry_size
        return self._base + offset

    # ------------------------------------------------------------------
    def setup(self, pm: PersistentMemory) -> None:
        """Allocate the vector and fill it with distinct tags."""
        acc = SetupAccessor(pm)
        total = MAX_PARTITIONS * self.entries_per_partition
        entry_size = self.entry_size
        self._base = pm.heap.alloc(total * entry_size)
        rng = thread_rng(self.seed, 0x5B5)
        # The fill is strictly sequential, so the address is advanced by
        # a running counter instead of a million entry_addr() calls
        # (same addresses, ~2 fewer frames per entry).
        write = acc.write
        make_value = self.make_value
        addr = self._base
        for _part in range(MAX_PARTITIONS):
            for index in range(self.entries_per_partition):
                write(addr, make_value(rng, index))
                addr += entry_size

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One swap transaction per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        for _txn in range(num_txns):
            i = rng.randrange(self.entries_per_partition)
            j = rng.randrange(self.entries_per_partition)
            while j == i:
                j = rng.randrange(self.entries_per_partition)
            with api.transaction():
                api.compute(INDEX_COMPUTE)
                addr_i = self.entry_addr(part, i)
                addr_j = self.entry_addr(part, j)
                value_i = api.read(addr_i, self.entry_size)
                value_j = api.read(addr_j, self.entry_size)
                api.write(addr_i, value_j)
                api.write(addr_j, value_i)
            yield
