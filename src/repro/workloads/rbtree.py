"""Red-black tree microbenchmark (Table III: "RBTree").

"Searches for a value in a red-black tree.  Insert if absent, remove if
found."  The tree is a full CLRS red-black tree living in persistent
memory: every node field access is a persistent-memory load, every
mutation (link, recolor, rotation) a persistent store inside the
transaction — so rebalancing directly exercises the logging machinery
with scattered small writes.

Node layout: ``key(8) | left(8) | right(8) | parent(8) | color(8) |
value(value_size)``.  The null pointer is address 0 and is black by
convention.  Each thread owns an independent tree (per-thread
partitioning, as in the paper's Figure 4).
"""

from __future__ import annotations

from typing import Iterator

from ..txn.runtime import PersistentMemory, ThreadAPI
from .base import SetupAccessor, Workload
from .rng import thread_rng

MAX_PARTITIONS = 8
RED = 1
BLACK = 0

_KEY = 0
_LEFT = 8
_RIGHT = 16
_PARENT = 24
_COLOR = 32
_VALUE = 40

SEARCH_COMPUTE = 4  # instructions per comparison while descending


class RBTreeWorkload(Workload):
    """Insert-if-absent / remove-if-found over a red-black tree."""

    name = "rbtree"
    trace_compilable = True
    paper_footprint = "256 MB"
    description = (
        "Searches for a value in a red-black tree. "
        "Insert if absent, remove if found."
    )

    def __init__(
        self,
        seed: int = 42,
        value_kind: str = "int",
        keys_per_partition: int = 16384,
    ) -> None:
        super().__init__(seed, value_kind)
        self.keys_per_partition = keys_per_partition
        self._roots_base = 0
        self._heap = None
        self._resident: list[set[int]] = []

    @property
    def node_size(self) -> int:
        """Bytes per tree node."""
        return _VALUE + self.value_size

    # ------------------------------------------------------------------
    # Field accessors
    # ------------------------------------------------------------------
    def _root_addr(self, part: int) -> int:
        return self._roots_base + part * 8

    # read_word/write_word are inlined here: node-field reads are the
    # single hottest call in tree setup (millions per build) and the
    # extra helper frame is measurable on large sweeps.
    def _get(self, acc, node: int, field: int) -> int:
        return int.from_bytes(acc.read(node + field, 8), "little")

    def _set(self, acc, node: int, field: int, value: int) -> None:
        acc.write(node + field, int(value).to_bytes(8, "little"))

    def _color(self, acc, node: int) -> int:
        if node == 0:
            return BLACK
        return self._get(acc, node, _COLOR)

    # ------------------------------------------------------------------
    def setup(self, pm: PersistentMemory) -> None:
        """Allocate root pointers and pre-populate half of each tree."""
        self._heap = pm.heap
        acc = SetupAccessor(pm)
        self._roots_base = pm.heap.alloc(MAX_PARTITIONS * 8)
        acc.write(self._roots_base, bytes(MAX_PARTITIONS * 8))
        self._resident = [set() for _ in range(MAX_PARTITIONS)]
        rng = thread_rng(self.seed, 0x5B7)
        for part in range(MAX_PARTITIONS):
            for key in rng.sample(
                range(self.keys_per_partition), self.keys_per_partition // 2
            ):
                self.insert(acc, part, key, self.make_value(rng, key))
                self._resident[part].add(key)

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        """One insert-or-remove transaction per iteration."""
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        resident = set(self._resident[part])
        for txn in range(num_txns):
            key = rng.randrange(self.keys_per_partition)
            with api.transaction():
                if key in resident:
                    self.delete(api, part, key)
                    resident.discard(key)
                else:
                    self.insert(api, part, key, self.make_value(rng, txn))
                    resident.add(key)
            yield

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def find(self, acc, part: int, key: int) -> int:
        """Return the node address holding ``key`` or 0."""
        node = self.read_word(acc, self._root_addr(part))
        while node != 0:
            acc.compute(SEARCH_COMPUTE)
            node_key = self._get(acc, node, _KEY)
            if key == node_key:
                return node
            node = self._get(acc, node, _LEFT if key < node_key else _RIGHT)
        return 0

    # ------------------------------------------------------------------
    # Rotations
    # ------------------------------------------------------------------
    def _rotate_left(self, acc, part: int, x: int) -> None:
        y = self._get(acc, x, _RIGHT)
        yl = self._get(acc, y, _LEFT)
        self._set(acc, x, _RIGHT, yl)
        if yl != 0:
            self._set(acc, yl, _PARENT, x)
        xp = self._get(acc, x, _PARENT)
        self._set(acc, y, _PARENT, xp)
        if xp == 0:
            self.write_word(acc, self._root_addr(part), y)
        elif x == self._get(acc, xp, _LEFT):
            self._set(acc, xp, _LEFT, y)
        else:
            self._set(acc, xp, _RIGHT, y)
        self._set(acc, y, _LEFT, x)
        self._set(acc, x, _PARENT, y)

    def _rotate_right(self, acc, part: int, x: int) -> None:
        y = self._get(acc, x, _LEFT)
        yr = self._get(acc, y, _RIGHT)
        self._set(acc, x, _LEFT, yr)
        if yr != 0:
            self._set(acc, yr, _PARENT, x)
        xp = self._get(acc, x, _PARENT)
        self._set(acc, y, _PARENT, xp)
        if xp == 0:
            self.write_word(acc, self._root_addr(part), y)
        elif x == self._get(acc, xp, _RIGHT):
            self._set(acc, xp, _RIGHT, y)
        else:
            self._set(acc, xp, _LEFT, y)
        self._set(acc, y, _RIGHT, x)
        self._set(acc, x, _PARENT, y)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, acc, part: int, key: int, value: bytes) -> bool:
        """Insert ``key``; returns False if it was already present."""
        parent = 0
        node = self.read_word(acc, self._root_addr(part))
        while node != 0:
            acc.compute(SEARCH_COMPUTE)
            node_key = self._get(acc, node, _KEY)
            if key == node_key:
                return False
            parent = node
            node = self._get(acc, node, _LEFT if key < node_key else _RIGHT)
        z = acc.alloc(self.node_size)
        self._set(acc, z, _KEY, key)
        self._set(acc, z, _LEFT, 0)
        self._set(acc, z, _RIGHT, 0)
        self._set(acc, z, _PARENT, parent)
        self._set(acc, z, _COLOR, RED)
        acc.write(z + _VALUE, value)
        if parent == 0:
            self.write_word(acc, self._root_addr(part), z)
        elif key < self._get(acc, parent, _KEY):
            self._set(acc, parent, _LEFT, z)
        else:
            self._set(acc, parent, _RIGHT, z)
        self._insert_fixup(acc, part, z)
        return True

    def _insert_fixup(self, acc, part: int, z: int) -> None:
        while True:
            zp = self._get(acc, z, _PARENT)
            if zp == 0 or self._color(acc, zp) == BLACK:
                break
            zpp = self._get(acc, zp, _PARENT)
            if zp == self._get(acc, zpp, _LEFT):
                uncle = self._get(acc, zpp, _RIGHT)
                if self._color(acc, uncle) == RED:
                    self._set(acc, zp, _COLOR, BLACK)
                    self._set(acc, uncle, _COLOR, BLACK)
                    self._set(acc, zpp, _COLOR, RED)
                    z = zpp
                else:
                    if z == self._get(acc, zp, _RIGHT):
                        z = zp
                        self._rotate_left(acc, part, z)
                        zp = self._get(acc, z, _PARENT)
                        zpp = self._get(acc, zp, _PARENT)
                    self._set(acc, zp, _COLOR, BLACK)
                    self._set(acc, zpp, _COLOR, RED)
                    self._rotate_right(acc, part, zpp)
            else:
                uncle = self._get(acc, zpp, _LEFT)
                if self._color(acc, uncle) == RED:
                    self._set(acc, zp, _COLOR, BLACK)
                    self._set(acc, uncle, _COLOR, BLACK)
                    self._set(acc, zpp, _COLOR, RED)
                    z = zpp
                else:
                    if z == self._get(acc, zp, _LEFT):
                        z = zp
                        self._rotate_right(acc, part, z)
                        zp = self._get(acc, z, _PARENT)
                        zpp = self._get(acc, zp, _PARENT)
                    self._set(acc, zp, _COLOR, BLACK)
                    self._set(acc, zpp, _COLOR, RED)
                    self._rotate_left(acc, part, zpp)
        root = self.read_word(acc, self._root_addr(part))
        if self._color(acc, root) != BLACK:
            self._set(acc, root, _COLOR, BLACK)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def _transplant(self, acc, part: int, u: int, v: int) -> None:
        up = self._get(acc, u, _PARENT)
        if up == 0:
            self.write_word(acc, self._root_addr(part), v)
        elif u == self._get(acc, up, _LEFT):
            self._set(acc, up, _LEFT, v)
        else:
            self._set(acc, up, _RIGHT, v)
        if v != 0:
            self._set(acc, v, _PARENT, up)

    def _minimum(self, acc, node: int) -> int:
        while True:
            left = self._get(acc, node, _LEFT)
            if left == 0:
                return node
            node = left

    def delete(self, acc, part: int, key: int) -> bool:
        """Remove ``key``; returns False if absent."""
        z = self.find(acc, part, key)
        if z == 0:
            return False
        y = z
        y_color = self._color(acc, y)
        if self._get(acc, z, _LEFT) == 0:
            x = self._get(acc, z, _RIGHT)
            x_parent = self._get(acc, z, _PARENT)
            self._transplant(acc, part, z, x)
        elif self._get(acc, z, _RIGHT) == 0:
            x = self._get(acc, z, _LEFT)
            x_parent = self._get(acc, z, _PARENT)
            self._transplant(acc, part, z, x)
        else:
            y = self._minimum(acc, self._get(acc, z, _RIGHT))
            y_color = self._color(acc, y)
            x = self._get(acc, y, _RIGHT)
            if self._get(acc, y, _PARENT) == z:
                x_parent = y
                if x != 0:
                    self._set(acc, x, _PARENT, y)
            else:
                x_parent = self._get(acc, y, _PARENT)
                self._transplant(acc, part, y, x)
                zr = self._get(acc, z, _RIGHT)
                self._set(acc, y, _RIGHT, zr)
                self._set(acc, zr, _PARENT, y)
            self._transplant(acc, part, z, y)
            zl = self._get(acc, z, _LEFT)
            self._set(acc, y, _LEFT, zl)
            self._set(acc, zl, _PARENT, y)
            self._set(acc, y, _COLOR, self._color(acc, z))
        if y_color == BLACK:
            self._delete_fixup(acc, part, x, x_parent)
        acc.free(z, self.node_size)
        return True

    def _delete_fixup(self, acc, part: int, x: int, x_parent: int) -> None:
        while x != self.read_word(acc, self._root_addr(part)) and self._color(acc, x) == BLACK:
            if x_parent == 0:
                break
            if x == self._get(acc, x_parent, _LEFT):
                w = self._get(acc, x_parent, _RIGHT)
                if self._color(acc, w) == RED:
                    self._set(acc, w, _COLOR, BLACK)
                    self._set(acc, x_parent, _COLOR, RED)
                    self._rotate_left(acc, part, x_parent)
                    w = self._get(acc, x_parent, _RIGHT)
                wl = self._get(acc, w, _LEFT)
                wr = self._get(acc, w, _RIGHT)
                if self._color(acc, wl) == BLACK and self._color(acc, wr) == BLACK:
                    self._set(acc, w, _COLOR, RED)
                    x = x_parent
                    x_parent = self._get(acc, x, _PARENT)
                else:
                    if self._color(acc, wr) == BLACK:
                        if wl != 0:
                            self._set(acc, wl, _COLOR, BLACK)
                        self._set(acc, w, _COLOR, RED)
                        self._rotate_right(acc, part, w)
                        w = self._get(acc, x_parent, _RIGHT)
                        wr = self._get(acc, w, _RIGHT)
                    self._set(acc, w, _COLOR, self._color(acc, x_parent))
                    self._set(acc, x_parent, _COLOR, BLACK)
                    if wr != 0:
                        self._set(acc, wr, _COLOR, BLACK)
                    self._rotate_left(acc, part, x_parent)
                    x = self.read_word(acc, self._root_addr(part))
                    x_parent = 0
            else:
                w = self._get(acc, x_parent, _LEFT)
                if self._color(acc, w) == RED:
                    self._set(acc, w, _COLOR, BLACK)
                    self._set(acc, x_parent, _COLOR, RED)
                    self._rotate_right(acc, part, x_parent)
                    w = self._get(acc, x_parent, _LEFT)
                wl = self._get(acc, w, _LEFT)
                wr = self._get(acc, w, _RIGHT)
                if self._color(acc, wr) == BLACK and self._color(acc, wl) == BLACK:
                    self._set(acc, w, _COLOR, RED)
                    x = x_parent
                    x_parent = self._get(acc, x, _PARENT)
                else:
                    if self._color(acc, wl) == BLACK:
                        if wr != 0:
                            self._set(acc, wr, _COLOR, BLACK)
                        self._set(acc, w, _COLOR, RED)
                        self._rotate_left(acc, part, w)
                        w = self._get(acc, x_parent, _LEFT)
                        wl = self._get(acc, w, _LEFT)
                    self._set(acc, w, _COLOR, self._color(acc, x_parent))
                    self._set(acc, x_parent, _COLOR, BLACK)
                    if wl != 0:
                        self._set(acc, wl, _COLOR, BLACK)
                    self._rotate_right(acc, part, x_parent)
                    x = self.read_word(acc, self._root_addr(part))
                    x_parent = 0
        if x != 0:
            self._set(acc, x, _COLOR, BLACK)

    # ------------------------------------------------------------------
    # Verification helpers (tests)
    # ------------------------------------------------------------------
    def inorder_keys(self, acc, part: int) -> list:
        """All keys in sorted order (iterative traversal)."""
        keys = []
        stack = []
        node = self.read_word(acc, self._root_addr(part))
        while node != 0 or stack:
            while node != 0:
                stack.append(node)
                node = self._get(acc, node, _LEFT)
            node = stack.pop()
            keys.append(self._get(acc, node, _KEY))
            node = self._get(acc, node, _RIGHT)
        return keys

    def check_invariants(self, acc, part: int) -> int:
        """Validate red-black invariants; returns the black height.

        Raises AssertionError on violation (root is black, no red node
        has a red child, equal black height on every path).
        """
        root = self.read_word(acc, self._root_addr(part))
        if root == 0:
            return 0
        assert self._color(acc, root) == BLACK, "root must be black"
        return self._check_node(acc, root)

    def _check_node(self, acc, node: int) -> int:
        if node == 0:
            return 1
        color = self._color(acc, node)
        left = self._get(acc, node, _LEFT)
        right = self._get(acc, node, _RIGHT)
        if color == RED:
            assert self._color(acc, left) == BLACK, "red node with red left child"
            assert self._color(acc, right) == BLACK, "red node with red right child"
        lh = self._check_node(acc, left)
        rh = self._check_node(acc, right)
        assert lh == rh, "unequal black heights"
        return lh + (1 if color == BLACK else 0)
