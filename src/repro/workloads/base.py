"""Workload protocol and accessors.

A workload builds its initial persistent state in :meth:`Workload.setup`
(untimed, via :class:`SetupAccessor`) and then runs timed transactions
through per-thread generators (:meth:`Workload.thread_body`), which the
harness interleaves across cores in core-clock order.

Structure code is written once against the *accessor* protocol —
``read(addr, size)``, ``write(addr, data)``, ``compute(n)`` and
``transaction()`` — and works both in the untimed setup phase and in the
timed run phase (where the accessor is a
:class:`~repro.txn.runtime.ThreadAPI`).
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..errors import AddressError, WorkloadError
from ..txn.runtime import PersistentMemory, ThreadAPI


class SetupAccessor:
    """Untimed accessor used while building initial workload state.

    Setup issues millions of functional accesses for paper-scale
    footprints, so ``read``/``write`` go straight to the NVRAM device
    (bound at construction) instead of through the
    :class:`PersistentMemory` facade — one call frame fewer each.
    ``read`` is a closure over the device image returning a (mutable,
    caller-owned) ``bytearray`` slice: setup readers only decode or
    compare the result, and skipping the immutable-``bytes`` wrap of
    :meth:`~repro.sim.nvram.NVRAM.peek` halves the per-read copy cost.
    """

    def __init__(self, pm: PersistentMemory) -> None:
        self._pm = pm
        nvram = pm.machine.nvram
        image = nvram.image
        size = len(image)

        def read(addr: int, length: int) -> bytearray:
            end = addr + length
            if addr < 0 or length < 0 or end > size:
                raise AddressError(
                    f"setup read out of range: addr={addr:#x} size={length} "
                    f"limit={size:#x}"
                )
            return image[addr:end]

        self.read = read
        self.write = nvram.poke

    def compute(self, count: int) -> None:
        """No-op during setup."""

    def alloc(self, size: int) -> int:
        """Allocate from the shared heap (setup has no txn constraints)."""
        return self._pm.heap.alloc(size)

    def free(self, addr: int, size: int) -> None:
        """Return a block to the shared heap immediately."""
        self._pm.heap.free(addr, size)

    @contextmanager
    def transaction(self):
        """No-op transaction context during setup."""
        yield self


@dataclass
class WorkloadResult:
    """What a finished run exposes to tests (beyond machine stats)."""

    transactions: int
    operations: dict


class Workload(abc.ABC):
    """One benchmark: persistent state plus a per-thread transaction mix."""

    #: paper name (e.g. ``"hash"``); subclasses override.
    name: str = "abstract"
    #: memory footprint reported in Table III (informational).
    paper_footprint: str = "-"
    #: one-line description for Table III.
    description: str = ""
    #: True when thread bodies are partitioned and deterministic per
    #: ``(seed, tid)`` — touching only their own partition through the
    #: accessor protocol, never reading uninitialised memory — so the
    #: trace-compilation engine (:mod:`repro.sim.replay`) may record each
    #: thread once and replay the stream under every design.  Workloads
    #: with cross-thread coupling or direct heap/NVRAM access must leave
    #: this False and run interpreted.
    trace_compilable: bool = False
    #: True when the workload's transactions are client-request shaped
    #: and it implements :meth:`serve_request`, so the service layer
    #: (:mod:`repro.sched`) can drive it from an open-loop traffic
    #: generator instead of per-thread closed-loop generators.
    request_shaped: bool = False

    def __init__(self, seed: int = 42, value_kind: str = "int") -> None:
        if value_kind not in ("int", "string"):
            raise ValueError(f"value_kind must be 'int' or 'string', not {value_kind!r}")
        self.seed = seed
        self.value_kind = value_kind

    @property
    def value_size(self) -> int:
        """Element payload size: one word for ints, multi-line for strings."""
        return 8 if self.value_kind == "int" else 96

    @abc.abstractmethod
    def setup(self, pm: PersistentMemory) -> None:
        """Allocate and initialise persistent state (untimed)."""

    def attach(self, pm: PersistentMemory) -> None:
        """Re-bind to a fresh machine whose NVRAM image was restored from
        a prepared snapshot (see :func:`repro.harness.runner.prepare_workload`)."""
        self._heap = pm.heap

    def reset_run_state(self) -> None:
        """Reset volatile per-run state to the post-setup baseline.

        A prepared workload instance is run many times — once per sweep
        cell, plus once by the trace compiler.  Anything host-side that
        thread bodies mutate (append cursors, free-slot rotors) must be
        re-derivable from ``(seed, tid)`` alone, or the second run sees
        the first run's leftovers and the ``trace_compilable`` contract
        (identical stream per run) silently breaks.  Subclasses with such
        state override this; the harness calls it before every run and
        before trace recording.

        The contract extends to **checkpointable** run state for the
        steppable-shard scheduler: :meth:`run_state` captures the same
        volatile state as an immutable value and :meth:`restore_run_state`
        reinstates it, so N shard machines sharing one prepared workload
        instance can interleave stepping without leaking cursors across
        shards (each shard swaps its own checkpoint in around every step
        window).  The triple must agree: ``reset_run_state()`` followed by
        ``run_state()`` is the baseline checkpoint, and
        ``restore_run_state(run_state())`` is an identity.
        """

    def run_state(self) -> tuple:
        """Checkpoint of the volatile per-run state (see
        :meth:`reset_run_state`).  Must return an immutable, equality-
        comparable value; subclasses with volatile state override this
        together with :meth:`restore_run_state`.  The default is the
        empty checkpoint for stateless workloads."""
        return ()

    def restore_run_state(self, state: tuple) -> None:
        """Reinstate a checkpoint captured by :meth:`run_state`."""
        if state != ():
            raise WorkloadError(
                f"{type(self).__name__} has no volatile run state to "
                f"restore, got checkpoint {state!r}"
            )

    def serve_request(self, api: ThreadAPI, tid: int, request) -> None:
        """Execute one client request's operations inside the caller's
        transaction (request-shaped workloads only).

        ``request`` carries uniform draws (``key_u``, ``op_u``) that the
        workload maps through its own key-popularity and operation-mix
        distributions, so the traffic generator stays
        workload-agnostic.  The caller (a :class:`repro.sched.shard.
        ShardMachine` serve thread) owns the surrounding transaction and
        request batching."""
        raise WorkloadError(
            f"{type(self).__name__} is not request-shaped; it cannot be "
            "driven by the open-loop service layer"
        )

    def identity_key(self) -> tuple:
        """Stable identity of this workload's configuration.

        Two workload instances with equal keys build identical persistent
        state and issue identical transaction streams, so prepared
        snapshots and cached sweep results may be shared between them.
        The key covers the concrete class plus every public (non-derived)
        attribute — derived run state uses underscored names by
        convention.  Used by the prepared-state check in
        :func:`repro.harness.runner.run_workload` (which must accept a
        pickle-round-tripped workload in a worker process) and by the
        sweep result cache.
        """
        public = tuple(
            (name, repr(value))
            for name, value in sorted(vars(self).items())
            if not name.startswith("_")
        )
        return (type(self).__module__, type(self).__qualname__, public)

    @abc.abstractmethod
    def thread_body(
        self, api: ThreadAPI, tid: int, num_txns: int
    ) -> Iterator[None]:
        """Generator running ``num_txns`` transactions, yielding after each."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    # ``int.to_bytes``/``int.from_bytes`` are used directly (rather than
    # the utils helpers) because structure traversal calls these millions
    # of times per sweep and the extra call frame is measurable.
    @staticmethod
    def read_word(acc, addr: int) -> int:
        """Read one little-endian word as an unsigned int."""
        return int.from_bytes(acc.read(addr, 8), "little")

    @staticmethod
    def write_word(acc, addr: int, value: int) -> None:
        """Write one unsigned int as a little-endian word."""
        acc.write(addr, int(value).to_bytes(8, "little"))

    def make_value(self, rng, tag: int) -> bytes:
        """Build an element payload (int word or multi-line string)."""
        if self.value_kind == "int":
            return (tag & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        body = (tag & 0xFF).to_bytes(1, "little") * self.value_size
        return body
