"""Workload protocol and accessors.

A workload builds its initial persistent state in :meth:`Workload.setup`
(untimed, via :class:`SetupAccessor`) and then runs timed transactions
through per-thread generators (:meth:`Workload.thread_body`), which the
harness interleaves across cores in core-clock order.

Structure code is written once against the *accessor* protocol —
``read(addr, size)``, ``write(addr, data)``, ``compute(n)`` and
``transaction()`` — and works both in the untimed setup phase and in the
timed run phase (where the accessor is a
:class:`~repro.txn.runtime.ThreadAPI`).
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..txn.runtime import PersistentMemory, ThreadAPI
from ..utils import int_to_word, word_to_int


class SetupAccessor:
    """Untimed accessor used while building initial workload state."""

    def __init__(self, pm: PersistentMemory) -> None:
        self._pm = pm

    def read(self, addr: int, size: int) -> bytes:
        """Functional read (no timing, no cache state)."""
        return self._pm.setup_read(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        """Functional write directly into NVRAM."""
        self._pm.setup_write(addr, data)

    def compute(self, count: int) -> None:
        """No-op during setup."""

    def alloc(self, size: int) -> int:
        """Allocate from the shared heap (setup has no txn constraints)."""
        return self._pm.heap.alloc(size)

    def free(self, addr: int, size: int) -> None:
        """Return a block to the shared heap immediately."""
        self._pm.heap.free(addr, size)

    @contextmanager
    def transaction(self):
        """No-op transaction context during setup."""
        yield self


@dataclass
class WorkloadResult:
    """What a finished run exposes to tests (beyond machine stats)."""

    transactions: int
    operations: dict


class Workload(abc.ABC):
    """One benchmark: persistent state plus a per-thread transaction mix."""

    #: paper name (e.g. ``"hash"``); subclasses override.
    name: str = "abstract"
    #: memory footprint reported in Table III (informational).
    paper_footprint: str = "-"
    #: one-line description for Table III.
    description: str = ""

    def __init__(self, seed: int = 42, value_kind: str = "int") -> None:
        if value_kind not in ("int", "string"):
            raise ValueError(f"value_kind must be 'int' or 'string', not {value_kind!r}")
        self.seed = seed
        self.value_kind = value_kind

    @property
    def value_size(self) -> int:
        """Element payload size: one word for ints, multi-line for strings."""
        return 8 if self.value_kind == "int" else 96

    @abc.abstractmethod
    def setup(self, pm: PersistentMemory) -> None:
        """Allocate and initialise persistent state (untimed)."""

    def attach(self, pm: PersistentMemory) -> None:
        """Re-bind to a fresh machine whose NVRAM image was restored from
        a prepared snapshot (see :func:`repro.harness.runner.prepare_workload`)."""
        self._heap = pm.heap

    @abc.abstractmethod
    def thread_body(
        self, api: ThreadAPI, tid: int, num_txns: int
    ) -> Iterator[None]:
        """Generator running ``num_txns`` transactions, yielding after each."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def read_word(acc, addr: int) -> int:
        """Read one little-endian word as an unsigned int."""
        return word_to_int(acc.read(addr, 8))

    @staticmethod
    def write_word(acc, addr: int, value: int) -> None:
        """Write one unsigned int as a little-endian word."""
        acc.write(addr, int_to_word(value))

    def make_value(self, rng, tag: int) -> bytes:
        """Build an element payload (int word or multi-line string)."""
        if self.value_kind == "int":
            return int_to_word(tag & ((1 << 64) - 1))
        body = (tag & 0xFF).to_bytes(1, "little") * self.value_size
        return body
