"""Schema-versioned on-disk bench baselines (``BENCH_*.json``).

A baseline captures one :func:`~repro.bench.runner.run_bench` outcome:
the schema version, run configuration (mode, repeats), the recording
host's fingerprint, and per-suite metrics.  ``repro bench compare``
diffs a fresh run against a committed baseline; ``repro bench update``
rewrites it intentionally.

The schema version is bumped whenever the document shape changes
incompatibly; comparisons across versions refuse to guess and fail with
a :class:`BenchSchemaError` (CLI exit code 2) instead of reporting
nonsense drift.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .registry import BenchError
from .runner import BenchRunResult, SuiteResult

#: Current baseline document schema.
SCHEMA = "repro-bench/v1"


class BenchSchemaError(BenchError):
    """A baseline file has a different (or missing) schema version."""


def default_baseline_path(quick: bool) -> Path:
    """The conventional committed baseline for the given mode."""
    return Path("BENCH_quick.json" if quick else "BENCH_full.json")


def result_to_doc(result: BenchRunResult) -> dict:
    """Encode a run result as a JSON-ready baseline document."""
    return {
        "schema": SCHEMA,
        "mode": result.mode,
        "repeats": result.repeats,
        "host": dict(result.host),
        "suites": {suite.name: suite.to_dict() for suite in result.suites},
    }


def doc_to_result(doc: dict) -> BenchRunResult:
    """Rebuild a :class:`BenchRunResult` from a baseline document."""
    result = BenchRunResult(
        mode=doc.get("mode", "quick"),
        repeats=int(doc.get("repeats", 1)),
        host=dict(doc.get("host", {})),
    )
    for name, entry in doc.get("suites", {}).items():
        result.suites.append(
            SuiteResult(
                name=name,
                description=entry.get("description", ""),
                counters=dict(entry.get("counters", {})),
                wall_seconds=float(entry.get("wall_seconds", 0.0)),
                wall_all=[float(w) for w in entry.get("wall_all", [])],
                counter_drift=bool(entry.get("counter_drift", False)),
            )
        )
    return result


def write_baseline(path: Union[str, Path], result: BenchRunResult) -> Path:
    """Write ``result`` as a baseline file (pretty JSON, trailing \\n)."""
    path = Path(path)
    path.write_text(json.dumps(result_to_doc(result), indent=2) + "\n")
    return path


def load_baseline(path: Union[str, Path]) -> BenchRunResult:
    """Load and schema-check a baseline file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchError(
            f"no baseline at {path} (create one with 'repro bench update')"
        ) from None
    except (OSError, ValueError) as exc:
        raise BenchError(f"unreadable baseline {path}: {exc}") from exc
    schema = doc.get("schema")
    if schema != SCHEMA:
        raise BenchSchemaError(
            f"baseline {path} has schema {schema!r}, this tool speaks "
            f"{SCHEMA!r}; refresh it with 'repro bench update'"
        )
    return doc_to_result(doc)
