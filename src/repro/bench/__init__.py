"""Performance-regression benchmark subsystem (``repro bench``).

Named suites measure the system's hot paths and report **deterministic
cost counters** (simulated cycles, events, cache/NVRAM accesses) next to
min-of-N wall-clock; schema-versioned ``BENCH_*.json`` baselines plus
``repro bench run/compare/update`` let CI gate every PR on the noise-free
counters while humans read seconds.  See :mod:`repro.bench.registry` for
the metric model and :mod:`repro.bench.compare` for the tolerance rules.
"""

from .baseline import (
    SCHEMA,
    BenchSchemaError,
    default_baseline_path,
    load_baseline,
    result_to_doc,
    write_baseline,
)
from .compare import (
    DEFAULT_WALL_TOLERANCE,
    CompareReport,
    MetricDiff,
    compare_results,
)
from .registry import SUITES, BenchError, BenchTimer, Suite, get_suites, register
from .runner import BenchRunResult, SuiteResult, host_fingerprint, run_bench

__all__ = [
    "SCHEMA",
    "SUITES",
    "DEFAULT_WALL_TOLERANCE",
    "BenchError",
    "BenchRunResult",
    "BenchSchemaError",
    "BenchTimer",
    "CompareReport",
    "MetricDiff",
    "Suite",
    "SuiteResult",
    "compare_results",
    "default_baseline_path",
    "get_suites",
    "host_fingerprint",
    "load_baseline",
    "register",
    "result_to_doc",
    "run_bench",
    "write_baseline",
]
