"""The registered benchmark suites.

Each suite exercises one performance-critical path of the system:

``sweep-serial`` / ``sweep-parallel``
    End-to-end sweep-engine throughput (the figure pipeline's engine),
    serially and over a two-worker process pool.
``cache-probe``
    The simulator's single hottest operation: set-associative tag
    probes, fills and LRU evictions, isolated from the rest of the
    machine.
``logbuffer-drain``
    The HWL log-buffer FIFO draining records onto the NVRAM bus through
    the memory controller's bank/bus scheduler.
``recovery-replay``
    Post-crash log-window scan and undo/redo replay (only the recovery
    pass itself is timed; the crashed run is setup).
``sweep-cache-hit``
    The content-addressed result cache's warm-hit path (key hashing +
    JSON decode; the cold populating sweep is setup).
``ablate-grid``
    Mechanism-grid fan-out through the sweep engine, including
    ``instant``-commit specs off the paper's canonical axis.
``compile-decode`` / ``compile-replay``
    The execution engine's two phases, timed apart so their costs are
    directly comparable in a baseline: decoding a workload's micro-op
    stream into a column trace (paid once per (workload, threads)), and
    replaying that trace across all eight canonical designs (paid per
    sweep cell — the phase the engine optimises).
``adapt-decide``
    The adaptive controller's decision path in isolation: per-window
    feature extraction from counter probes plus first-match policy-table
    lookup — the work every scheduler checkpoint pays in adaptive mode.
``adapt-switch``
    The safe-switch epoch barrier itself: a closed-loop run that cycles
    the write-back policy mid-run, so WCB drain, log-FIFO settling and
    the dirty-line force are all on the timed path.
``pstatic-matrix``
    The static persistency verifier against the dynamic checker over
    the same canonical-design matrix: one symbolic column walk per
    design versus one full via-API replay per design.  The gate counter
    is ``bytes_ratio`` — bytes the dynamic engine must touch (NVRAM
    image restore + simulated I/O) over bytes the static engine walks
    (the column arrays) — required to stay >= 10.

Every suite returns counters that are pure functions of configuration —
simulated cycles, instructions, cache/NVRAM accesses — never wall time,
process ids, or host properties.
"""

from __future__ import annotations

import tempfile

from ..core.design import CANONICAL_DESIGNS, FWB, HWL, REDO_CLWB, UNSAFE_BASE, expand_grid
from ..core.logbuffer import LogBuffer
from ..core.recovery import RecoveryManager
from ..harness.cache import SweepCache
from ..harness.sweep import run_micro_sweep
from ..sim.cache import SetAssociativeCache
from ..sim.config import (
    CacheConfig,
    CoreConfig,
    LoggingConfig,
    MemCtrlConfig,
    NVDimmConfig,
    SystemConfig,
)
from ..sim.machine import Machine
from ..txn.runtime import PersistentMemory
from ..workloads.hashtable import HashTableWorkload
from .registry import BenchTimer, register


def _tiny_system(**overrides) -> SystemConfig:
    """A miniature machine (2 cores, 4 KB L1, 4 MB NVRAM) for the
    component-level suites; mirrors the test fixtures' configuration."""
    config = SystemConfig(
        num_cores=2,
        core=CoreConfig(),
        l1=CacheConfig(size_bytes=4 * 1024, ways=4, line_size=64, latency_ns=1.6),
        llc=CacheConfig(size_bytes=32 * 1024, ways=8, line_size=64, latency_ns=4.4),
        memctrl=MemCtrlConfig(),
        nvram=NVDimmConfig(size_bytes=4 * 1024 * 1024),
        logging=LoggingConfig(log_entries=256),
    )
    return config.scaled(**overrides) if overrides else config


def _sweep_counters(result) -> dict:
    """Aggregate a sweep's per-cell stats into deterministic counters.

    Cells are summed in canonical matrix order, so even the float sums
    are bit-stable run to run.
    """
    counters = {
        "cells": len(result.cells),
        "cycles": 0.0,
        "instructions": 0,
        "transactions_committed": 0,
        "l1_accesses": 0,
        "llc_misses": 0,
        "nvram_reads": 0,
        "nvram_writes": 0,
        "nvram_write_bytes": 0,
        "log_records": 0,
        "clwb_count": 0,
        "fwb_writebacks": 0,
    }
    for stats in result.cells.values():
        counters["cycles"] += stats.cycles
        counters["instructions"] += stats.instructions
        counters["transactions_committed"] += stats.transactions_committed
        counters["l1_accesses"] += stats.l1_hits + stats.l1_misses
        counters["llc_misses"] += stats.llc_misses
        counters["nvram_reads"] += stats.nvram_reads
        counters["nvram_writes"] += stats.nvram_writes
        counters["nvram_write_bytes"] += stats.nvram_write_bytes
        counters["log_records"] += stats.log_records
        counters["clwb_count"] += stats.clwb_count
        counters["fwb_writebacks"] += stats.fwb_writebacks
    return counters


def _sweep_matrix(quick: bool) -> dict:
    if quick:
        return dict(
            benchmarks=("hash",),
            threads=(1,),
            policies=(UNSAFE_BASE, REDO_CLWB, HWL, FWB),
            txns_per_thread=50,
        )
    return dict(
        benchmarks=("hash", "sps"),
        threads=(1, 2),
        policies=(UNSAFE_BASE, REDO_CLWB, HWL, FWB),
        txns_per_thread=150,
    )


@register("sweep-serial", "serial sweep-engine throughput over a fixed matrix")
def sweep_serial(quick: bool, timer: BenchTimer) -> dict:
    with timer.timed():
        result = run_micro_sweep(**_sweep_matrix(quick))
    return _sweep_counters(result)


@register("sweep-parallel", "two-worker parallel sweep of the same matrix")
def sweep_parallel(quick: bool, timer: BenchTimer) -> dict:
    with timer.timed():
        result = run_micro_sweep(**_sweep_matrix(quick), jobs=2)
    return _sweep_counters(result)


@register("cache-probe", "set-associative tag probe / fill / LRU eviction loop")
def cache_probe(quick: bool, timer: BenchTimer) -> dict:
    config = CacheConfig(size_bytes=32 * 1024, ways=8, line_size=64, latency_ns=4.4)
    cache = SetAssociativeCache(config, "bench")
    line = bytes(64)
    iterations = 60_000 if quick else 400_000
    # Footprint 4x the cache capacity, addressed by a fixed-seed LCG:
    # roughly 1-in-4 probes hit, every fill past warm-up evicts.
    span = 4 * config.size_bytes
    state = 0x9E3779B97F4A7C15
    hits = misses = evictions = 0
    with timer.timed():
        now = 0.0
        for _ in range(iterations):
            state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            addr = (state >> 16) % span
            found = cache.lookup(addr)
            if found is not None:
                hits += 1
                cache.touch(found, now)
            else:
                misses += 1
                line_addr = addr & ~63
                _, victim = cache.fill(line_addr, line, now, dirty=bool(state & 1))
                if victim is not None:
                    evictions += 1
            now += 1.0
    return {
        "probes": iterations,
        "hits": hits,
        "misses": misses,
        "evictions": evictions,
        "occupancy": cache.occupancy,
        "dirty_lines": cache.dirty_count(),
    }


@register("logbuffer-drain", "HWL log-buffer FIFO drain through the memory controller")
def logbuffer_drain(quick: bool, timer: BenchTimer) -> dict:
    machine = Machine(_tiny_system(), FWB)
    buffer = LogBuffer(depth=15, memctrl=machine.memctrl, stats=machine.stats)
    records = 6_000 if quick else 40_000
    entry = machine.config.logging.log_entry_size
    payload = bytes(entry)
    base = machine.log_base
    ring = machine.config.logging.log_entries
    with timer.timed():
        now = 0.0
        total_stall = 0.0
        for index in range(records):
            addr = base + (index % ring) * entry
            stall, _durable = buffer.push(addr, payload, now)
            total_stall += stall
            # Producers arrive faster than the bus drains, so the FIFO
            # stays near-full and the back-pressure path is exercised.
            now += 2.0
    return {
        "records": records,
        "log_bytes": machine.stats.log_bytes,
        "stall_cycles": total_stall,
        "final_occupancy": buffer.occupancy,
        "nvram_writes": machine.stats.nvram_writes,
        "last_completion": buffer.last_completion,
    }


@register("recovery-replay", "post-crash log window scan and undo/redo replay")
def recovery_replay(quick: bool, timer: BenchTimer) -> dict:
    machine = Machine(_tiny_system(), HWL)
    pm = PersistentMemory(machine)
    workload = HashTableWorkload(
        seed=11, buckets_per_partition=16, keys_per_partition=64
    )
    workload.setup(pm)
    txns = 60 if quick else 200
    generator = workload.thread_body(pm.api(0, 0), 0, txns)
    for _ in generator:
        pass
    machine.crash(at_time=machine.core_time(0) * 0.6)
    with timer.timed():
        report = RecoveryManager(machine.nvram, machine.log).recover()
    return {
        "records_scanned": report.records_scanned,
        "window_entries": report.window_entries,
        "committed_instances": report.committed_instances,
        "uncommitted_instances": report.uncommitted_instances,
        "redo_writes": report.redo_writes,
        "undo_writes": report.undo_writes,
        "torn_records_skipped": report.torn_records_skipped,
    }


@register("sweep-cache-hit", "content-addressed result-cache warm-hit path")
def sweep_cache_hit(quick: bool, timer: BenchTimer) -> dict:
    matrix = dict(
        benchmarks=("hash",),
        threads=(1,),
        policies=(HWL, FWB),
        txns_per_thread=30 if quick else 100,
    )
    warm_passes = 5 if quick else 20
    with tempfile.TemporaryDirectory() as tmp:
        cache = SweepCache(tmp)
        run_micro_sweep(**matrix, cache=cache)  # cold populate (untimed)
        with timer.timed():
            for _ in range(warm_passes):
                run_micro_sweep(**matrix, cache=cache)
        return {
            "warm_passes": warm_passes,
            "hits": cache.hits,
            "misses": cache.misses,
            "stores": cache.stores,
            "corrupt": cache.corrupt,
        }


def _trace_fixture(quick: bool):
    """Prepared tiny-hash workload + run shape shared by the trace suites."""
    from ..harness.runner import prepare_workload

    workload = HashTableWorkload(
        seed=11, buckets_per_partition=32, keys_per_partition=256
    )
    txns = 40 if quick else 150
    return prepare_workload(workload, _tiny_system()), 2, txns


@register("compile-decode", "execution-engine decode: micro-op stream -> column trace")
def compile_decode(quick: bool, timer: BenchTimer) -> dict:
    from ..sim.replay import compile_trace

    prepared, threads, txns = _trace_fixture(quick)
    with timer.timed():
        trace = compile_trace(prepared, threads, txns)
    return {
        "ops": trace.op_count(),
        "write_pieces": trace.piece_count(),
        "column_bytes": sum(
            len(blob) for col in trace.thread_cols for blob in col.column_blobs()
        ),
        "image_prefix_bytes": len(trace.image_prefix),
        "threads": trace.threads,
        "txns_per_thread": trace.txns_per_thread,
    }


@register("compile-replay", "compiled-trace replay across all eight canonical designs")
def compile_replay(quick: bool, timer: BenchTimer) -> dict:
    from ..harness.runner import RunConfig
    from ..sim.replay import compile_trace, run_compiled

    prepared, threads, txns = _trace_fixture(quick)
    trace = compile_trace(prepared, threads, txns)  # decode once (setup, untimed)
    counters = {
        "replays": len(CANONICAL_DESIGNS),
        "ops_replayed": trace.op_count() * len(CANONICAL_DESIGNS),
        "cycles": 0.0,
        "instructions": 0,
        "transactions_committed": 0,
        "nvram_writes": 0,
        "nvram_write_bytes": 0,
        "log_records": 0,
        "clwb_count": 0,
        "fwb_writebacks": 0,
    }
    with timer.timed():
        for spec in CANONICAL_DESIGNS:
            outcome = run_compiled(
                trace,
                RunConfig(
                    policy=spec,
                    threads=threads,
                    txns_per_thread=txns,
                    system=prepared.system,
                    seed=11,
                ),
            )
            stats = outcome.stats
            counters["cycles"] += stats.cycles
            counters["instructions"] += stats.instructions
            counters["transactions_committed"] += stats.transactions_committed
            counters["nvram_writes"] += stats.nvram_writes
            counters["nvram_write_bytes"] += stats.nvram_write_bytes
            counters["log_records"] += stats.log_records
            counters["clwb_count"] += stats.clwb_count
            counters["fwb_writebacks"] += stats.fwb_writebacks
    return counters


@register("pstatic-matrix", "static verifier vs dynamic psan over the canonical designs")
def pstatic_matrix(quick: bool, timer: BenchTimer) -> dict:
    from ..harness.runner import RunConfig, prepare_workload
    from ..sanitizer.checker import PersistOrderChecker
    from ..sanitizer.static import verify_trace
    from ..sim.replay import compile_trace, run_compiled
    from ..workloads import make_microbenchmark

    # The production configuration, not the tiny fixture: the verifier's
    # economics hinge on the footprint >> trace regime (the replay must
    # restore a multi-MB NVRAM image per design; the walk never does).
    prepared = prepare_workload(make_microbenchmark("hash", seed=11))
    threads, txns = 2, (20 if quick else 40)
    trace = compile_trace(prepared, threads, txns)  # decode once (setup, untimed)
    column_bytes = sum(
        len(blob) for col in trace.thread_cols for blob in col.column_blobs()
    )
    counters = {
        "designs": len(CANONICAL_DESIGNS),
        "agreements": 0,
        "static_entries": 0,
        "static_bytes": 0,
        "dynamic_events": 0,
        "dynamic_bytes": 0,
    }
    with timer.timed():
        for spec in CANONICAL_DESIGNS:
            static = verify_trace(trace, spec, system=prepared.system, hb=False)
            counters["static_entries"] += static.cost()
            counters["static_bytes"] += column_bytes

            holder: dict = {}

            def hook(machine) -> None:
                holder["checker"] = PersistOrderChecker.attach(machine)

            outcome = run_compiled(
                trace,
                RunConfig(
                    policy=spec,
                    threads=threads,
                    txns_per_thread=txns,
                    system=prepared.system,
                    seed=11,
                ),
                machine_hook=hook,
            )
            report = holder["checker"].finish()
            stats = outcome.stats
            counters["dynamic_events"] += report.events_processed
            counters["dynamic_bytes"] += (
                len(trace.image_prefix)
                + stats.nvram_read_bytes
                + stats.nvram_write_bytes
                + stats.log_bytes
            )
            counters["agreements"] += int(
                static.rules_fired() == report.rules_fired()
            )
            outcome.machine.nvram.recycle()
    counters["bytes_ratio"] = counters["dynamic_bytes"] // max(
        1, counters["static_bytes"]
    )
    return counters


@register("ablate-grid", "mechanism-grid fan-out incl. instant-commit specs")
def ablate_grid(quick: bool, timer: BenchTimer) -> dict:
    designs = expand_grid(
        ("hw",), ("undo+redo",), ("clwb", "fwb", "none"), ("fenced", "instant")
    )
    with timer.timed():
        result = run_micro_sweep(
            benchmarks=("hash",),
            threads=(1,),
            policies=designs,
            txns_per_thread=30 if quick else 100,
        )
    counters = _sweep_counters(result)
    counters["designs"] = len(designs)
    counters["guaranteed_designs"] = sum(
        1 for spec in designs if spec.persistence_guaranteed
    )
    return counters


def _serve_counters(report) -> dict:
    """Deterministic counters from a serve report (cycles rounded: the
    values are exact simulated quantities, rounding only normalises the
    float formatting for the JSON baseline)."""
    return {
        "offered": report.offered,
        "admitted": report.admitted,
        "rejected": report.rejected,
        "completed": report.completed,
        "makespan_cycles": int(round(report.makespan_cycles)),
        "p50_cycles": int(round(report.p50)),
        "p99_cycles": int(round(report.p99)),
        "p999_cycles": int(round(report.p999)),
        "transactions": sum(s.transactions for s in report.per_shard),
        "log_records": sum(s.log_records for s in report.per_shard),
        "nvram_writes": sum(s.nvram_writes for s in report.per_shard),
    }


@register("serve-shard", "single-shard open-loop serve: step loop + batching")
def serve_shard(quick: bool, timer: BenchTimer) -> dict:
    from ..sched.serve import ServeConfig, run_serve
    from ..sched.traffic import TrafficConfig

    config = ServeConfig(
        workload="memcached",
        shards=1,
        threads=2,
        traffic=TrafficConfig(requests=64 if quick else 256, rate=0.002, seed=42),
    )
    with timer.timed():
        report = run_serve(config)
    return _serve_counters(report)


@register("serve-traffic", "bursty multi-shard serve: admission + log shipping")
def serve_traffic(quick: bool, timer: BenchTimer) -> dict:
    from ..sched.loop import AdmissionConfig
    from ..sched.serve import ServeConfig, run_serve
    from ..sched.traffic import TrafficConfig

    config = ServeConfig(
        workload="redis",
        shards=2,
        threads=2,
        batch_requests=4,
        admission=AdmissionConfig(max_queue_depth=16),
        traffic=TrafficConfig(
            requests=96 if quick else 384,
            rate=0.01,
            arrival="burst",
            burst_size=24,
            seed=42,
        ),
        replicas=1,
        ring_records=128,
    )
    with timer.timed():
        report = run_serve(config)
    counters = _serve_counters(report)
    counters["records_shipped"] = report.replication["shipped"]
    counters["ring_compactions"] = report.replication["compactions"]
    counters["records_compacted"] = report.replication["records_compacted"]
    return counters


@register("adapt-decide", "adaptive controller: feature windows + policy-table lookup")
def adapt_decide(quick: bool, timer: BenchTimer) -> dict:
    from ..adapt.features import feature_probe, window_features
    from ..adapt.table import default_policy_table, make_rule, PolicyTable
    from ..core.design import resolve_design
    from ..sim.stats import MachineStats

    windows = 2_000 if quick else 10_000
    tables = [
        default_policy_table(),
        PolicyTable(
            rules=(
                make_rule({"wrap_pressure_min": 0.6}, "hw+undo+redo+fwb"),
                make_rule({"write_intensity_min": 2.5}, "hw+undo+redo+clwb"),
                make_rule(
                    {"txn_size_max": 3.0, "miss_rate_max": 0.2},
                    "hw+undo+redo+nowb",
                ),
            ),
            default=None,
        ),
    ]
    start = resolve_design("hw+undo+redo+nowb")
    # A synthetic but exactly reproducible counter stream: each window's
    # probe deltas are fixed arithmetic functions of the window index,
    # sweeping every feature through its decision thresholds.
    stats = MachineStats()
    prev = feature_probe(stats, now=0.0)
    switches = [0] * len(tables)
    matched = 0
    with timer.timed():
        for index in range(1, windows + 1):
            stats.transactions_committed += 8
            stats.nvram_write_bytes += 256 + (index % 97) * 32
            stats.log_records += 16 + (index % 13)
            stats.log_wrap_forced_writebacks += (index % 11) // 9
            stats.llc_misses += (index % 29)
            stats.l1_hits += 900
            stats.l1_misses += 40 + (index % 37)
            cur = feature_probe(stats, now=float(index) * 128.0)
            features = window_features(prev, cur)
            prev = cur
            for pos, table in enumerate(tables):
                current = start
                target = table.decide(features, current)
                if target != current:
                    switches[pos] += 1
                    matched += 1
    return {
        "windows": windows,
        "tables": len(tables),
        "decisions": windows * len(tables),
        "matched": matched,
        "builtin_switches": switches[0],
        "trained_switches": switches[1],
    }


@register("adapt-switch", "safe-switch epoch barrier: drain + force + swap, mid-run")
def adapt_switch(quick: bool, timer: BenchTimer) -> dict:
    import heapq

    from ..core.design import resolve_design
    from ..faults.campaign import campaign_workload
    from ..harness.runner import prepare_workload

    cycle_specs = [
        resolve_design(name)
        for name in (
            "hw+undo+redo+clwb",
            "hw+undo+redo+fwb",
            "hw+undo+redo+nowb",
        )
    ]
    threads = 2
    txns_per_thread = 24 if quick else 96
    total = threads * txns_per_thread
    # One switch per quarter of the run, cycling through the family.
    thresholds = [total // 4, total // 2, (3 * total) // 4]
    system = _tiny_system(logging=LoggingConfig(log_entries=256))
    workload = campaign_workload("hash", 7)
    prepared = prepare_workload(workload, system)
    machine = Machine(system, resolve_design("hw+undo+redo+nowb"))
    pm = PersistentMemory(machine)
    prepared.restore_into(machine)
    pm.heap.restore(prepared.heap_state)
    prepared.workload.attach(pm)
    apis = [pm.api(core_id=tid, tid=tid) for tid in range(threads)]
    generators = [
        prepared.workload.thread_body(apis[tid], tid, txns_per_thread)
        for tid in range(threads)
    ]
    with timer.timed():
        ready = [(machine.core_time(tid), tid) for tid in range(threads)]
        heapq.heapify(ready)
        pending = list(zip(thresholds, cycle_specs))
        while ready:
            if (
                pending
                and machine.stats.transactions_committed >= pending[0][0]
            ):
                machine.switch_design(pending.pop(0)[1])
                for api in apis:
                    api.refresh_policy()
            _, tid = heapq.heappop(ready)
            try:
                next(generators[tid])
            except StopIteration:
                continue
            heapq.heappush(ready, (machine.core_time(tid), tid))
        stats = machine.finalize()
    return {
        "design_switches": stats.design_switches,
        "switch_barrier_cycles": int(round(stats.switch_barrier_cycles)),
        "cycles": int(round(stats.cycles)),
        "transactions_committed": stats.transactions_committed,
        "log_records": stats.log_records,
        "log_wrap_forced_writebacks": stats.log_wrap_forced_writebacks,
        "clwb_count": stats.clwb_count,
        "fwb_writebacks": stats.fwb_writebacks,
        "nvram_writes": stats.nvram_writes,
    }
