"""Benchmark execution: repeats, timing, intra-run determinism check.

Each suite runs ``repeats`` times; the reported wall-clock is the
**minimum** over the repeats (the least-noise estimate of the code's
cost), while the counters of every repeat must be identical — a suite
whose counters drift between back-to-back executions in the same
process has a determinism bug, which the result records and the CLI
turns into a non-zero exit.

Test hook
---------
``REPRO_BENCH_PERTURB=<suite>=<factor>[,<suite>=<factor>]`` multiplies a
suite's counters and wall time by ``factor`` after measurement.  It
exists so the regression gate itself is testable (a perturbed suite must
make ``repro bench compare`` fail and name the suite); production runs
never set it.
"""

from __future__ import annotations

import os
import platform
import sys
from dataclasses import dataclass, field
from typing import List, Optional

from .registry import BenchTimer, get_suites

ENV_PERTURB = "REPRO_BENCH_PERTURB"


def host_fingerprint() -> dict:
    """Host identity relevant to wall-clock comparability.

    Deliberately excludes volatile detail (kernel build, hostname): the
    fingerprint decides whether wall-clock numbers are worth gating, so
    it should only change when timing comparability is actually lost.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def _perturb_factor(name: str) -> Optional[float]:
    spec = os.environ.get(ENV_PERTURB, "")
    for part in spec.split(","):
        key, sep, value = part.partition("=")
        if sep and key.strip() == name:
            try:
                return float(value)
            except ValueError:
                return None
    return None


@dataclass
class SuiteResult:
    """One suite's measured outcome."""

    name: str
    description: str
    counters: dict
    wall_seconds: float
    wall_all: List[float]
    counter_drift: bool = False

    def to_dict(self) -> dict:
        return {
            "description": self.description,
            "counters": self.counters,
            "wall_seconds": round(self.wall_seconds, 6),
            "wall_all": [round(w, 6) for w in self.wall_all],
            "counter_drift": self.counter_drift,
        }


@dataclass
class BenchRunResult:
    """All suite results of one ``repro bench run``."""

    mode: str
    repeats: int
    host: dict = field(default_factory=host_fingerprint)
    suites: List[SuiteResult] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        """True when no suite's counters drifted between repeats."""
        return not any(suite.counter_drift for suite in self.suites)

    def render(self) -> str:
        width = max([len("suite")] + [len(s.name) for s in self.suites])
        lines = [
            f"repro bench: mode={self.mode} repeats={self.repeats} "
            f"python={self.host['python']}",
            f"{'suite':{width}s} {'wall-s':>9s} {'counters':>8s}  note",
        ]
        for suite in self.suites:
            note = "COUNTER DRIFT ACROSS REPEATS" if suite.counter_drift else ""
            lines.append(
                f"{suite.name:{width}s} {suite.wall_seconds:9.3f} "
                f"{len(suite.counters):8d}  {note}"
            )
        return "\n".join(lines)


def run_bench(
    names=None,
    quick: bool = True,
    repeats: int = 3,
    progress=None,
) -> BenchRunResult:
    """Run the requested suites; returns all measurements.

    ``progress`` (e.g. ``print``) receives one line per finished suite.
    """
    import time

    result = BenchRunResult(mode="quick" if quick else "full", repeats=repeats)
    for suite in get_suites(names):
        walls: List[float] = []
        counters_seen: List[dict] = []
        for _ in range(max(1, repeats)):
            timer = BenchTimer()
            start = time.perf_counter()
            counters = suite.run(quick, timer)
            whole = time.perf_counter() - start
            walls.append(timer.elapsed if timer.used else whole)
            counters_seen.append(counters)
        drift = any(c != counters_seen[0] for c in counters_seen[1:])
        counters = counters_seen[0]
        wall = min(walls)
        factor = _perturb_factor(suite.name)
        if factor is not None:
            print(
                f"warning: {ENV_PERTURB} inflating suite {suite.name!r} "
                f"by {factor}x (test hook)",
                file=sys.stderr,
            )
            counters = {
                key: (
                    int(value * factor)
                    if isinstance(value, int)
                    else value * factor
                )
                for key, value in counters.items()
            }
            wall *= factor
            walls = [w * factor for w in walls]
        result.suites.append(
            SuiteResult(
                suite.name, suite.description, counters, wall, walls, drift
            )
        )
        if progress is not None:
            progress(
                f"{suite.name}: {wall:.3f}s min of {len(walls)}, "
                f"{len(counters)} counter(s)"
                + (" [COUNTER DRIFT]" if drift else "")
            )
    return result
