"""Baseline comparison: per-metric tolerances and the regression verdict.

Tolerance model:

* **deterministic counters** — zero tolerance.  Any difference between
  baseline and current is a regression (the simulator's behaviour
  changed; if the change is intentional, ``repro bench update`` records
  the new truth).  A counter that disappears is likewise a regression;
  a brand-new counter is informational.
* **wall-clock** — current may exceed baseline by up to
  ``wall_tolerance`` (a fraction; 0.25 = +25%).  Wall metrics are only
  *gated* when the baseline was recorded on a matching host fingerprint
  (and gating was not switched off); on a foreign host they are reported
  as informational, because seconds measured elsewhere prove nothing.
* **suite sets** — a suite present in the baseline but missing from the
  current run is a regression (coverage was lost); a new suite is
  informational until ``update`` adopts it.
* a suite whose counters drifted *within* the current run (between
  repeats) fails regardless of the baseline — determinism is the
  property the whole gate rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .runner import BenchRunResult

#: Default wall-clock tolerance: +25 % over baseline.
DEFAULT_WALL_TOLERANCE = 0.25


@dataclass(frozen=True)
class MetricDiff:
    """One metric compared between baseline and current run."""

    suite: str
    metric: str
    kind: str  # "counter" | "wall" | "suite" | "determinism"
    baseline: float
    current: float
    regressed: bool
    gated: bool
    note: str = ""

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def pct(self) -> float:
        """Relative change (0 when the baseline is zero and unchanged)."""
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / self.baseline


@dataclass
class CompareReport:
    """Outcome of one baseline comparison."""

    baseline_host: dict
    current_host: dict
    mode: str
    wall_tolerance: float
    wall_gated: bool
    diffs: List[MetricDiff] = field(default_factory=list)

    @property
    def host_match(self) -> bool:
        return self.baseline_host == self.current_host

    @property
    def regressions(self) -> List[MetricDiff]:
        """Diffs that fail the gate (regressed on a gated metric)."""
        return [d for d in self.diffs if d.regressed and d.gated]

    @property
    def counter_drift(self) -> List[MetricDiff]:
        """Gated counter diffs only (the zero-tolerance set)."""
        return [
            d
            for d in self.regressions
            if d.kind in ("counter", "determinism", "suite")
        ]

    @property
    def passed(self) -> bool:
        return not self.regressions

    @property
    def regressing_suites(self) -> List[str]:
        seen: List[str] = []
        for diff in self.regressions:
            if diff.suite not in seen:
                seen.append(diff.suite)
        return seen

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Terminal summary: regressions first, then wall overview."""
        lines = [
            f"bench compare: mode={self.mode} "
            f"wall tolerance +{self.wall_tolerance:.0%} "
            f"(wall {'gated' if self.wall_gated else 'informational'}"
            f"{'' if self.host_match else ', host differs'})"
        ]
        if self.regressions:
            lines.append(f"{len(self.regressions)} regression(s):")
            for diff in self.regressions:
                lines.append(f"  {_describe(diff)}")
        else:
            lines.append("no regressions")
        for diff in self.diffs:
            if diff.kind == "wall":
                marker = "REGRESSED" if diff.regressed else "ok"
                lines.append(
                    f"  wall {diff.suite}: {diff.baseline:.3f}s -> "
                    f"{diff.current:.3f}s ({diff.pct:+.1%}) "
                    f"[{marker if diff.gated else 'informational'}]"
                )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """The markdown regression report (CI artifact)."""
        status = "✅ PASS" if self.passed else "❌ REGRESSION"
        lines = [
            "# repro bench comparison",
            "",
            f"**Status: {status}**",
            "",
            f"- mode: `{self.mode}`",
            f"- wall-clock tolerance: +{self.wall_tolerance:.0%} "
            f"({'gated' if self.wall_gated else 'informational'})",
            f"- host match: {'yes' if self.host_match else 'no'} "
            f"(baseline: `{_host_line(self.baseline_host)}`, "
            f"current: `{_host_line(self.current_host)}`)",
            "",
        ]
        if self.regressions:
            lines += [
                "## Regressions",
                "",
                "| suite | metric | kind | baseline | current | change |",
                "|---|---|---|---:|---:|---:|",
            ]
            for diff in self.regressions:
                lines.append(
                    f"| {diff.suite} | {diff.metric} | {diff.kind} "
                    f"| {_num(diff.baseline)} | {_num(diff.current)} "
                    f"| {_change(diff)} |"
                )
            lines.append("")
        informational = [
            d for d in self.diffs if (d.regressed and not d.gated) or d.note
        ]
        if informational:
            lines += ["## Notes", ""]
            for diff in informational:
                lines.append(f"- {_describe(diff)}")
            lines.append("")
        lines += [
            "## Wall-clock",
            "",
            "| suite | baseline (s) | current (s) | change |",
            "|---|---:|---:|---:|",
        ]
        for diff in self.diffs:
            if diff.kind == "wall":
                lines.append(
                    f"| {diff.suite} | {diff.baseline:.3f} "
                    f"| {diff.current:.3f} | {diff.pct:+.1%} |"
                )
        lines.append("")
        return "\n".join(lines)


def _host_line(host: dict) -> str:
    return (
        f"{host.get('implementation', '?')} {host.get('python', '?')} "
        f"{host.get('system', '?')}/{host.get('machine', '?')} "
        f"{host.get('cpus', '?')}cpu"
    )


def _num(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value)}"


def _change(diff: MetricDiff) -> str:
    if diff.pct == float("inf"):
        return "new"
    return f"{diff.pct:+.2%}"


def _describe(diff: MetricDiff) -> str:
    scope = "informational: " if (diff.regressed and not diff.gated) else ""
    body = (
        f"{diff.suite}/{diff.metric} [{diff.kind}]: "
        f"{_num(diff.baseline)} -> {_num(diff.current)}"
    )
    if diff.note:
        body += f" ({diff.note})"
    return scope + body


def compare_results(
    baseline: BenchRunResult,
    current: BenchRunResult,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    gate_wall: bool = True,
) -> CompareReport:
    """Diff ``current`` against ``baseline``; returns the full report.

    ``gate_wall=False`` demotes every wall-clock comparison to
    informational; it is also demoted automatically when the two host
    fingerprints differ.
    """
    wall_gated = gate_wall and baseline.host == current.host
    report = CompareReport(
        baseline_host=dict(baseline.host),
        current_host=dict(current.host),
        mode=current.mode,
        wall_tolerance=wall_tolerance,
        wall_gated=wall_gated,
    )
    if baseline.mode != current.mode:
        report.diffs.append(
            MetricDiff(
                suite="*",
                metric="mode",
                kind="suite",
                baseline=0,
                current=0,
                regressed=True,
                gated=True,
                note=(
                    f"baseline recorded in {baseline.mode!r} mode, current "
                    f"run is {current.mode!r} — compare like with like"
                ),
            )
        )
        return report

    base_suites = {suite.name: suite for suite in baseline.suites}
    cur_suites = {suite.name: suite for suite in current.suites}

    for name, base in base_suites.items():
        cur = cur_suites.get(name)
        if cur is None:
            report.diffs.append(
                MetricDiff(
                    suite=name,
                    metric="(suite)",
                    kind="suite",
                    baseline=1,
                    current=0,
                    regressed=True,
                    gated=True,
                    note="suite present in baseline but missing from this run",
                )
            )
            continue
        if cur.counter_drift:
            report.diffs.append(
                MetricDiff(
                    suite=name,
                    metric="(repeats)",
                    kind="determinism",
                    baseline=0,
                    current=1,
                    regressed=True,
                    gated=True,
                    note="counters drifted between repeats of this very run",
                )
            )
        # Counters: zero tolerance, both directions, disappearance fails.
        for metric, base_value in base.counters.items():
            if metric not in cur.counters:
                report.diffs.append(
                    MetricDiff(
                        suite=name,
                        metric=metric,
                        kind="counter",
                        baseline=base_value,
                        current=0,
                        regressed=True,
                        gated=True,
                        note="counter disappeared",
                    )
                )
                continue
            cur_value = cur.counters[metric]
            if cur_value != base_value:
                report.diffs.append(
                    MetricDiff(
                        suite=name,
                        metric=metric,
                        kind="counter",
                        baseline=base_value,
                        current=cur_value,
                        regressed=True,
                        gated=True,
                    )
                )
        for metric, cur_value in cur.counters.items():
            if metric not in base.counters:
                report.diffs.append(
                    MetricDiff(
                        suite=name,
                        metric=metric,
                        kind="counter",
                        baseline=0,
                        current=cur_value,
                        regressed=False,
                        gated=False,
                        note="new counter (baseline predates it)",
                    )
                )
        # Wall-clock: one-sided percentage tolerance.
        limit = base.wall_seconds * (1.0 + wall_tolerance)
        report.diffs.append(
            MetricDiff(
                suite=name,
                metric="wall_seconds",
                kind="wall",
                baseline=base.wall_seconds,
                current=cur.wall_seconds,
                regressed=cur.wall_seconds > limit,
                gated=wall_gated,
            )
        )

    for name in cur_suites:
        if name not in base_suites:
            report.diffs.append(
                MetricDiff(
                    suite=name,
                    metric="(suite)",
                    kind="suite",
                    baseline=0,
                    current=1,
                    regressed=False,
                    gated=False,
                    note="new suite not in baseline (adopt with "
                    "'repro bench update')",
                )
            )
    return report
