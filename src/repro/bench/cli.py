"""``repro bench`` — run / compare / update / list.

Exit codes: 0 success, 1 regression (or intra-run counter drift),
2 usage, schema, or baseline error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import (
    default_baseline_path,
    load_baseline,
    result_to_doc,
    write_baseline,
)
from .compare import DEFAULT_WALL_TOLERANCE, compare_results
from .registry import BenchError, get_suites
from .runner import run_bench


def _suite_names(args) -> list:
    if not args.suites:
        return None
    return [name.strip() for name in args.suites.split(",") if name.strip()]


def _baseline_path(args) -> Path:
    if args.baseline:
        return Path(args.baseline)
    return default_baseline_path(args.quick)


def _run(args) -> int:
    result = run_bench(
        names=_suite_names(args),
        quick=args.quick,
        repeats=args.repeats,
        progress=None if args.json else print,
    )
    if args.json:
        print(json.dumps(result_to_doc(result), indent=2))
    else:
        print(result.render())
    if args.out:
        write_baseline(args.out, result)
        print(f"wrote {args.out}")
    return 0 if result.deterministic else 1


def _update(args) -> int:
    path = _baseline_path(args)
    result = run_bench(
        names=_suite_names(args),
        quick=args.quick,
        repeats=args.repeats,
        progress=print,
    )
    if not result.deterministic:
        print(
            "bench update: refusing to record a baseline whose counters "
            "drifted between repeats",
            file=sys.stderr,
        )
        return 1
    write_baseline(path, result)
    print(f"baseline updated: {path}")
    return 0


def _compare(args) -> int:
    baseline = load_baseline(_baseline_path(args))
    if args.from_file:
        current = load_baseline(args.from_file)
    else:
        current = run_bench(
            names=_suite_names(args),
            quick=args.quick,
            repeats=args.repeats,
            progress=None if args.json else print,
        )
    report = compare_results(
        baseline,
        current,
        wall_tolerance=args.wall_tolerance / 100.0,
        gate_wall=not args.no_wall_gate,
    )
    if args.report:
        Path(args.report).write_text(report.render_markdown())
    if args.json:
        print(
            json.dumps(
                {
                    "passed": report.passed,
                    "regressing_suites": report.regressing_suites,
                    "regressions": [
                        {
                            "suite": d.suite,
                            "metric": d.metric,
                            "kind": d.kind,
                            "baseline": d.baseline,
                            "current": d.current,
                        }
                        for d in report.regressions
                    ],
                },
                indent=2,
            )
        )
    else:
        print(report.render())
        if args.report:
            print(f"wrote {args.report}")
        print("bench compare: PASS" if report.passed else "bench compare: FAIL")
    return 0 if report.passed else 1


def _list(args) -> int:
    width = max(len(suite.name) for suite in get_suites())
    for suite in get_suites():
        print(f"{suite.name:{width}s}  {suite.description}")
    return 0


def _common_flags(cmd, with_repeats: bool = True) -> None:
    cmd.add_argument(
        "--quick",
        action="store_true",
        help="small matrices (seconds; the committed CI baseline's mode)",
    )
    cmd.add_argument(
        "--suites",
        default=None,
        help="comma-separated subset of suites (default: all registered)",
    )
    if with_repeats:
        cmd.add_argument(
            "--repeats",
            type=int,
            default=3,
            help="wall-clock repeats per suite; min is reported (default: 3)",
        )


def add_bench_parser(sub) -> None:
    """Attach the ``bench`` subcommand tree to the top-level subparsers."""
    bench = sub.add_parser(
        "bench",
        help="performance-regression benchmark suites and baseline gating",
    )
    # The top-level CLI dispatches on args.fn; every bench subcommand
    # additionally carries its own bench_fn for cmd_bench to route.
    bench.set_defaults(fn=cmd_bench)
    action = bench.add_subparsers(dest="bench_command", required=True)

    run_cmd = action.add_parser("run", help="run suites, optionally write a result file")
    _common_flags(run_cmd)
    run_cmd.add_argument(
        "--out", default=None, help="write the run as a baseline-format JSON file"
    )
    run_cmd.add_argument("--json", action="store_true", help="machine-readable output")
    run_cmd.set_defaults(bench_fn=_run)

    compare_cmd = action.add_parser(
        "compare", help="diff a fresh (or saved) run against a baseline"
    )
    _common_flags(compare_cmd)
    compare_cmd.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: BENCH_quick.json / BENCH_full.json by mode)",
    )
    compare_cmd.add_argument(
        "--from",
        dest="from_file",
        default=None,
        metavar="FILE",
        help="compare a saved 'bench run --out' file instead of running now",
    )
    compare_cmd.add_argument(
        "--wall-tolerance",
        type=float,
        default=DEFAULT_WALL_TOLERANCE * 100,
        metavar="PCT",
        help="allowed wall-clock slowdown in percent (default: 25; "
        "deterministic counters always gate at 0)",
    )
    compare_cmd.add_argument(
        "--no-wall-gate",
        action="store_true",
        help="report wall-clock changes but never fail on them",
    )
    compare_cmd.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the markdown comparison report to FILE",
    )
    compare_cmd.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    compare_cmd.set_defaults(bench_fn=_compare)

    update_cmd = action.add_parser(
        "update", help="re-run suites and rewrite the baseline intentionally"
    )
    _common_flags(update_cmd)
    update_cmd.add_argument(
        "--baseline",
        default=None,
        help="baseline file to rewrite (default: by mode)",
    )
    update_cmd.set_defaults(bench_fn=_update)

    list_cmd = action.add_parser("list", help="list registered suites")
    list_cmd.set_defaults(bench_fn=_list)


def cmd_bench(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``bench`` invocation (exit-code semantics)."""
    try:
        return args.bench_fn(args)
    except BenchError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
