"""Benchmark suite registry.

A *suite* is one named performance probe of the system: it executes a
fixed, deterministic piece of work and returns **cost counters** —
simulated cycles, instructions, cache and NVRAM accesses, log records —
that are a pure function of the configuration.  The runner
(:mod:`repro.bench.runner`) times each suite's execution in wall-clock
alongside, so every suite yields two kinds of metric:

* **deterministic counters** — identical on every run of the same code,
  on any host; CI gates on these with zero tolerance, because any drift
  means the simulator's behaviour changed;
* **wall-clock seconds** (min over N repeats) — noisy and
  host-dependent; compared with a configurable percentage tolerance and
  only on a matching host fingerprint.

Suites register themselves via the :func:`register` decorator at import
time (importing :mod:`repro.bench.suites` populates the table).  A suite
function receives the run mode and a :class:`BenchTimer`; work wrapped
in ``timer.timed()`` is what the wall-clock metric measures (a suite
that never opens a timed section is timed whole).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict

from ..errors import ReproError


class BenchError(ReproError):
    """A benchmark suite or baseline operation failed."""


class BenchTimer:
    """Accumulates wall-clock time over explicitly timed sections.

    Lets a suite exclude its setup cost (building a workload image,
    populating a cache) from the measured hot path.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.used = False

    @contextmanager
    def timed(self):
        """Context manager adding the enclosed duration to the total."""
        self.used = True
        start = time.perf_counter()
        try:
            yield
        finally:
            self.elapsed += time.perf_counter() - start


@dataclass(frozen=True)
class Suite:
    """One registered benchmark suite."""

    name: str
    description: str
    fn: Callable

    def run(self, quick: bool, timer: BenchTimer) -> dict:
        """Execute once; returns the suite's deterministic counters."""
        counters = self.fn(quick, timer)
        for key, value in counters.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise BenchError(
                    f"suite {self.name!r} counter {key!r} is "
                    f"{type(value).__name__}, not a number"
                )
        return counters


#: All registered suites, in registration order.
SUITES: Dict[str, Suite] = {}


def register(name: str, description: str):
    """Class decorator registering ``fn`` as suite ``name``."""

    def decorator(fn: Callable) -> Callable:
        if name in SUITES:
            raise ValueError(f"bench suite {name!r} is already registered")
        SUITES[name] = Suite(name, description, fn)
        return fn

    return decorator


def get_suites(names=None) -> list:
    """The requested suites (all, in registration order, when ``names``
    is None); unknown names raise :class:`BenchError`."""
    from . import suites as _suites  # noqa: F401  (populates SUITES)

    if names is None:
        return list(SUITES.values())
    picked = []
    for name in names:
        suite = SUITES.get(name)
        if suite is None:
            raise BenchError(
                f"unknown bench suite {name!r} "
                f"(registered: {', '.join(SUITES)})"
            )
        picked.append(suite)
    return picked
