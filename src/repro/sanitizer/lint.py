"""Determinism and accounting lint (the static half of the sanitizer).

``repro lint`` runs an AST pass over the source tree and rejects four
classes of hazard that have historically produced irreproducible or
silently-wrong simulation results:

``wall-clock``
    Importing ambient-entropy or wall-clock modules (``random``,
    ``time``, ``datetime``, ``secrets``, ``uuid``) inside the
    deterministic simulation packages (``sim``, ``core``, ``txn``,
    ``workloads``, ``faults``).  Simulated time is the only clock, and
    all randomness must flow through the seeded
    :mod:`repro.workloads.rng` stream.  The harness layer (process
    pools, retry backoff) legitimately uses real time and is exempt.

``stats-counter``
    Writing a counter attribute on a stats object (``*.stats.NAME`` /
    ``*._stats.NAME``) that :class:`~repro.sim.stats.MachineStats` does
    not declare.  A typo'd counter accumulates into a ghost attribute
    that no report or test ever reads.

``float-eq``
    ``==`` / ``!=`` between floating-point cycle quantities (operands
    named like times: ``time``, ``completion``, ``release``, ...).
    Simulated timestamps are floats; exact comparison is only ever
    correct against a sentinel, which must be annotated.

``event-kind``
    Passing a string literal to ``.emit(...)`` that is not registered in
    :data:`repro.sim.events.EVENT_KINDS` — a typo would create a
    parallel event stream the sanitizer silently ignores.

A finding on a line containing ``# lint: allow(rule-id)`` is suppressed;
the comment marks a reviewed, justified exception.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, Optional

#: Modules whose import signals wall-clock or ambient entropy.
WALL_CLOCK_MODULES = frozenset({"random", "time", "datetime", "secrets", "uuid"})

#: Top-level ``repro`` subpackages that must stay deterministic.
DETERMINISTIC_PACKAGES = frozenset({"sim", "core", "txn", "workloads", "faults"})

#: Identifier fragments that mark a value as a simulated-time quantity.
TIME_IDENTIFIERS = frozenset(
    {
        "time",
        "cycles",
        "completion",
        "release",
        "durable",
        "now",
        "deadline",
        "next_scan",
        "clock",
        "latency",
        "stall",
    }
)

_ALLOW_MARK = "lint: allow("


@dataclass(frozen=True)
class LintFinding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def declared_stats_fields(stats_path: Optional[str] = None) -> frozenset:
    """Field names declared by ``MachineStats``, parsed from its source.

    Parsing (rather than importing) keeps the lint usable on a tree that
    does not import cleanly — the exact situation a lint is for.
    """
    if stats_path is None:
        stats_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "sim",
            "stats.py",
        )
    with open(stats_path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=stats_path)
    fields: set = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "MachineStats"):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        fields.add(target.id)
    return frozenset(fields)


def registered_event_kinds(events_path: Optional[str] = None) -> frozenset:
    """Event kinds from :mod:`repro.sim.events`, parsed from its source."""
    if events_path is None:
        events_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "sim",
            "events.py",
        )
    with open(events_path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=events_path)
    kinds: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            kinds.add(node.value)
    return frozenset(kinds)


def _deterministic_module(path: str) -> bool:
    """True when ``path`` lies inside a deterministic repro subpackage."""
    parts = os.path.normpath(path).split(os.sep)
    if "repro" not in parts:
        return False
    tail = parts[parts.index("repro") + 1 :]
    return bool(tail) and tail[0] in DETERMINISTIC_PACKAGES


def _time_identifier(node: ast.AST) -> Optional[str]:
    """The time-ish identifier an operand refers to, if any."""
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return None
    lowered = name.lower()
    if lowered in TIME_IDENTIFIERS:
        return name
    for fragment in TIME_IDENTIFIERS:
        if lowered.endswith("_" + fragment):
            return name
    return None


def _is_none_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class _Visitor(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        stats_fields: frozenset,
        event_kinds: frozenset,
        check_wall_clock: bool,
    ) -> None:
        self.path = path
        self.stats_fields = stats_fields
        self.event_kinds = event_kinds
        self.check_wall_clock = check_wall_clock
        self.findings: list = []

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            LintFinding(rule, self.path, getattr(node, "lineno", 0), message)
        )

    # -- wall-clock ----------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if self.check_wall_clock:
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in WALL_CLOCK_MODULES:
                    self._add(
                        "wall-clock",
                        node,
                        f"import of {alias.name!r} in a deterministic "
                        "simulation module (use simulated time / the "
                        "seeded workload RNG)",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.check_wall_clock and node.level == 0 and node.module:
            root = node.module.split(".")[0]
            if root in WALL_CLOCK_MODULES:
                self._add(
                    "wall-clock",
                    node,
                    f"import from {node.module!r} in a deterministic "
                    "simulation module",
                )
        self.generic_visit(node)

    # -- stats-counter -------------------------------------------------
    def _check_stats_target(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        value = target.value
        if not (isinstance(value, ast.Attribute) and value.attr in ("stats", "_stats")):
            return
        if target.attr not in self.stats_fields:
            self._add(
                "stats-counter",
                target,
                f"write to undeclared stats counter {target.attr!r} "
                "(declare it on MachineStats)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_stats_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_stats_target(node.target)
        self.generic_visit(node)

    # -- float-eq ------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_none_constant(left) or _is_none_constant(right):
                continue
            name = _time_identifier(left) or _time_identifier(right)
            if name is not None:
                self._add(
                    "float-eq",
                    node,
                    f"exact ==/!= on cycle-time value {name!r} "
                    "(compare with a tolerance, or annotate the sentinel)",
                )
        self.generic_visit(node)

    # -- event-kind ----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            kind = node.args[1].value
            if kind not in self.event_kinds:
                self._add(
                    "event-kind",
                    node,
                    f"emit of unregistered event kind {kind!r} "
                    "(register it in repro.sim.events.EVENT_KINDS)",
                )
        self.generic_visit(node)


def lint_file(
    path: str,
    stats_fields: Optional[frozenset] = None,
    event_kinds: Optional[frozenset] = None,
) -> list:
    """Lint one Python file; returns surviving (unsuppressed) findings."""
    if stats_fields is None:
        stats_fields = declared_stats_fields()
    if event_kinds is None:
        event_kinds = registered_event_kinds()
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    visitor = _Visitor(
        path,
        stats_fields,
        event_kinds,
        check_wall_clock=_deterministic_module(path),
    )
    visitor.visit(tree)
    lines = source.splitlines()
    kept = []
    for finding in visitor.findings:
        line_text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        if f"{_ALLOW_MARK}{finding.rule})" in line_text:
            continue
        kept.append(finding)
    return kept


def lint_paths(paths: Iterable[str]) -> list:
    """Lint files and directory trees; returns all findings, sorted."""
    stats_fields = declared_stats_fields()
    event_kinds = registered_event_kinds()
    files: list = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            files.append(path)
    findings: list = []
    for path in sorted(files):
        findings.extend(lint_file(path, stats_fields, event_kinds))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
