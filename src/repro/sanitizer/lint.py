"""Determinism and accounting lint (the source half of the sanitizer).

``repro lint`` runs a set of **pluggable AST passes** over the source
tree.  Each pass is a :class:`LintPass` subclass registered under its
rule id via :func:`register_pass`; ``lint_file`` instantiates every
registered pass that declares itself applicable to the file and runs it
over the parsed tree.  The built-in passes reject four classes of
hazard that have historically produced irreproducible or silently-wrong
simulation results:

``wall-clock``
    Importing ambient-entropy or wall-clock modules (``random``,
    ``time``, ``datetime``, ``secrets``, ``uuid``) inside the
    deterministic simulation packages (``sim``, ``core``, ``txn``,
    ``workloads``, ``faults``).  Simulated time is the only clock, and
    all randomness must flow through the seeded
    :mod:`repro.workloads.rng` stream.  The harness layer (process
    pools, retry backoff) legitimately uses real time and is exempt.

``stats-counter``
    Writing a counter attribute on a stats object (``*.stats.NAME`` /
    ``*._stats.NAME``) that :class:`~repro.sim.stats.MachineStats` does
    not declare.  A typo'd counter accumulates into a ghost attribute
    that no report or test ever reads.

``float-eq``
    ``==`` / ``!=`` between floating-point cycle quantities (operands
    named like times: ``time``, ``completion``, ``release``, ...).
    Simulated timestamps are floats; exact comparison is only ever
    correct against a sentinel, which must be annotated.

``event-kind``
    Passing a string literal to ``.emit(...)`` that is not registered in
    :data:`repro.sim.events.EVENT_KINDS` — a typo would create a
    parallel event stream the sanitizer silently ignores.

A finding on a line containing ``# lint: allow(rule-id)`` is suppressed;
the comment marks a reviewed, justified exception.  Suppressions are
themselves **audited**: an ``allow`` whose rule no longer fires on that
line (the code changed, the exception went stale) is reported as a
``stale-suppression`` finding — informational by default, fatal under
``repro lint --strict`` — so dead exceptions cannot silently accumulate.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable, Optional

#: Modules whose import signals wall-clock or ambient entropy.
WALL_CLOCK_MODULES = frozenset({"random", "time", "datetime", "secrets", "uuid"})

#: Top-level ``repro`` subpackages that must stay deterministic.
DETERMINISTIC_PACKAGES = frozenset({"sim", "core", "txn", "workloads", "faults"})

#: Identifier fragments that mark a value as a simulated-time quantity.
TIME_IDENTIFIERS = frozenset(
    {
        "time",
        "cycles",
        "completion",
        "release",
        "durable",
        "now",
        "deadline",
        "next_scan",
        "clock",
        "latency",
        "stall",
    }
)

_ALLOW_MARK = "lint: allow("
_ALLOW_RE = re.compile(r"lint:\s*allow\(([a-z-]+)\)")

#: The audit pass's own rule id (not an AST pass; produced by the
#: suppression audit in :func:`lint_file`).
STALE_SUPPRESSION = "stale-suppression"


@dataclass(frozen=True)
class LintFinding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def declared_stats_fields(stats_path: Optional[str] = None) -> frozenset:
    """Field names declared by ``MachineStats``, parsed from its source.

    Parsing (rather than importing) keeps the lint usable on a tree that
    does not import cleanly — the exact situation a lint is for.
    """
    if stats_path is None:
        stats_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "sim",
            "stats.py",
        )
    with open(stats_path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=stats_path)
    fields: set = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "MachineStats"):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        fields.add(target.id)
    return frozenset(fields)


def registered_event_kinds(events_path: Optional[str] = None) -> frozenset:
    """Event kinds from :mod:`repro.sim.events`, parsed from its source."""
    if events_path is None:
        events_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "sim",
            "events.py",
        )
    with open(events_path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=events_path)
    kinds: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            kinds.add(node.value)
    return frozenset(kinds)


def _deterministic_module(path: str) -> bool:
    """True when ``path`` lies inside a deterministic repro subpackage."""
    parts = os.path.normpath(path).split(os.sep)
    if "repro" not in parts:
        return False
    tail = parts[parts.index("repro") + 1 :]
    return bool(tail) and tail[0] in DETERMINISTIC_PACKAGES


def _time_identifier(node: ast.AST) -> Optional[str]:
    """The time-ish identifier an operand refers to, if any."""
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return None
    lowered = name.lower()
    if lowered in TIME_IDENTIFIERS:
        return name
    for fragment in TIME_IDENTIFIERS:
        if lowered.endswith("_" + fragment):
            return name
    return None


def _is_none_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


# ----------------------------------------------------------------------
# The pass framework
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LintContext:
    """Per-file inputs shared by every pass."""

    path: str
    stats_fields: frozenset
    event_kinds: frozenset
    deterministic: bool


#: rule id -> LintPass subclass, in registration order.
PASSES: dict = {}


def register_pass(cls):
    """Class decorator adding a :class:`LintPass` to the registry."""
    assert cls.rule and cls.rule not in PASSES, cls
    PASSES[cls.rule] = cls
    return cls


class LintPass(ast.NodeVisitor):
    """One lint rule: an AST visitor producing findings for its rule.

    Subclasses set ``rule`` / ``description``, override visit methods,
    and may override :meth:`applicable` to skip files the rule does not
    govern (the pass then never runs there, and its suppressions in
    those files are ignored rather than audited).
    """

    rule: str = "?"
    description: str = ""

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        self.findings: list = []

    @classmethod
    def applicable(cls, ctx: LintContext) -> bool:
        return True

    def add(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            LintFinding(self.rule, self.ctx.path, getattr(node, "lineno", 0), message)
        )


@register_pass
class WallClockPass(LintPass):
    rule = "wall-clock"
    description = "no ambient entropy / wall clock in simulation packages"

    @classmethod
    def applicable(cls, ctx: LintContext) -> bool:
        return ctx.deterministic

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in WALL_CLOCK_MODULES:
                self.add(
                    node,
                    f"import of {alias.name!r} in a deterministic "
                    "simulation module (use simulated time / the "
                    "seeded workload RNG)",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module:
            root = node.module.split(".")[0]
            if root in WALL_CLOCK_MODULES:
                self.add(
                    node,
                    f"import from {node.module!r} in a deterministic "
                    "simulation module",
                )
        self.generic_visit(node)


@register_pass
class SchedEntropyPass(LintPass):
    rule = "sched-entropy"
    description = "service layer admits no wall clock or unseeded randomness"

    @classmethod
    def applicable(cls, ctx: LintContext) -> bool:
        # The sched package sits above the deterministic simulation core
        # (so it is not in DETERMINISTIC_PACKAGES), but its whole
        # contract is replayable scenarios: a schedule or interleaving
        # that consulted the host would make `repro serve` reports
        # unreproducible.  All randomness must flow through the seeded
        # repro.workloads.rng streams and all time must be simulated.
        parts = os.path.normpath(ctx.path).split(os.sep)
        if "repro" not in parts:
            return False
        tail = parts[parts.index("repro") + 1 :]
        return bool(tail) and tail[0] == "sched"

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in WALL_CLOCK_MODULES:
                self.add(
                    node,
                    f"import of {alias.name!r} in the service layer: "
                    "schedules and interleavings must be pure functions "
                    "of the seeded config (use repro.workloads.rng and "
                    "simulated cycles)",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module:
            root = node.module.split(".")[0]
            if root in WALL_CLOCK_MODULES:
                self.add(
                    node,
                    f"import from {node.module!r} in the service layer "
                    "(use repro.workloads.rng and simulated cycles)",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # An RNG constructed without an explicit seed falls back to host
        # entropy — the one way a seeded import policy can still leak.
        callee = None
        if isinstance(node.func, ast.Name):
            callee = node.func.id
        elif isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        if callee in ("Random", "SystemRandom", "default_rng") and not (
            node.args or node.keywords
        ):
            self.add(
                node,
                f"unseeded {callee}() in the service layer: pass an "
                "explicit seed (or use repro.workloads.rng.thread_rng)",
            )
        self.generic_visit(node)


@register_pass
class StatsCounterPass(LintPass):
    rule = "stats-counter"
    description = "stats writes must target declared MachineStats fields"

    def _check_target(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        value = target.value
        if not (isinstance(value, ast.Attribute) and value.attr in ("stats", "_stats")):
            return
        if target.attr not in self.ctx.stats_fields:
            self.add(
                target,
                f"write to undeclared stats counter {target.attr!r} "
                "(declare it on MachineStats)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)


@register_pass
class FloatEqPass(LintPass):
    rule = "float-eq"
    description = "no exact ==/!= between cycle-time floats"

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_none_constant(left) or _is_none_constant(right):
                continue
            name = _time_identifier(left) or _time_identifier(right)
            if name is not None:
                self.add(
                    node,
                    f"exact ==/!= on cycle-time value {name!r} "
                    "(compare with a tolerance, or annotate the sentinel)",
                )
        self.generic_visit(node)


@register_pass
class EventKindPass(LintPass):
    rule = "event-kind"
    description = "emitted event kinds must be registered"

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            kind = node.args[1].value
            if kind not in self.ctx.event_kinds:
                self.add(
                    node,
                    f"emit of unregistered event kind {kind!r} "
                    "(register it in repro.sim.events.EVENT_KINDS)",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# Driving the passes + the suppression audit
# ----------------------------------------------------------------------
def _comment_lines(source: str) -> dict:
    """``lineno -> comment text`` for every real comment token.

    Tokenizing (rather than scanning raw lines) keeps docstrings that
    merely *mention* the allow syntax out of the audit.
    """
    comments: dict = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except tokenize.TokenError:
        pass
    return comments


def _audit_suppressions(
    path: str, source: str, raw: list, active_rules: set
) -> list:
    """Stale ``lint: allow`` marks: no finding of that rule on the line.

    Marks naming a rule whose pass did not run on this file (e.g. a
    ``wall-clock`` allow outside the deterministic packages) are skipped
    — the pass could not have fired there, so the mark's staleness is
    unknowable, and flagging it would punish moving a file.
    """
    fired = {(finding.line, finding.rule) for finding in raw}
    stale: list = []
    for lineno, text in sorted(_comment_lines(source).items()):
        for rule in _ALLOW_RE.findall(text):
            if rule == STALE_SUPPRESSION:
                continue
            if rule not in PASSES:
                stale.append(
                    LintFinding(
                        STALE_SUPPRESSION,
                        path,
                        lineno,
                        f"allow({rule}) names no registered lint pass",
                    )
                )
            elif rule in active_rules and (lineno, rule) not in fired:
                stale.append(
                    LintFinding(
                        STALE_SUPPRESSION,
                        path,
                        lineno,
                        f"allow({rule}) suppresses nothing: the rule no "
                        "longer fires on this line (remove the comment)",
                    )
                )
    return stale


def lint_file(
    path: str,
    stats_fields: Optional[frozenset] = None,
    event_kinds: Optional[frozenset] = None,
    audit_suppressions: bool = True,
) -> list:
    """Lint one file through every applicable registered pass.

    Returns surviving (unsuppressed) findings, plus — when
    ``audit_suppressions`` — a ``stale-suppression`` finding for every
    ``lint: allow`` comment that suppressed nothing.
    """
    if stats_fields is None:
        stats_fields = declared_stats_fields()
    if event_kinds is None:
        event_kinds = registered_event_kinds()
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    ctx = LintContext(
        path, stats_fields, event_kinds, deterministic=_deterministic_module(path)
    )
    raw: list = []
    active_rules: set = set()
    for cls in PASSES.values():
        if not cls.applicable(ctx):
            continue
        active_rules.add(cls.rule)
        lint_pass = cls(ctx)
        lint_pass.visit(tree)
        raw.extend(lint_pass.findings)
    lines = source.splitlines()
    kept = []
    for finding in raw:
        line_text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        if f"{_ALLOW_MARK}{finding.rule})" in line_text:
            continue
        kept.append(finding)
    if audit_suppressions:
        kept.extend(_audit_suppressions(path, source, raw, active_rules))
    return kept


def lint_paths(paths: Iterable[str], audit_suppressions: bool = True) -> list:
    """Lint files and directory trees; returns all findings, sorted."""
    stats_fields = declared_stats_fields()
    event_kinds = registered_event_kinds()
    files: list = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            files.append(path)
    findings: list = []
    for path in sorted(files):
        findings.extend(
            lint_file(
                path,
                stats_fields,
                event_kinds,
                audit_suppressions=audit_suppressions,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
