"""Vector-clock happens-before race detection over compiled trace columns.

The dynamic checker replays a cell under one deterministic interleaving,
so unsynchronized cross-thread accesses to the same NVRAM word can never
manifest as a persist-ordering violation — the replay serializes them.
This module closes that blind spot *statically*: it walks each thread's
compiled op columns (:class:`~repro.sim.ctrace.CompiledThread`) once and
flags every pair of same-word accesses, at least one a write, that no
happens-before edge orders.

Compiled traces carry no synchronization ops today — workloads partition
the heap per thread precisely so their recorded streams are
interleaving-independent (the ``trace_compilable`` contract).  A clean
race report is therefore the *proof obligation* behind that contract:
if a workload ever touches a shared word, the detector fails the cell
before replay could silently pick one winner.  The detector still
implements the full vector-clock algebra (``acquire``/``release`` edges)
so synthetic streams and future sync-carrying traces check correctly.

The algorithm is the classic epoch-optimized FastTrack shape: per word,
the last write is a single ``(tid, clock)`` epoch and reads collapse to
a per-tid clock map; a race is an access not ordered after the prior
epoch under the accessor's vector clock.

Addresses may be symbolic block tokens (see :mod:`repro.sim.ctrace`):
distinct blocks never alias, and offsets within a block compare exactly
like real addresses, so symbolic and real words mix freely in one index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.ctrace import (
    K_FREE,
    K_READ,
    K_TX_BEGIN,
    K_TX_COMMIT,
    K_WRITE,
    CompiledTrace,
)

_WORD = 8


def _word_base(addr: int) -> int:
    return addr - (addr % _WORD)


@dataclass(frozen=True)
class RaceAccess:
    """One side of a racy pair."""

    tid: int
    op_index: int
    kind: str  # "read" | "write" | "free"

    def to_dict(self) -> dict:
        return {"tid": self.tid, "op_index": self.op_index, "kind": self.kind}


@dataclass(frozen=True)
class Race:
    """Two unordered same-word accesses, at least one a write."""

    word: int
    first: RaceAccess
    second: RaceAccess

    def to_dict(self) -> dict:
        return {
            "word": self.word,
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
        }

    def render(self) -> str:
        return (
            f"race on word {self.word:#x}: "
            f"tid {self.first.tid} op {self.first.op_index} ({self.first.kind}) "
            f"vs tid {self.second.tid} op {self.second.op_index} "
            f"({self.second.kind})"
        )


@dataclass
class RaceReport:
    """Outcome of one trace's happens-before analysis."""

    races: list = field(default_factory=list)
    words_tracked: int = 0
    accesses: int = 0
    truncated: bool = False
    """True when the per-report race cap was hit (more races exist)."""

    @property
    def clean(self) -> bool:
        return not self.races

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "races": [race.to_dict() for race in self.races],
            "words_tracked": self.words_tracked,
            "accesses": self.accesses,
            "truncated": self.truncated,
        }

    def render(self) -> str:
        if self.clean:
            return (
                f"hb: clean ({self.accesses} accesses over "
                f"{self.words_tracked} words)"
            )
        lines = [f"hb: {len(self.races)} race(s)"]
        lines.extend(race.render() for race in self.races)
        if self.truncated:
            lines.append("  ... report truncated")
        return "\n".join(lines)


@dataclass
class _WordState:
    """Per-word access history, epoch-compressed."""

    write: Optional[tuple] = None  # (tid, clock, op_index, kind)
    reads: dict = field(default_factory=dict)  # tid -> (clock, op_index)


class RaceDetector:
    """Incremental vector-clock race detector.

    Feed accesses through :meth:`read` / :meth:`write` (word-granular
    internally) and synchronization through :meth:`acquire` /
    :meth:`release`; each thread's local clock advances one tick per
    access, so op indices double as intra-thread ordering.
    """

    def __init__(self, max_races: int = 16) -> None:
        self._vc: dict = {}  # tid -> {tid -> clock}
        self._sync: dict = {}  # sync object -> {tid -> clock}
        self._words: dict = {}  # word -> _WordState
        self._max_races = max_races
        self.report = RaceReport()

    # -- clock plumbing ------------------------------------------------
    def _clock(self, tid: int) -> dict:
        vc = self._vc.get(tid)
        if vc is None:
            vc = {tid: 0}
            self._vc[tid] = vc
        return vc

    def _tick(self, tid: int) -> int:
        vc = self._clock(tid)
        vc[tid] += 1
        return vc[tid]

    def acquire(self, tid: int, obj) -> None:
        """Join the releasing clock of ``obj`` into ``tid``'s clock."""
        vc = self._clock(tid)
        for other, clock in self._sync.get(obj, {}).items():
            if clock > vc.get(other, 0):
                vc[other] = clock
        vc[tid] += 1

    def release(self, tid: int, obj) -> None:
        """Publish ``tid``'s clock on ``obj`` for later acquirers."""
        vc = self._clock(tid)
        vc[tid] += 1
        published = self._sync.setdefault(obj, {})
        for other, clock in vc.items():
            if clock > published.get(other, 0):
                published[other] = clock

    # -- access recording ----------------------------------------------
    def _race(self, word: int, prior: tuple, tid: int, op: int, kind: str) -> None:
        if len(self.report.races) >= self._max_races:
            self.report.truncated = True
            return
        self.report.races.append(
            Race(
                word,
                RaceAccess(prior[0], prior[2], prior[3]),
                RaceAccess(tid, op, kind),
            )
        )

    def _word(self, word: int) -> _WordState:
        state = self._words.get(word)
        if state is None:
            state = _WordState()
            self._words[word] = state
        return state

    def read(self, tid: int, addr: int, size: int, op_index: int) -> None:
        """A read of ``[addr, addr + size)`` by ``tid``."""
        vc = self._clock(tid)
        clock = self._tick(tid)
        self.report.accesses += 1
        word = _word_base(addr)
        end = addr + size
        while word < end:
            state = self._word(word)
            prior = state.write
            if prior is not None and prior[0] != tid and prior[1] > vc.get(prior[0], 0):
                self._race(word, prior, tid, op_index, "read")
            state.reads[tid] = (clock, op_index)
            word += _WORD

    def write(
        self, tid: int, addr: int, size: int, op_index: int, kind: str = "write"
    ) -> None:
        """A write of ``[addr, addr + size)`` by ``tid``."""
        vc = self._clock(tid)
        clock = self._tick(tid)
        self.report.accesses += 1
        word = _word_base(addr)
        end = addr + size
        while word < end:
            state = self._word(word)
            prior = state.write
            if prior is not None and prior[0] != tid and prior[1] > vc.get(prior[0], 0):
                self._race(word, prior, tid, op_index, kind)
            else:
                for rtid, (rclock, rop) in state.reads.items():
                    if rtid != tid and rclock > vc.get(rtid, 0):
                        self._race(word, (rtid, rclock, rop, "read"), tid, op_index, kind)
                        break
            state.write = (tid, clock, op_index, kind)
            state.reads.clear()
            word += _WORD

    def finish(self) -> RaceReport:
        self.report.words_tracked = len(self._words)
        return self.report


def detect_races(trace: CompiledTrace, max_races: int = 16) -> RaceReport:
    """Run the detector over every thread of a compiled trace.

    Each thread's columns are walked once, in op order (intra-thread
    program order is the only ordering edge compiled traces carry).
    Transaction boundaries are *not* treated as synchronization: the
    designs under study order persists, they do not provide isolation,
    so two threads writing one word remains a race even inside
    transactions.
    """
    detector = RaceDetector(max_races=max_races)
    for tid, col in enumerate(trace.thread_cols):
        for i, kind, a, b in col.iter_ops():
            if kind == K_READ:
                detector.read(tid, a, b, i)
            elif kind == K_WRITE:
                for _j, addr, length, _sym in col.write_pieces(a, b):
                    detector.write(tid, addr, length, i)
            elif kind == K_FREE:
                # Freeing returns the block to the shared allocator; the
                # *allocation* path is runtime-synchronized, but a free
                # racing an access from another thread is still a bug.
                detector.write(tid, a, b, i, kind="free")
            elif kind in (K_TX_BEGIN, K_TX_COMMIT):
                # Advance the clock so op indices stay monotone ticks.
                detector._tick(tid)
    return detector.finish()
