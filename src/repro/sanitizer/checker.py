"""The dynamic persistency-ordering checker (psan).

:class:`PersistOrderChecker` consumes the trace-event stream of one run
(see :mod:`repro.sim.events` for the schema) and verifies the ordering
invariants the paper's designs claim — see :data:`~repro.sanitizer.rules
.RULES` for the rule-by-rule statement.

The checker is a pure stream consumer: it never touches the machine, so
it can run live (subscribed to a :class:`~repro.sim.trace.Tracer`) or
offline over a saved JSONL trace.  Two structural facts about the stream
shape how it works:

* **Completion times are future values.**  ``nvram_write`` events are
  emitted when a write is *posted*, carrying the (already computed)
  completion time.  Rules that compare durability instants therefore
  accumulate observations during the stream and evaluate at
  :meth:`finish`, when every completion referenced has been seen.
* **Placement precedes the store.**  Both the hardware engine and the
  software runtime emit ``log_place`` before the corresponding ``store``
  event, so per-store rules (undo presence) can be checked inline.

Transactions are joined by thread id: the runner binds ``tid ==
core_id``, records carry ``tid`` in their headers, and ``store`` events
are attributed to the open transaction of their core's thread.  Physical
transaction IDs recycle (16-bit field), so they are reported but never
used as a join key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.design import DesignSpec, resolve_design
from .rules import (
    LOGGING_RULES,
    RULES,
    PsanDiagnostic,
    PsanReport,
    claims_guarantee,
)

_EPS = 1e-6
_WORD = 8

# Backwards-compatible aliases; the metadata now lives in rules.py where
# the static verifier shares it.
_LOGGING_RULES = LOGGING_RULES
_claims_guarantee = claims_guarantee


def _word_base(addr: int) -> int:
    return addr - (addr % _WORD)


@dataclass
class _Rec:
    """One placed log record, as seen by the checker."""

    kind: str
    txid: int
    tid: int
    addr: Optional[int]
    has_undo: bool
    has_redo: bool
    place_time: float
    entry_addr: int
    slot: int
    base: int
    durable: Optional[float] = None
    force_completion: Optional[float] = None
    displaced_dirty: bool = False


@dataclass
class _Txn:
    """One transaction's accumulated state."""

    tid: int
    txid: int
    begin_time: float
    stores: dict = field(default_factory=dict)  # piece addr -> store time
    word_stores: dict = field(default_factory=dict)  # word base -> set of piece addrs
    logged: dict = field(default_factory=dict)  # piece addr -> _Rec (DATA)
    records: list = field(default_factory=list)  # all DATA _Recs, in order
    commit_rec: Optional[_Rec] = None
    commit_time: Optional[float] = None
    reported: Optional[float] = None

    #: Minimum NVRAM completion of a heap write covering each stored
    #: piece, observed after the store (None until seen).
    data_durable: dict = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        return self.commit_time is not None

    def commit_durable(self) -> Optional[float]:
        if self.commit_rec is None:
            return None
        return self.commit_rec.durable


class PersistOrderChecker:
    """Streaming verifier for the paper's persistency-ordering rules."""

    def __init__(self) -> None:
        self.policy: Optional[DesignSpec] = None
        self._enabled = True
        self._heap_base = 0
        self._heap_limit = 0
        self._entry_size = 64
        self._log_regions: list = []
        self._open: dict = {}  # tid -> _Txn
        self._last_closed: dict = {}  # tid -> _Txn
        self._txns: list = []
        self._word_owner: dict = {}  # word base -> _Txn
        self._pending_by_entry: dict = {}  # entry addr -> _Rec awaiting durability
        self._heap_obs: list = []  # (word base, completion, owner _Txn)
        self._slot_torn: dict = {}  # (log base, slot) -> last torn bit
        self._last_push: dict = {}  # buffer id -> last completion
        self._max_record_durable = 0.0  # latest known record completion
        self._crashed = False
        self._events = 0
        self.diagnostics: list = []
        self.tracer = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @staticmethod
    def meta_for(machine) -> dict:
        """The ``meta`` event detail describing ``machine``'s geometry."""
        return {
            "policy": machine.policy.value,
            "heap_base": machine.heap_base,
            "heap_limit": machine.heap_limit,
            "line_size": machine.config.line_size,
            "log_entry_size": machine.config.logging.log_entry_size,
            "log_regions": [
                [log.base, log.num_entries * log.entry_size] for log in machine.logs
            ],
        }

    @classmethod
    def attach(cls, machine, tracer=None, capacity: int = 1_000_000):
        """Attach a fresh checker (and tracer, unless given) to ``machine``.

        Emits the ``meta`` event into the stream so a trace saved from
        this tracer can be re-checked offline, then subscribes the
        checker.  Returns the checker; its :attr:`tracer` is the tracer.
        """
        from ..sim.trace import Tracer

        if tracer is None:
            tracer = Tracer(capacity=capacity)
        checker = cls()
        machine.tracer = tracer
        tracer.subscribe(checker.feed)
        tracer.emit(0.0, "meta", -1, **cls.meta_for(machine))
        checker.tracer = tracer
        return checker

    @classmethod
    def check_events(cls, events: Iterable) -> PsanReport:
        """Run the checker over an iterable of already-recorded events."""
        checker = cls()
        for event in events:
            checker.feed(event)
        return checker.finish()

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def feed(self, event) -> None:
        """Consume one :class:`~repro.sim.trace.TraceEvent`."""
        self._events += 1
        if not self._enabled:
            return
        handler = self._DISPATCH.get(event.kind)
        if handler is not None:
            handler(self, event)

    def _on_meta(self, event) -> None:
        d = event.detail
        # The meta event carries the design's name (canonical or a
        # mechanism string); both resolve through the registry, so rule
        # gating works for custom ablation specs too.
        self.policy = resolve_design(d["policy"])
        self._heap_base = d["heap_base"]
        self._heap_limit = d["heap_limit"]
        self._entry_size = d.get("log_entry_size", 64)
        self._log_regions = [tuple(region) for region in d.get("log_regions", ())]
        if not (self.policy.uses_hw_logging or self.policy.uses_sw_logging):
            # No log backend, no persistence claim: nothing to check.
            self._enabled = False

    def _on_tx_begin(self, event) -> None:
        tid = event.detail["tid"]
        self._open[tid] = _Txn(tid, event.detail["txid"], event.time)

    def _on_tx_commit(self, event) -> None:
        tid = event.detail["tid"]
        txn = self._open.pop(tid, None)
        if txn is None:
            return
        txn.commit_time = event.time
        self._last_closed[tid] = txn
        self._txns.append(txn)

    def _on_commit_reported(self, event) -> None:
        txn = self._last_closed.get(event.detail["tid"])
        if txn is not None and txn.reported is None:
            txn.reported = event.detail["durable"]

    def _on_store(self, event) -> None:
        d = event.detail
        addr = d["addr"]
        if not (self._heap_base <= addr < self._heap_limit):
            return
        tid = event.core  # runner convention: tid == core_id
        txn = self._open.get(tid)
        word = _word_base(addr)
        if txn is None:
            self._check_post_txn_store(event, tid, addr, word)
            return
        txn.stores[addr] = event.time
        txn.word_stores.setdefault(word, set()).add(addr)
        self._word_owner[word] = txn
        # undo-missing: an in-place store during an open transaction must
        # be preceded by an undo-carrying DATA record for that word
        # (software redo logging defers the store instead, so its
        # transactional writes never reach this path).
        if self.policy.defers_in_place_stores:
            return
        rec = txn.logged.get(addr)
        if rec is None or not rec.has_undo:
            why = (
                "no log record placed"
                if rec is None
                else "record placed but carries no undo value"
            )
            self._report(
                "undo-missing",
                f"in-place store at {addr:#x} during open transaction "
                f"{txn.txid} has no undo record ({why})",
                event.time,
                core=event.core,
                addr=addr,
                txid=txn.txid,
                tid=tid,
                provenance=(
                    f"{txn.begin_time:.0f} tx_begin tid={tid} txid={txn.txid}",
                    f"{event.time:.0f} store core={event.core} addr={addr:#x}",
                ),
            )

    def _check_post_txn_store(self, event, tid: int, addr: int, word: int) -> None:
        """A timed heap store outside any transaction.

        Software redo logging legitimately flushes its deferred in-place
        stores right after commit; those target words of the just-committed
        transaction's logged write set.  Anything else is an unlogged
        persistent mutation.
        """
        last = self._last_closed.get(tid)
        if (
            self.policy.defers_in_place_stores
            and last is not None
            and addr in last.logged
        ):
            # The deferred store's durability feeds redo-missing's data
            # tracking for the owning transaction.
            last.stores.setdefault(addr, event.time)
            last.word_stores.setdefault(word, set()).add(addr)
            self._word_owner[word] = last
            return
        self._report(
            "unlogged-mutation",
            f"persistent heap store at {addr:#x} outside any transaction",
            event.time,
            core=event.core,
            addr=addr,
            tid=tid,
            provenance=(
                f"{event.time:.0f} store core={event.core} addr={addr:#x} "
                f"(no open transaction for tid={tid})",
            ),
        )

    def _on_log_place(self, event) -> None:
        d = event.detail
        rec = _Rec(
            kind=d["kind"],
            txid=d["txid"],
            tid=d["tid"],
            addr=d["addr"],
            has_undo=bool(d["undo"]),
            has_redo=bool(d["redo"]),
            place_time=event.time,
            entry_addr=d["entry_addr"],
            slot=d["slot"],
            base=d["base"],
            durable=d["release"],
            force_completion=d.get("force_completion"),
            displaced_dirty=bool(d.get("displaced_dirty")),
        )
        if rec.durable is None:
            # Software record: durability resolves when the WCB-drained
            # line's NVRAM write is observed for this entry.
            self._pending_by_entry[rec.entry_addr] = rec
        else:
            self._max_record_durable = max(self._max_record_durable, rec.durable)
        txn = self._open.get(rec.tid)
        if txn is not None:
            if rec.kind == "DATA" and rec.addr is not None:
                txn.logged[rec.addr] = rec
                txn.records.append(rec)
            elif rec.kind == "COMMIT":
                txn.commit_rec = rec
        # torn-parity: each pass over the circular log flips the bit.
        key = (rec.base, rec.slot)
        prev = self._slot_torn.get(key)
        if prev is not None and prev == d["torn"]:
            self._report(
                "torn-parity",
                f"record overwrote log slot {rec.slot} (base {rec.base:#x}) "
                f"without flipping the torn bit (still {d['torn']})",
                event.time,
                core=event.core,
                txid=rec.txid,
                tid=rec.tid,
                provenance=(
                    f"{event.time:.0f} log_place slot={rec.slot} torn={d['torn']}",
                ),
            )
        self._slot_torn[key] = d["torn"]
        # wrap-overwrite: overwriting an entry whose data line is dirty
        # requires a completed forced write-back ordered before the new
        # record's durability.
        if rec.displaced_dirty:
            if rec.force_completion is None:
                self._report(
                    "wrap-overwrite",
                    f"log wrap overwrote slot {rec.slot} whose data line "
                    f"{d['displaced_line']:#x} was dirty, with no forced "
                    "write-back",
                    event.time,
                    core=event.core,
                    addr=d["displaced_line"],
                    txid=rec.txid,
                    tid=rec.tid,
                    provenance=(
                        f"{event.time:.0f} log_place slot={rec.slot} "
                        f"displaced_line={d['displaced_line']:#x} dirty, no force",
                    ),
                )
            elif rec.durable is not None:
                self._check_wrap_order(rec)
        # Eagerly checked when durability is already known; software
        # records re-check at durability resolution / finish.

    def _check_wrap_order(self, rec: _Rec) -> None:
        if (
            rec.force_completion is not None
            and rec.durable is not None
            and rec.force_completion > rec.durable + _EPS
        ):
            self._report(
                "wrap-overwrite",
                f"record overwriting slot {rec.slot} became durable at "
                f"{rec.durable:.0f}, before the displaced line's forced "
                f"write-back completed at {rec.force_completion:.0f}",
                rec.place_time,
                txid=rec.txid,
                tid=rec.tid,
                provenance=(
                    f"{rec.place_time:.0f} log_place slot={rec.slot} "
                    f"force_completion={rec.force_completion:.0f}",
                    f"record durable={rec.durable:.0f}",
                ),
            )

    def _on_log_push(self, event) -> None:
        d = event.detail
        buffer = d.get("buffer", 0)
        completion = d["completion"]
        prev = self._last_push.get(buffer)
        if prev is not None and completion + _EPS < prev:
            self._report(
                "fifo-order",
                f"log buffer {buffer} completion went backwards "
                f"({completion:.0f} after {prev:.0f}) — records would "
                "reach NVRAM out of store-order",
                event.time,
                provenance=(
                    f"{event.time:.0f} log_push buffer={buffer} "
                    f"completion={completion:.0f} (prev {prev:.0f})",
                ),
            )
        if prev is None or completion > prev:
            self._last_push[buffer] = completion

    def _on_nvram_write(self, event) -> None:
        d = event.detail
        addr = d["addr"]
        size = d["size"]
        completion = d["completion"]
        if self._heap_base <= addr < self._heap_limit:
            self._observe_heap_write(addr, size, completion)
            return
        for base, region_size in self._log_regions:
            if base <= addr < base + region_size:
                self._resolve_log_write(addr, size, completion)
                return

    def _observe_heap_write(self, addr: int, size: int, completion: float) -> None:
        end = addr + size
        word = _word_base(addr)
        while word < end:
            owner = self._word_owner.get(word)
            if owner is not None:
                for piece in owner.word_stores.get(word, ()):
                    known = owner.data_durable.get(piece)
                    if known is None or completion < known:
                        owner.data_durable[piece] = completion
                self._heap_obs.append((word, completion, owner))
            word += _WORD

    def _resolve_log_write(self, addr: int, size: int, completion: float) -> None:
        entry = addr - (addr % self._entry_size)
        end = addr + size
        while entry < end:
            rec = self._pending_by_entry.get(entry)
            if rec is not None and rec.durable is None:
                rec.durable = completion
                self._max_record_durable = max(self._max_record_durable, completion)
                self._check_wrap_order(rec)
            entry += self._entry_size

    def _on_design_switch(self, event) -> None:
        """switch-epoch-clean: nothing may straddle the epoch barrier.

        By the time the ``design_switch`` event appears in the stream the
        barrier's own write-backs have already been observed (NVRAM
        emits ``nvram_write`` at post time, and the machine emits the
        switch event only after forcing), so three stream-visible facts
        must hold at the barrier instant: no transaction is open, no
        placed log record is still awaiting durability (or becomes
        durable after the barrier), and every logged-and-stored heap
        piece of every closed transaction has reached NVRAM.
        """
        barrier = event.time
        d = event.detail
        label = f"{d.get('old', '?')} -> {d.get('new', '?')}"
        for tid in sorted(self._open):
            txn = self._open[tid]
            self._report(
                "switch-epoch-clean",
                f"design switch ({label}) at {barrier:.0f} with "
                f"transaction {txn.txid} still open on tid {tid} — its "
                "pre-switch log records straddle the epoch barrier",
                barrier,
                txid=txn.txid,
                tid=tid,
                provenance=(
                    f"{txn.begin_time:.0f} tx_begin tid={tid} txid={txn.txid}",
                    f"{barrier:.0f} design_switch {label}",
                ),
            )
        for rec in self._pending_by_entry.values():
            if rec.durable is not None:
                continue
            self._report(
                "switch-epoch-clean",
                f"design switch ({label}) at {barrier:.0f} while the log "
                f"record in slot {rec.slot} (entry {rec.entry_addr:#x}) "
                "had not drained to NVRAM",
                barrier,
                txid=rec.txid,
                tid=rec.tid,
                provenance=(
                    f"{rec.place_time:.0f} log_place slot={rec.slot} "
                    "(no matching nvram_write)",
                    f"{barrier:.0f} design_switch {label}",
                ),
            )
        if self._max_record_durable > barrier + _EPS:
            self._report(
                "switch-epoch-clean",
                f"design switch ({label}) at {barrier:.0f} before the log "
                "FIFO settled: a pre-switch record completes at "
                f"{self._max_record_durable:.0f}, after the barrier",
                barrier,
                provenance=(
                    f"record durable={self._max_record_durable:.0f}",
                    f"{barrier:.0f} design_switch {label}",
                ),
            )
        # Un-written-back logged data: each heap word's *current* content
        # belongs to its latest owning transaction (older owners were
        # overwritten; their line state no longer exists to force).  A
        # logged-and-stored piece of that owner with no NVRAM completion
        # by the barrier means the barrier left a logged line dirty.
        open_txns = set(id(txn) for txn in self._open.values())
        for word in sorted(self._word_owner):
            owner = self._word_owner[word]
            if id(owner) in open_txns:
                continue  # already reported as a straddling open txn
            for piece in sorted(owner.word_stores.get(word, ())):
                if piece not in owner.logged or piece not in owner.stores:
                    continue
                durable = owner.data_durable.get(piece)
                if durable is not None and durable <= barrier + _EPS:
                    continue
                where = (
                    "was never written back"
                    if durable is None
                    else f"reaches NVRAM only at {durable:.0f}"
                )
                self._report(
                    "switch-epoch-clean",
                    f"design switch ({label}) at {barrier:.0f} while the "
                    f"logged line for {piece:#x} (transaction {owner.txid}) "
                    f"{where} — the barrier must force logged-dirty "
                    "lines durable",
                    barrier,
                    addr=piece,
                    txid=owner.txid,
                    tid=owner.tid,
                    provenance=(
                        f"{owner.stores[piece]:.0f} store addr={piece:#x}",
                        f"{barrier:.0f} design_switch {label}",
                    ),
                )
                break  # one diagnostic per word keeps reports readable
        if d.get("truncated"):
            # A content switch truncates the ring at the barrier: every
            # slot restarts empty on pass parity 1, so the recorded torn
            # bits no longer describe what the next placement overwrites.
            self._slot_torn.clear()
            self._pending_by_entry.clear()

    def _on_crash(self, event) -> None:
        self._crashed = True

    _DISPATCH = {
        "meta": _on_meta,
        "tx_begin": _on_tx_begin,
        "tx_commit": _on_tx_commit,
        "commit_reported": _on_commit_reported,
        "store": _on_store,
        "log_place": _on_log_place,
        "log_push": _on_log_push,
        "nvram_write": _on_nvram_write,
        "design_switch": _on_design_switch,
        "crash": _on_crash,
    }

    # ------------------------------------------------------------------
    # End-of-stream evaluation
    # ------------------------------------------------------------------
    def finish(self) -> PsanReport:
        """Evaluate the completion-time rules and assemble the report.

        Call exactly once, after the run (or trace replay) has ended.
        """
        if self._enabled:
            for txn in self._txns:
                self._finish_txn(txn)
            self._finish_steal_order()
        return PsanReport(
            policy=self.policy.value if self.policy else "?",
            diagnostics=list(self.diagnostics),
            events_processed=self._events,
            txns_checked=len(self._txns),
            rules_checked=_LOGGING_RULES if self._enabled else (),
        )

    def _finish_txn(self, txn: _Txn) -> None:
        commit = txn.commit_rec
        commit_durable = txn.commit_durable()
        # commit-durability: the runtime must not report a durability
        # time earlier than the COMMIT record's actual NVRAM completion.
        if txn.reported is not None and commit is not None:
            if commit_durable is None:
                if not self._crashed:
                    self._report(
                        "commit-durability",
                        f"transaction {txn.txid} reported durable at "
                        f"{txn.reported:.0f} but its commit record never "
                        "reached NVRAM in the observed stream",
                        txn.commit_time or txn.reported,
                        txid=txn.txid,
                        tid=txn.tid,
                        provenance=(
                            f"{commit.place_time:.0f} log_place COMMIT "
                            f"slot={commit.slot} (no matching nvram_write)",
                            f"reported durable={txn.reported:.0f}",
                        ),
                    )
            elif txn.reported + _EPS < commit_durable:
                self._report(
                    "commit-durability",
                    f"transaction {txn.txid} reported durable at "
                    f"{txn.reported:.0f}, {commit_durable - txn.reported:.0f} "
                    "cycles before its commit record actually completed "
                    f"at {commit_durable:.0f}",
                    txn.commit_time or txn.reported,
                    txid=txn.txid,
                    tid=txn.tid,
                    provenance=(
                        f"{commit.place_time:.0f} log_place COMMIT "
                        f"slot={commit.slot}",
                        f"record durable={commit_durable:.0f}",
                        f"reported durable={txn.reported:.0f}",
                    ),
                )
        if commit is None or commit_durable is None:
            # Without a durable commit record the transaction rolls back
            # on a crash; the remaining rules are commit-conditioned.
            return
        for rec in txn.records:
            # commit-order: every DATA record durable no later than the
            # COMMIT record.
            if rec.durable is None:
                self._report(
                    "commit-order",
                    f"transaction {txn.txid}: DATA record for "
                    f"{rec.addr:#x} never became durable although the "
                    f"commit record completed at {commit_durable:.0f}",
                    rec.place_time,
                    addr=rec.addr,
                    txid=txn.txid,
                    tid=txn.tid,
                    provenance=(
                        f"{rec.place_time:.0f} log_place DATA slot={rec.slot}",
                        f"commit durable={commit_durable:.0f}",
                    ),
                )
            elif rec.durable > commit_durable + _EPS:
                self._report(
                    "commit-order",
                    f"transaction {txn.txid}: DATA record for {rec.addr:#x} "
                    f"became durable at {rec.durable:.0f}, after the commit "
                    f"record at {commit_durable:.0f}",
                    rec.place_time,
                    addr=rec.addr,
                    txid=txn.txid,
                    tid=txn.tid,
                    provenance=(
                        f"{rec.place_time:.0f} log_place DATA slot={rec.slot} "
                        f"durable={rec.durable:.0f}",
                        f"commit durable={commit_durable:.0f}",
                    ),
                )
            # redo-missing: once the commit record is durable the data
            # must be recoverable — either already durable in place, or
            # reconstructible from a redo value.
            if rec.has_redo or rec.addr is None:
                continue
            data_durable = txn.data_durable.get(rec.addr)
            if data_durable is None or data_durable > commit_durable + _EPS:
                where = (
                    "was never written back"
                    if data_durable is None
                    else f"became durable only at {data_durable:.0f}"
                )
                self._report(
                    "redo-missing",
                    f"transaction {txn.txid} committed durably at "
                    f"{commit_durable:.0f} but its store to {rec.addr:#x} "
                    f"{where} and its log record carries no redo value",
                    commit.place_time,
                    addr=rec.addr,
                    txid=txn.txid,
                    tid=txn.tid,
                    provenance=(
                        f"{txn.stores.get(rec.addr, rec.place_time):.0f} "
                        f"store addr={rec.addr:#x}",
                        f"{rec.place_time:.0f} log_place DATA (undo-only)",
                        f"commit durable={commit_durable:.0f}",
                    ),
                )

    def _finish_steal_order(self) -> None:
        for word, completion, owner in self._heap_obs:
            commit_durable = owner.commit_durable()
            if commit_durable is not None and commit_durable <= completion + _EPS:
                continue  # post-commit write-back: always fine
            # The transaction was uncommitted when this word reached
            # NVRAM — the "steal".  Some log record for the word must
            # have been durable by then.
            covered = False
            for piece in owner.word_stores.get(word, ()):
                rec = owner.logged.get(piece)
                if (
                    rec is not None
                    and rec.durable is not None
                    and rec.durable <= completion + _EPS
                ):
                    covered = True
                    break
            if not covered:
                self._report(
                    "steal-order",
                    f"heap word {word:#x} of uncommitted transaction "
                    f"{owner.txid} reached NVRAM at {completion:.0f} with no "
                    "log record durable by then",
                    completion,
                    addr=word,
                    txid=owner.txid,
                    tid=owner.tid,
                    provenance=(
                        f"{owner.begin_time:.0f} tx_begin tid={owner.tid}",
                        f"nvram_write word={word:#x} completion={completion:.0f}",
                        "commit record durable: "
                        + (
                            f"{commit_durable:.0f}"
                            if commit_durable is not None
                            else "never"
                        ),
                    ),
                )

    # ------------------------------------------------------------------
    def _report(
        self,
        rule: str,
        message: str,
        cycle: float,
        core: int = -1,
        addr: Optional[int] = None,
        txid: Optional[int] = None,
        tid: Optional[int] = None,
        provenance: tuple = (),
    ) -> None:
        assert rule in RULES, rule
        self.diagnostics.append(
            PsanDiagnostic(
                rule=rule,
                message=message,
                cycle=cycle,
                core=core,
                addr=addr,
                txid=txid,
                tid=tid,
                provenance=provenance,
            )
        )


# ----------------------------------------------------------------------
# Harness entry points
# ----------------------------------------------------------------------
def run_psan(
    benchmark: str,
    policy,
    threads: int = 1,
    txns_per_thread: int = 40,
    system=None,
    prepared=None,
    seed: int = 42,
    trace_path: Optional[str] = None,
    capacity: int = 1_000_000,
) -> PsanReport:
    """Run one (benchmark, policy, threads) cell under the sanitizer.

    Builds the machine through the standard runner with the checker
    attached before setup, so the stream covers exactly the timed
    execution.  ``trace_path`` additionally saves the raw event stream
    as JSONL for offline re-checking (``repro psan --from-trace``).

    Trace-compilable workloads run on the execution engine's via-API
    replay (the checker's tracer forces the event-exact engine, so the
    sanitized stream is bit-identical to interpretation —
    ``tests/sim/test_replay.py``); one decode then amortizes across the
    whole policy x threads matrix through the shared trace cache.
    """
    from ..harness.cache import shared_trace_cache, trace_enabled
    from ..harness.runner import RunConfig, prepare_workload, run_workload
    from ..workloads import make_microbenchmark

    if prepared is not None:
        workload = prepared.workload
    else:
        workload = make_microbenchmark(benchmark, seed=seed)
    holder: dict = {}

    def hook(machine) -> None:
        holder["checker"] = PersistOrderChecker.attach(machine, capacity=capacity)

    if trace_enabled() and getattr(workload, "trace_compilable", False):
        from ..sim.replay import compile_trace, run_compiled

        if prepared is None:
            prepared = prepare_workload(workload, system)
        trace_cache = shared_trace_cache()
        trace_key = trace_cache.key(
            prepared.system, workload, threads, txns_per_thread
        )
        trace = trace_cache.get(trace_key)
        if trace is None:
            trace = compile_trace(prepared, threads, txns_per_thread)
            trace_cache.put(trace_key, trace)
        outcome = run_compiled(
            trace,
            RunConfig(
                policy=policy,
                threads=threads,
                txns_per_thread=txns_per_thread,
                system=prepared.system,
                seed=seed,
            ),
            machine_hook=hook,
        )
    else:
        outcome = run_workload(
            workload,
            RunConfig(
                policy=policy,
                threads=threads,
                txns_per_thread=txns_per_thread,
                system=system,
                seed=seed,
            ),
            prepared=prepared,
            machine_hook=hook,
        )
    checker = holder["checker"]
    if trace_path is not None:
        checker.tracer.to_jsonl(trace_path)
    report = checker.finish()
    report.benchmark = benchmark
    report.threads = threads
    outcome.machine.nvram.recycle()
    return report


@dataclass
class PsanSweepReport:
    """Reports for a benchmark x threads x policy sanitizer matrix."""

    reports: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no cell of a *guaranteed* design has a violation.

        Designs without a persistence guarantee (``unsafe-base``,
        ``hw-rlog``, ``hw-ulog``) are expected to trip rules — their
        diagnostics are reported but do not fail the sweep.
        """
        return all(
            report.clean
            for report in self.reports
            if _claims_guarantee(report.policy)
        )

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "cells": [report.to_dict() for report in self.reports],
        }

    def render(self) -> str:
        # Composed design names (e.g. "hw+undo+redo+clwb+instant") can be
        # far wider than the canonical ones; size the policy column to
        # the longest rendered name so columns never shear.
        width = max(
            [len("policy")] + [len(report.policy) for report in self.reports]
        )
        lines = [
            f"{'benchmark':10s} {'threads':>7s} {'policy':{width}s} "
            f"{'events':>9s} {'txns':>6s} verdict",
            "-" * (width + 50),
        ]
        for report in self.reports:
            verdict = "clean"
            if not report.clean:
                fired = ",".join(sorted(report.rules_fired()))
                note = "" if _claims_guarantee(report.policy) else " (no guarantee claimed)"
                verdict = f"{len(report.diagnostics)} violation(s): {fired}{note}"
            lines.append(
                f"{report.benchmark:10s} "
                f"{report.threads:7d} "
                f"{report.policy:{width}s} "
                f"{report.events_processed:9d} {report.txns_checked:6d} "
                f"{verdict}"
            )
        return "\n".join(lines)
