"""Static persistency verifier: psan verdicts without replaying.

The dynamic checker (:mod:`repro.sanitizer.checker`) establishes each
cell's verdict by simulating it — every micro-op executes, every cache
line moves, and the checker watches the event stream.  This module
reaches the same verdicts *symbolically*: it walks a compiled trace's
columns (:mod:`repro.sim.ctrace`) exactly once, maintains per-address
abstract persist-states (logged-undo / logged-redo / written-back /
durable / torn-window), and drives the state transitions from the
design's predicate table (:meth:`~repro.core.design.DesignSpec
.predicate_table`) instead of from a machine.  The paper's central claim
— that persist ordering under hardware undo+redo logging is an
*architectural* property — is exactly what makes this possible: the
verdict depends on which mechanisms the design composes, not on the
timing of any particular execution.

Every rule's outcome is a :class:`StaticVerdict`: **proven** (with the
mechanism-level reason), **violated** (with a :class:`CounterExample`
carrying op indices the via-API replay engine can confirm — see
:func:`confirm_counterexample`), or **not-applicable** (designs without
a log backend claim nothing, mirroring the dynamic checker disabling
itself).

Proofs lean on four *architectural axioms* — facts about the simulated
mechanisms that hold for every trace, stated once here rather than
re-derived per cell:

A1 (placement order)
    A log record for a transactional store is placed before the store
    retires (software logging issues the record first; the hardware
    engine appends at store execution).
A2 (log-channel priority)
    Log channels (the per-core WCB's uncacheable stores, the per-thread
    hardware log FIFO) drain to NVRAM ahead of any later-issued data
    write-back of a covered line.
A3 (FIFO drains)
    Each buffer's completions are assigned in push order.
A4 (pass parity)
    The circular log flips the torn bit once per pass, so slot ``p`` on
    pass ``k`` carries bit ``k mod 2``.

The axioms themselves are *validated differentially*: the acceptance
gate (:func:`run_differential`) requires static and dynamic verdicts to
agree on every cell of the benchmark × design × threads matrix, and
every emitted counterexample to reproduce as a real dynamic diagnostic.

The one genuinely behavioural model the verifier carries is the
write-combining buffer: a software commit record is durable within the
run only once at least ``wcb_entries`` later records displace it
(:class:`_SwDrainModel`) — which is why ``unsafe-base`` trips
``redo-missing`` only from the second transaction on, exactly like the
dynamic checker.

Replication rules are verified over :class:`~repro.dist.ship
.ShipTimeline` *schedules* (the derived batch/append/ack structures,
not the event stream) by :func:`verify_ship_schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.design import CommitProtocol, resolve_design
from ..sim.ctrace import (
    K_TX_BEGIN,
    K_TX_COMMIT,
    K_WRITE,
    SYM_BASE,
    SYM_OFF_MASK,
    CompiledTrace,
)
from .hb import RaceReport, detect_races
from .rules import (
    LOGGING_RULES,
    REPLICATION_RULE_IDS,
    RULES,
    claims_guarantee,
    rules_for_design,
)

_EPS = 1e-6

PROVEN = "proven"
VIOLATED = "violated"
NOT_APPLICABLE = "not-applicable"


# ----------------------------------------------------------------------
# Verdict containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CounterExample:
    """A concrete witness for a violated rule, anchored in the trace.

    ``op_index`` indexes the owning thread's compiled op columns;
    ``addr`` may be a symbolic block token, which
    :func:`confirm_counterexample` relocates through the replay binding
    before matching it against the dynamic diagnostics.
    """

    rule: str
    tid: int
    op_index: int
    addr: Optional[int] = None
    piece_index: Optional[int] = None
    txn_ordinal: Optional[int] = None
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "tid": self.tid,
            "op_index": self.op_index,
            "addr": self.addr,
            "piece_index": self.piece_index,
            "txn_ordinal": self.txn_ordinal,
            "detail": self.detail,
        }

    def render(self) -> str:
        head = f"tid {self.tid} op {self.op_index}"
        if self.txn_ordinal is not None:
            head += f" txn#{self.txn_ordinal}"
        if self.addr is not None:
            head += f" addr {self.addr:#x}"
        return f"{head}: {self.detail}"


@dataclass(frozen=True)
class StaticVerdict:
    """Proof-or-counterexample outcome for one rule."""

    rule: str
    verdict: str  # PROVEN | VIOLATED | NOT_APPLICABLE
    reason: str
    counterexample: Optional[CounterExample] = None

    @property
    def violated(self) -> bool:
        return self.verdict == VIOLATED

    def to_dict(self) -> dict:
        data = {"rule": self.rule, "verdict": self.verdict, "reason": self.reason}
        if self.counterexample is not None:
            data["counterexample"] = self.counterexample.to_dict()
        return data

    def render(self) -> str:
        line = f"[{self.rule}] {self.verdict}: {self.reason}"
        if self.counterexample is not None:
            line += f"\n    witness {self.counterexample.render()}"
        return line


@dataclass
class StaticReport:
    """Outcome of statically verifying one (trace, design) cell."""

    policy: str = "?"
    benchmark: str = "?"
    threads: int = 0
    verdicts: dict = field(default_factory=dict)  # rule id -> StaticVerdict
    rules_checked: tuple = ()
    ops_examined: int = 0
    pieces_examined: int = 0
    txns_seen: int = 0
    races: Optional[RaceReport] = None

    @property
    def clean(self) -> bool:
        """True when no rule is violated (races reported separately)."""
        return not any(v.violated for v in self.verdicts.values())

    def rules_fired(self) -> set:
        """Violated rule ids — comparable to ``PsanReport.rules_fired``."""
        return {rule for rule, v in self.verdicts.items() if v.violated}

    def counterexamples(self) -> list:
        return [
            v.counterexample
            for v in self.verdicts.values()
            if v.counterexample is not None
        ]

    def cost(self) -> int:
        """Deterministic work counter: column entries examined once."""
        return self.ops_examined + self.pieces_examined

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "benchmark": self.benchmark,
            "threads": self.threads,
            "clean": self.clean,
            "rules_checked": list(self.rules_checked),
            "ops_examined": self.ops_examined,
            "pieces_examined": self.pieces_examined,
            "txns_seen": self.txns_seen,
            "verdicts": {rule: v.to_dict() for rule, v in self.verdicts.items()},
            "races": self.races.to_dict() if self.races is not None else None,
        }

    def render(self, proofs: bool = False) -> str:
        fired = sorted(self.rules_fired())
        verdict = "clean" if not fired else f"violates {','.join(fired)}"
        lines = [
            f"pstatic: {self.benchmark} @{self.threads}t {self.policy}: "
            f"{verdict} ({self.ops_examined} ops, {self.pieces_examined} "
            f"pieces, {self.txns_seen} txns, "
            f"{len(self.rules_checked)} rules)"
        ]
        for rule in self.rules_checked:
            v = self.verdicts[rule]
            if v.violated or proofs:
                lines.append("  " + v.render())
        if self.races is not None and not self.races.clean:
            lines.append("  " + self.races.render())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace facts: one walk over the columns
# ----------------------------------------------------------------------
@dataclass
class _Txn:
    """One transaction's statically-gathered shape."""

    ordinal: int
    begin_op: int
    commit_op: Optional[int]
    pieces: list = field(default_factory=list)  # (op, piece_index, addr, len)

    @property
    def committed(self) -> bool:
        return self.commit_op is not None


@dataclass
class _ThreadFacts:
    tid: int
    txns: list = field(default_factory=list)
    outside: list = field(default_factory=list)  # (op, piece_index, addr, sanctioned)
    ops: int = 0
    pieces: int = 0


def _gather(trace: CompiledTrace, defers: bool) -> list:
    """Walk every thread's columns once; returns per-thread facts.

    ``defers`` marks software-redo designs, whose runtime legitimately
    flushes a just-committed transaction's stores outside the span —
    compiled traces never contain such writes (the runtime emits them,
    not the workload), but synthetic analyzer inputs may, and the
    sanctioned-address check must match the dynamic checker's.
    """
    facts = []
    for tid, col in enumerate(trace.thread_cols):
        tf = _ThreadFacts(tid)
        current: Optional[_Txn] = None
        last_closed: Optional[_Txn] = None
        for i, kind, a, b in col.iter_ops():
            tf.ops += 1
            if kind == K_TX_BEGIN:
                current = _Txn(len(tf.txns), i, None)
                tf.txns.append(current)
            elif kind == K_TX_COMMIT:
                if current is not None:
                    current.commit_op = i
                    last_closed = current
                    current = None
            elif kind == K_WRITE:
                for j, addr, length, _sym in col.write_pieces(a, b):
                    tf.pieces += 1
                    if current is not None:
                        current.pieces.append((i, j, addr, length))
                    else:
                        sanctioned = (
                            defers
                            and last_closed is not None
                            and any(addr == p[2] for p in last_closed.pieces)
                        )
                        tf.outside.append((i, j, addr, sanctioned))
        facts.append(tf)
    return facts


class _SwDrainModel:
    """Which software commit records become durable within the run.

    Software log records are uncacheable stores through the placing
    core's write-combining buffer (capacity ``wcb_entries``); the buffer
    drains its oldest entry only under push pressure, and nothing
    flushes it at end of run.  A record at position ``p`` of a thread's
    ``n``-record stream therefore reaches NVRAM during the run iff
    ``p < n - wcb_entries`` — unless the design fences at commit, which
    flushes the buffer and makes every record durable immediately.
    """

    def __init__(self, tf: _ThreadFacts, wcb_entries: int) -> None:
        position = 0
        self._commit_pos: dict = {}
        for txn in tf.txns:
            position += 1  # BEGIN record, placed at tx_begin
            position += len(txn.pieces)  # one DATA record per piece
            if txn.committed:
                self._commit_pos[txn.ordinal] = position
                position += 1  # COMMIT record
        self._total = position
        self._wcb = wcb_entries

    def commit_drained(self, txn: _Txn) -> bool:
        pos = self._commit_pos.get(txn.ordinal)
        if pos is None:
            return False
        return pos < self._total - self._wcb

    def records(self) -> int:
        return self._total


def _records_for(tf: _ThreadFacts, hw: bool) -> int:
    """Log records thread ``tf`` places under a hw/sw backend."""
    total = 0
    for txn in tf.txns:
        if hw:
            # The hardware engine appends BEGIN lazily at the first
            # store and a COMMIT only for started transactions.
            if txn.pieces:
                total += 1 + len(txn.pieces) + (1 if txn.committed else 0)
        else:
            total += 1 + len(txn.pieces) + (1 if txn.committed else 0)
    return total


# ----------------------------------------------------------------------
# The verifier
# ----------------------------------------------------------------------
def verify_trace(
    trace: CompiledTrace,
    policy,
    system=None,
    hb: bool = True,
) -> StaticReport:
    """Statically verify every psan rule for (``trace``, ``policy``).

    ``system`` supplies the log/WCB geometry (defaults to the standard
    experiment configuration).  Set ``hb=False`` to skip the
    happens-before race pass.
    """
    spec = resolve_design(policy)
    if system is None:
        from ..harness.runner import default_experiment_config

        system = default_experiment_config()
    logging = system.logging

    report = StaticReport(policy=spec.value, threads=trace.threads)
    report.rules_checked = rules_for_design(spec)
    if not report.rules_checked:
        # No log backend: the dynamic checker disables itself; mirror it.
        report.verdicts = {
            rule: StaticVerdict(
                rule,
                NOT_APPLICABLE,
                "design has no log backend and claims no persistence",
            )
            for rule in RULES
        }
        report.ops_examined = trace.op_count()
        report.pieces_examined = trace.piece_count()
        if hb:
            report.races = detect_races(trace)
        return report

    pred = spec.predicate_table()
    fenced = pred["fenced_commit"]
    facts = _gather(trace, pred["defers_in_place_stores"])
    report.ops_examined = sum(tf.ops for tf in facts)
    report.pieces_examined = sum(tf.pieces for tf in facts)
    report.txns_seen = sum(len(tf.txns) for tf in facts)

    verdicts = report.verdicts

    # -- undo-missing --------------------------------------------------
    if pred["defers_in_place_stores"]:
        verdicts["undo-missing"] = StaticVerdict(
            "undo-missing",
            PROVEN,
            "software redo logging defers every in-place store past "
            "commit; no open transaction ever mutates the heap",
        )
    elif pred["logs_undo"]:
        verdicts["undo-missing"] = StaticVerdict(
            "undo-missing",
            PROVEN,
            "log content includes undo: a record carrying the old value "
            "is placed before every in-place store retires (A1)",
        )
    else:
        witness = _first_txn_piece(facts, committed_only=False)
        if witness is None:
            verdicts["undo-missing"] = StaticVerdict(
                "undo-missing", PROVEN, "vacuous: no transactional store"
            )
        else:
            tid, txn, op, j, addr = witness
            verdicts["undo-missing"] = StaticVerdict(
                "undo-missing",
                VIOLATED,
                "records carry no undo value, yet stores apply in place "
                "inside open transactions",
                CounterExample(
                    "undo-missing",
                    tid,
                    op,
                    addr=addr,
                    piece_index=j,
                    txn_ordinal=txn.ordinal,
                    detail=f"in-place store at {addr:#x} with a redo-only record",
                ),
            )

    # -- redo-missing --------------------------------------------------
    if pred["logs_redo"]:
        verdicts["redo-missing"] = StaticVerdict(
            "redo-missing",
            PROVEN,
            "log content includes redo: every DATA record carries the "
            "new value, so recovery replays any durably-committed "
            "transaction",
        )
    elif pred["uses_sw_logging"] and fenced and pred["uses_clwb_at_commit"]:
        verdicts["redo-missing"] = StaticVerdict(
            "redo-missing",
            PROVEN,
            "the write set is clwb-flushed and fenced before the commit "
            "record is even placed, so data is durable no later than any "
            "durable commit",
        )
    else:
        witness = _first_undrained_commit_witness(facts, spec, fenced, logging)
        if witness is None:
            verdicts["redo-missing"] = StaticVerdict(
                "redo-missing",
                PROVEN,
                "vacuous: no committed transaction's commit record "
                "becomes durable within the run (all remain buffered)",
            )
        else:
            tid, txn, op, j, addr = witness
            verdicts["redo-missing"] = StaticVerdict(
                "redo-missing",
                VIOLATED,
                "a commit record becomes durable while the data it "
                "covers is neither written back nor redo-logged",
                CounterExample(
                    "redo-missing",
                    tid,
                    op,
                    addr=addr,
                    piece_index=j,
                    txn_ordinal=txn.ordinal,
                    detail=(
                        f"store at {addr:#x} is unrecoverable once txn#"
                        f"{txn.ordinal}'s undo-only commit record lands"
                    ),
                ),
            )

    # -- commit-durability ---------------------------------------------
    if fenced:
        verdicts["commit-durability"] = StaticVerdict(
            "commit-durability",
            PROVEN,
            "fenced commit: the reported durability is the commit "
            "record's actual completion (wcb flush / fence / hw release)",
        )
    else:
        witness = _first_commit_record(facts, hw=pred["uses_hw_logging"])
        if witness is None:
            verdicts["commit-durability"] = StaticVerdict(
                "commit-durability", PROVEN, "vacuous: no commit record placed"
            )
        else:
            tid, txn = witness
            verdicts["commit-durability"] = StaticVerdict(
                "commit-durability",
                VIOLATED,
                "instant commit reports the core clock without awaiting "
                "the commit record's NVRAM completion",
                CounterExample(
                    "commit-durability",
                    tid,
                    txn.commit_op,
                    txn_ordinal=txn.ordinal,
                    detail=(
                        f"txn#{txn.ordinal} reports commit optimistically "
                        "at the core clock"
                    ),
                ),
            )

    # -- architectural-axiom rules ------------------------------------
    if pred["defers_in_place_stores"]:
        steal_reason = (
            "uncommitted data never enters the cache hierarchy "
            "(in-place stores are deferred past commit), so no steal "
            "can precede its log record"
        )
    else:
        steal_reason = (
            "every transactional store is preceded by a record placement "
            "for the same word (A1), and log channels drain ahead of any "
            "later data write-back of the line (A2)"
        )
    verdicts["steal-order"] = StaticVerdict("steal-order", PROVEN, steal_reason)
    verdicts["commit-order"] = StaticVerdict(
        "commit-order",
        PROVEN,
        "a transaction's DATA and COMMIT records share one FIFO channel "
        "(the placing core's WCB / the per-thread log buffer, A3) and "
        "DATA is placed first, so it completes no later",
    )
    verdicts["fifo-order"] = StaticVerdict(
        "fifo-order",
        PROVEN,
        "buffer completions are assigned in push order by the memory "
        "controller (A3); a drain can never complete out of store-order",
    )
    verdicts["torn-parity"] = StaticVerdict(
        "torn-parity",
        PROVEN,
        "slot p is rewritten only one full pass later and the torn bit "
        "is the pass parity (A4); consecutive occupants always differ",
    )
    verdicts["switch-epoch-clean"] = StaticVerdict(
        "switch-epoch-clean",
        PROVEN,
        "compiled op columns contain no design-switch op: the trace runs "
        "under one DesignSpec end to end, so no state can straddle an "
        "epoch barrier (adaptive runs are checked dynamically)",
    )

    # -- wrap-overwrite ------------------------------------------------
    total_records = sum(
        _records_for(tf, hw=pred["uses_hw_logging"]) for tf in facts
    )
    if total_records <= logging.log_entries:
        verdicts["wrap-overwrite"] = StaticVerdict(
            "wrap-overwrite",
            PROVEN,
            f"the run places {total_records} records into a "
            f"{logging.log_entries}-entry ring: no slot is ever "
            "overwritten",
        )
    elif pred["protects_log_wrap"]:
        verdicts["wrap-overwrite"] = StaticVerdict(
            "wrap-overwrite",
            PROVEN,
            "the ring wraps, but wrap protection forces each displaced "
            "entry's data line durable before the overwriting record "
            "may complete",
        )
    else:
        tid, txn = _last_commit(facts)
        verdicts["wrap-overwrite"] = StaticVerdict(
            "wrap-overwrite",
            VIOLATED,
            f"{total_records} records wrap a {logging.log_entries}-entry "
            "ring with no wrap protection: an overwritten DATA record's "
            "line may still be dirty, leaving a crash window with "
            "neither copy",
            CounterExample(
                "wrap-overwrite",
                tid,
                txn.commit_op if txn.commit_op is not None else txn.begin_op,
                txn_ordinal=txn.ordinal,
                detail=(
                    f"ring capacity exceeded by "
                    f"{total_records - logging.log_entries} records"
                ),
            ),
        )

    # -- unlogged-mutation ---------------------------------------------
    witness = None
    for tf in facts:
        for op, j, addr, sanctioned in tf.outside:
            if not sanctioned:
                witness = (tf.tid, op, j, addr)
                break
        if witness is not None:
            break
    if witness is None:
        verdicts["unlogged-mutation"] = StaticVerdict(
            "unlogged-mutation",
            PROVEN,
            "every write op lies inside a tx_begin/tx_commit span "
            "(deferred redo flushes target the just-committed write set)",
        )
    else:
        tid, op, j, addr = witness
        verdicts["unlogged-mutation"] = StaticVerdict(
            "unlogged-mutation",
            VIOLATED,
            "a persistent-heap write occurs outside any transaction",
            CounterExample(
                "unlogged-mutation",
                tid,
                op,
                addr=addr,
                piece_index=j,
                detail=f"store at {addr:#x} with no open transaction",
            ),
        )

    # -- replication rules (single-machine cell) -----------------------
    for rule in REPLICATION_RULE_IDS:
        verdicts[rule] = StaticVerdict(
            rule,
            PROVEN,
            "single-machine cell: no batch is shipped, nothing to order "
            "(ship schedules verify via verify_ship_schedule)",
        )

    if hb:
        report.races = detect_races(trace)
    return report


def _first_txn_piece(facts, committed_only: bool):
    """First transactional store piece, in (tid, op) order."""
    for tf in facts:
        for txn in tf.txns:
            if committed_only and not txn.committed:
                continue
            if txn.pieces:
                op, j, addr, _length = txn.pieces[0]
                return tf.tid, txn, op, j, addr
    return None


def _first_commit_record(facts, hw: bool):
    """First committed txn that places a COMMIT record under ``hw``."""
    for tf in facts:
        for txn in tf.txns:
            if not txn.committed:
                continue
            if hw and not txn.pieces:
                continue  # hardware appends nothing for storeless txns
            return tf.tid, txn
    return None


def _last_commit(facts):
    """The final transaction of the thread placing the most records."""
    best = max(facts, key=lambda tf: tf.pieces + 2 * len(tf.txns))
    return best.tid, best.txns[-1]


def _first_undrained_commit_witness(facts, spec, fenced: bool, logging):
    """First committed, store-carrying txn whose commit record becomes
    durable in-run while its data stays unrecoverable (no redo)."""
    for tf in facts:
        drain = None
        if spec.uses_sw_logging and not fenced:
            drain = _SwDrainModel(tf, logging.wcb_entries)
        for txn in tf.txns:
            if not (txn.committed and txn.pieces):
                continue
            if drain is not None and not drain.commit_drained(txn):
                continue
            op, j, addr, _length = txn.pieces[0]
            return tf.tid, txn, op, j, addr
    return None


# ----------------------------------------------------------------------
# Ship-schedule verification (the three replication rules)
# ----------------------------------------------------------------------
def verify_ship_schedule(timeline) -> dict:
    """Verify the replication rules over a :class:`ShipTimeline` schedule.

    Operates on the timeline's *derived structures* — per-link append
    and ack tables, the cluster-commit map — not on its event stream, so
    no event replay happens.  Returns ``rule id -> StaticVerdict``.
    """
    verdicts: dict = {}
    batches = {batch.index: batch for batch in timeline.batches}

    # repl-ack-durable: an ack must not be sent before every record of
    # its batch is durable on the replica.
    witness = None
    for replica, link in sorted(timeline.links.items()):
        durable_by_seq = dict(link.appends)
        for batch_index, (ack_send, _arrival) in sorted(link.acks.items()):
            batch = batches[batch_index]
            for rec in batch.records:
                durable = durable_by_seq.get(rec.seq)
                if durable is None or durable > ack_send + _EPS:
                    witness = (replica, batch_index, rec.seq, ack_send, durable)
                    break
            if witness is not None:
                break
        if witness is not None:
            break
    if witness is None:
        verdicts["repl-ack-durable"] = StaticVerdict(
            "repl-ack-durable",
            PROVEN,
            "every ack is sent at the batch's applied_end, which is no "
            "earlier than its last append completion; torn or truncated "
            "batches are never acked",
        )
    else:
        replica, batch_index, seq, ack_send, durable = witness
        verdicts["repl-ack-durable"] = StaticVerdict(
            "repl-ack-durable",
            VIOLATED,
            "a batch is acknowledged before its records are durable on "
            "the replica",
            CounterExample(
                "repl-ack-durable",
                replica,
                batch_index,
                detail=(
                    f"replica {replica} acks batch {batch_index} at "
                    f"{ack_send:.0f} but seq {seq} is "
                    + (
                        "never appended"
                        if durable is None
                        else f"durable only at {durable:.0f}"
                    )
                ),
            ),
        )

    # repl-commit-quorum: the derived cluster-commit instant must cover
    # the full quorum's ack arrivals for the carrying batch.
    witness = None
    batch_of = {}
    for batch in timeline.batches:
        for rec in batch.records:
            batch_of[rec.seq] = batch.index
    commit_map = timeline.stream.commit_map()
    for key, commit_time in sorted(timeline.cluster_committed.items()):
        entry = commit_map.get(key)
        if entry is None:
            witness = (key, "commit with no durable COMMIT record")
            break
        seq = entry[0]
        batch_index = batch_of.get(seq)
        if batch_index is None:
            witness = (key, f"seq {seq} never shipped")
            break
        for replica in timeline.config.replica_ids:
            ack = timeline.links[replica].acks.get(batch_index)
            if ack is None:
                witness = (key, f"replica {replica} never acked batch {batch_index}")
                break
            if ack[1] > commit_time + _EPS:
                witness = (
                    key,
                    f"replica {replica}'s ack arrives at {ack[1]:.0f}, "
                    f"after the cluster commit at {commit_time:.0f}",
                )
                break
        if witness is not None:
            break
    if witness is None:
        verdicts["repl-commit-quorum"] = StaticVerdict(
            "repl-commit-quorum",
            PROVEN,
            "each cluster commit is the max of the primary's report and "
            "the full quorum's ack arrivals for the carrying batch",
        )
    else:
        key, why = witness
        verdicts["repl-commit-quorum"] = StaticVerdict(
            "repl-commit-quorum",
            VIOLATED,
            "a transaction is reported cluster-committed without quorum "
            "ack coverage",
            CounterExample(
                "repl-commit-quorum",
                key[0],
                key[1],
                detail=f"(tid, ordinal) {key}: {why}",
            ),
        )

    # repl-seq-order: every replica's appends are a gap-free ascending
    # run (drops are retransmitted in order, dups never re-append, a
    # dead link simply stops).
    witness = None
    for replica, link in sorted(timeline.links.items()):
        prev = None
        for seq, _durable in link.appends:
            if prev is not None and seq != prev + 1:
                witness = (replica, prev, seq)
                break
            prev = seq
        if witness is not None:
            break
    if witness is None:
        verdicts["repl-seq-order"] = StaticVerdict(
            "repl-seq-order",
            PROVEN,
            "per-link appends start at the window base and advance "
            "seq+1 each record: batches are cut in seq order, delayed "
            "predecessors push successors' append start out, and "
            "duplicates are never re-applied",
        )
    else:
        replica, prev, seq = witness
        verdicts["repl-seq-order"] = StaticVerdict(
            "repl-seq-order",
            VIOLATED,
            "a replica appended records out of sequence",
            CounterExample(
                "repl-seq-order",
                replica,
                seq,
                detail=f"replica {replica} appended seq {seq} after {prev}",
            ),
        )
    return verdicts


# ----------------------------------------------------------------------
# Harness entry points
# ----------------------------------------------------------------------
def _compiled_cell(benchmark, threads, txns_per_thread, system, prepared, seed):
    """The cell's compiled trace (shared trace cache) and preparation."""
    from ..harness.cache import shared_trace_cache
    from ..harness.runner import prepare_workload
    from ..sim.replay import compile_trace
    from ..workloads import make_microbenchmark

    if prepared is None:
        prepared = prepare_workload(
            make_microbenchmark(benchmark, seed=seed), system
        )
    workload = prepared.workload
    if not getattr(workload, "trace_compilable", False):
        raise ValueError(
            f"workload {benchmark!r} is not trace-compilable; the static "
            "verifier needs compiled op columns"
        )
    cache = shared_trace_cache()
    key = cache.key(prepared.system, workload, threads, txns_per_thread)
    trace = cache.get(key)
    if trace is None:
        trace = compile_trace(prepared, threads, txns_per_thread)
        cache.put(key, trace)
    return trace, prepared


def run_pstatic(
    benchmark: str,
    policy,
    threads: int = 1,
    txns_per_thread: int = 40,
    system=None,
    prepared=None,
    seed: int = 42,
    hb: bool = True,
) -> StaticReport:
    """Statically verify one (benchmark, policy, threads) cell.

    Compiles (or cache-fetches) the cell's trace and walks it once; no
    machine is built and nothing replays.  The companion of
    :func:`~repro.sanitizer.checker.run_psan`, returning comparable
    fired-rule sets.
    """
    trace, prepared = _compiled_cell(
        benchmark, threads, txns_per_thread, system, prepared, seed
    )
    report = verify_trace(trace, policy, system=prepared.system, hb=hb)
    report.benchmark = benchmark
    return report


def _relocate(addr: Optional[int], bind: dict) -> Optional[int]:
    """Translate a (possibly symbolic) trace address through ``bind``."""
    if addr is None or addr < SYM_BASE:
        return addr
    block = (addr - SYM_BASE) >> 24
    base = bind.get(block)
    if base is None:
        return None
    return base + (addr & SYM_OFF_MASK)


def _dynamic_report_with_bind(
    trace, policy, system, threads, txns_per_thread, seed
):
    """Replay the cell via-API with the checker attached; returns the
    dynamic report plus the symbolic address binding."""
    from ..harness.runner import RunConfig
    from ..sim.replay import run_compiled
    from .checker import PersistOrderChecker

    holder: dict = {}

    def hook(machine) -> None:
        holder["checker"] = PersistOrderChecker.attach(machine)

    bind: dict = {}
    outcome = run_compiled(
        trace,
        RunConfig(
            policy=policy,
            threads=threads,
            txns_per_thread=txns_per_thread,
            system=system,
            seed=seed,
        ),
        machine_hook=hook,
        bind_out=bind,
    )
    report = holder["checker"].finish()
    outcome.machine.nvram.recycle()
    return report, bind


def _diag_matches(diag, cex: CounterExample, real_addr: Optional[int]) -> bool:
    if diag.rule != cex.rule:
        return False
    if diag.tid is not None and diag.tid != cex.tid:
        return False
    if real_addr is not None and diag.addr is not None and diag.addr != real_addr:
        return False
    return True


def confirm_counterexample(
    benchmark: str,
    policy,
    cex: CounterExample,
    threads: int = 1,
    txns_per_thread: int = 40,
    system=None,
    prepared=None,
    seed: int = 42,
):
    """Replay the cell and locate the dynamic diagnostic ``cex`` predicts.

    Returns ``(confirmed, diagnostic)``: the via-API replay runs with
    the dynamic checker attached, the counterexample's symbolic address
    is relocated through the replay's block binding, and the diagnostic
    must match on rule, thread and (when both carry one) address.
    """
    trace, prepared = _compiled_cell(
        benchmark, threads, txns_per_thread, system, prepared, seed
    )
    report, bind = _dynamic_report_with_bind(
        trace, resolve_design(policy), prepared.system, threads, txns_per_thread, seed
    )
    real_addr = _relocate(cex.addr, bind)
    for diag in report.diagnostics:
        if _diag_matches(diag, cex, real_addr):
            return True, diag
    return False, None


# ----------------------------------------------------------------------
# Sweeps and the differential gate
# ----------------------------------------------------------------------
@dataclass
class StaticSweepReport:
    """Static reports for a benchmark × threads × policy matrix."""

    reports: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No guaranteed design violates a rule, and no trace races."""
        return all(
            report.clean
            for report in self.reports
            if claims_guarantee(report.policy)
        ) and all(
            report.races is None or report.races.clean for report in self.reports
        )

    def total_cost(self) -> int:
        return sum(report.cost() for report in self.reports)

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "cells": [report.to_dict() for report in self.reports],
        }

    def render(self) -> str:
        width = max(
            [len("policy")] + [len(report.policy) for report in self.reports]
        )
        lines = [
            f"{'benchmark':10s} {'threads':>7s} {'policy':{width}s} "
            f"{'ops':>8s} {'races':>5s} verdict",
            "-" * (width + 50),
        ]
        for report in self.reports:
            fired = sorted(report.rules_fired())
            verdict = "clean" if not fired else "violates " + ",".join(fired)
            if fired and not claims_guarantee(report.policy):
                verdict += " (no guarantee claimed)"
            races = "-" if report.races is None else len(report.races.races)
            lines.append(
                f"{report.benchmark:10s} {report.threads:7d} "
                f"{report.policy:{width}s} {report.ops_examined:8d} "
                f"{races!s:>5s} {verdict}"
            )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Markdown verdict table (CI artifact for plain pstatic runs)."""
        lines = [
            "# Static persistency verdict matrix",
            "",
            f"{'**CLEAN**' if self.clean else '**VIOLATIONS**'} over "
            f"{len(self.reports)} cells "
            f"(total static cost {self.total_cost():,} column entries).",
            "",
            "| benchmark | threads | design | guarantee | verdict | races |",
            "|---|---|---|---|---|---|",
        ]
        for report in self.reports:
            fired = sorted(report.rules_fired())
            verdict = "clean" if not fired else ", ".join(fired)
            races = "—" if report.races is None else str(len(report.races.races))
            guarantee = "yes" if claims_guarantee(report.policy) else "no"
            lines.append(
                f"| {report.benchmark} | {report.threads} | {report.policy} "
                f"| {guarantee} | {verdict} | {races} |"
            )
        return "\n".join(lines)


@dataclass
class DifferentialCell:
    """One cell's static-vs-dynamic comparison."""

    benchmark: str
    threads: int
    policy: str
    static_fired: tuple
    dynamic_fired: tuple
    rules_agree: bool
    confirmations: list = field(default_factory=list)  # (rule, confirmed)
    static_cost: int = 0
    dynamic_cost: int = 0

    @property
    def passed(self) -> bool:
        return self.rules_agree and all(ok for _rule, ok in self.confirmations)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "threads": self.threads,
            "policy": self.policy,
            "static_fired": list(self.static_fired),
            "dynamic_fired": list(self.dynamic_fired),
            "rules_agree": self.rules_agree,
            "confirmations": [
                {"rule": rule, "confirmed": ok} for rule, ok in self.confirmations
            ],
            "static_cost": self.static_cost,
            "dynamic_cost": self.dynamic_cost,
            "passed": self.passed,
        }


@dataclass
class DifferentialReport:
    """The differential gate's outcome over a full matrix."""

    cells: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(cell.passed for cell in self.cells)

    def static_cost(self) -> int:
        return sum(cell.static_cost for cell in self.cells)

    def dynamic_cost(self) -> int:
        return sum(cell.dynamic_cost for cell in self.cells)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "static_cost": self.static_cost(),
            "dynamic_cost": self.dynamic_cost(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def render(self) -> str:
        width = max([len("policy")] + [len(c.policy) for c in self.cells])
        lines = [
            f"{'benchmark':10s} {'thr':>3s} {'policy':{width}s} "
            f"{'static':24s} {'dynamic':24s} verdict",
            "-" * (width + 72),
        ]
        for cell in self.cells:
            static = ",".join(cell.static_fired) or "clean"
            dynamic = ",".join(cell.dynamic_fired) or "clean"
            verdict = "agree" if cell.rules_agree else "DISAGREE"
            for rule, ok in cell.confirmations:
                verdict += f" {rule}:{'confirmed' if ok else 'UNCONFIRMED'}"
            lines.append(
                f"{cell.benchmark:10s} {cell.threads:3d} "
                f"{cell.policy:{width}s} {static:24s} {dynamic:24s} {verdict}"
            )
        lines.append(
            f"differential: {'PASS' if self.passed else 'FAIL'} "
            f"({len(self.cells)} cells, static cost {self.static_cost()}, "
            f"dynamic cost {self.dynamic_cost()})"
        )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """A verdict-table artifact (CI uploads this)."""
        lines = [
            "# Static persistency verdict matrix",
            "",
            f"Differential gate: **{'PASS' if self.passed else 'FAIL'}** "
            f"over {len(self.cells)} cells "
            f"(static cost {self.static_cost():,}, "
            f"dynamic cost {self.dynamic_cost():,}).",
            "",
            "| benchmark | threads | design | static verdict | "
            "dynamic verdict | agree | counterexamples |",
            "|---|---|---|---|---|---|---|",
        ]
        for cell in self.cells:
            static = ", ".join(cell.static_fired) or "clean"
            dynamic = ", ".join(cell.dynamic_fired) or "clean"
            confirms = (
                "; ".join(
                    f"{rule}: {'confirmed' if ok else 'UNCONFIRMED'}"
                    for rule, ok in cell.confirmations
                )
                or "—"
            )
            lines.append(
                f"| {cell.benchmark} | {cell.threads} | {cell.policy} | "
                f"{static} | {dynamic} | "
                f"{'yes' if cell.rules_agree else 'NO'} | {confirms} |"
            )
        return "\n".join(lines)


def run_differential(
    benchmarks,
    threads_list,
    policies,
    txns_per_thread: int = 40,
    seed: int = 42,
    confirm: bool = True,
    hb: bool = True,
    progress=None,
) -> DifferentialReport:
    """Gate the static verifier against the dynamic checker, cell by cell.

    For every cell the static verdict's fired-rule set must equal the
    dynamic checker's, and (``confirm``) every static counterexample
    must match a diagnostic from the same via-API replay, relocated
    through the replay's symbolic binding.  The dynamic run doubles as
    the cost baseline: its counter is the events processed plus the
    instructions the machine had to simulate.
    """
    from ..harness.runner import prepare_workload
    from ..workloads import make_microbenchmark

    result = DifferentialReport()
    for benchmark in benchmarks:
        prepared = prepare_workload(make_microbenchmark(benchmark, seed=seed))
        for threads in threads_list:
            trace, prepared = _compiled_cell(
                benchmark, threads, txns_per_thread, None, prepared, seed
            )
            for policy in policies:
                spec = resolve_design(policy)
                static = verify_trace(trace, spec, system=prepared.system, hb=hb)
                static.benchmark = benchmark
                dynamic, bind = _dynamic_report_with_bind(
                    trace, spec, prepared.system, threads, txns_per_thread, seed
                )
                dynamic_fired = dynamic.rules_fired()
                static_fired = static.rules_fired()
                agree = static_fired == dynamic_fired and set(
                    static.rules_checked
                ) == set(dynamic.rules_checked)
                confirmations = []
                if confirm:
                    for cex in static.counterexamples():
                        real_addr = _relocate(cex.addr, bind)
                        ok = any(
                            _diag_matches(diag, cex, real_addr)
                            for diag in dynamic.diagnostics
                        )
                        confirmations.append((cex.rule, ok))
                cell = DifferentialCell(
                    benchmark=benchmark,
                    threads=threads,
                    policy=spec.value,
                    static_fired=tuple(sorted(static_fired)),
                    dynamic_fired=tuple(sorted(dynamic_fired)),
                    rules_agree=agree,
                    confirmations=confirmations,
                    static_cost=static.cost(),
                    dynamic_cost=dynamic.events_processed
                    + int(getattr(dynamic, "txns_checked", 0)),
                )
                result.cells.append(cell)
                if progress is not None:
                    progress(
                        f"{benchmark} @{threads}t {spec.value}: "
                        f"{'agree' if cell.passed else 'MISMATCH'}"
                    )
    return result
