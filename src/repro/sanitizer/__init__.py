"""Persistency-ordering sanitizer (psan) and determinism lint.

Two complementary checkers guard the simulator's correctness claims:

* :mod:`repro.sanitizer.checker` — the **dynamic** half.  A
  :class:`~repro.sanitizer.checker.PersistOrderChecker` consumes the
  trace-event stream of a run (live, via
  :meth:`~repro.sim.trace.Tracer.subscribe`, or offline from a
  :meth:`~repro.sim.trace.Tracer.to_jsonl` file) and verifies the
  paper's persistency-ordering invariants: log records durable before
  their data write-backs (Section III-B), undo+redo completeness
  (Section III-A), commit-record ordering and the reported commit
  durability (Section III-D), forced write-backs before log-wrap
  overwrites and the torn-bit discipline (Sections III-C/III-E), FIFO
  log drains (Section IV-C), and no persistent mutation outside a
  transaction.

* :mod:`repro.sanitizer.lint` — the **static** half.  An AST pass over
  the source tree rejecting determinism and accounting hazards: wall
  clock / ambient randomness in simulation paths, undeclared stats
  counters, float equality on cycle times, unregistered trace event
  kinds.

Both are exposed through the CLI (``repro psan`` / ``repro lint``) and
run in CI as a gate.
"""

from __future__ import annotations

from .checker import PersistOrderChecker, PsanSweepReport, run_psan
from .lint import LintFinding, lint_paths
from .replication import (
    REPLICATION_RULES,
    ReplicationOrderChecker,
    check_replication,
)
from .rules import PsanDiagnostic, PsanReport, RULES

__all__ = [
    "PersistOrderChecker",
    "PsanDiagnostic",
    "PsanReport",
    "PsanSweepReport",
    "REPLICATION_RULES",
    "RULES",
    "ReplicationOrderChecker",
    "LintFinding",
    "check_replication",
    "lint_paths",
    "run_psan",
]
