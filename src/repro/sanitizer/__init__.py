"""Persistency-ordering sanitizer (psan), static verifier and lint.

Three complementary checkers guard the simulator's correctness claims:

* :mod:`repro.sanitizer.checker` — the **dynamic** half.  A
  :class:`~repro.sanitizer.checker.PersistOrderChecker` consumes the
  trace-event stream of a run (live, via
  :meth:`~repro.sim.trace.Tracer.subscribe`, or offline from a
  :meth:`~repro.sim.trace.Tracer.to_jsonl` file) and verifies the
  paper's persistency-ordering invariants: log records durable before
  their data write-backs (Section III-B), undo+redo completeness
  (Section III-A), commit-record ordering and the reported commit
  durability (Section III-D), forced write-backs before log-wrap
  overwrites and the torn-bit discipline (Sections III-C/III-E), FIFO
  log drains (Section IV-C), and no persistent mutation outside a
  transaction.

* :mod:`repro.sanitizer.static` — the **symbolic** half.  The same
  twelve rules, proven or refuted from a compiled trace's op columns
  alone — one walk, no machine, no replay — with counterexamples the
  via-API replay engine can confirm (``repro pstatic``), plus a
  vector-clock happens-before race detector
  (:mod:`repro.sanitizer.hb`) over the trace's cross-thread accesses.
  The static and dynamic halves are *differentially gated*: CI
  requires their verdicts to agree on every cell of the benchmark x
  design x threads matrix.

* :mod:`repro.sanitizer.lint` — the **source** half.  Pluggable AST
  passes over the source tree rejecting determinism and accounting
  hazards: wall clock / ambient randomness in simulation paths,
  undeclared stats counters, float equality on cycle times,
  unregistered trace event kinds — plus an audit of stale
  ``lint: allow`` suppressions.

All three are exposed through the CLI (``repro psan`` / ``repro
pstatic`` / ``repro lint``) and run in CI as gates.
"""

from __future__ import annotations

from .checker import PersistOrderChecker, PsanSweepReport, run_psan
from .hb import Race, RaceDetector, RaceReport, detect_races
from .lint import LintFinding, lint_paths
from .replication import (
    REPLICATION_RULES,
    ReplicationOrderChecker,
    check_replication,
)
from .rules import PsanDiagnostic, PsanReport, RULES
from .static import (
    CounterExample,
    DifferentialReport,
    StaticReport,
    StaticSweepReport,
    StaticVerdict,
    confirm_counterexample,
    run_differential,
    run_pstatic,
    verify_ship_schedule,
    verify_trace,
)

__all__ = [
    "CounterExample",
    "DifferentialReport",
    "PersistOrderChecker",
    "PsanDiagnostic",
    "PsanReport",
    "PsanSweepReport",
    "REPLICATION_RULES",
    "RULES",
    "Race",
    "RaceDetector",
    "RaceReport",
    "ReplicationOrderChecker",
    "StaticReport",
    "StaticSweepReport",
    "StaticVerdict",
    "LintFinding",
    "check_replication",
    "confirm_counterexample",
    "detect_races",
    "lint_paths",
    "run_differential",
    "run_psan",
    "run_pstatic",
    "verify_ship_schedule",
    "verify_trace",
]
