"""Psan rule registry, diagnostics, and the report container.

Each rule encodes one persistency-ordering invariant from the paper.  A
rule that fires produces a :class:`PsanDiagnostic` carrying enough
provenance (cycle, core, address, the event chain that led to the
verdict) to reconstruct the violation without re-running the simulation.

The registry doubles as documentation: ``repro psan --rules`` prints it,
and EXPERIMENTS.md renders the same table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Rule:
    """One checkable persistency-ordering invariant."""

    id: str
    title: str
    paper_ref: str
    description: str


#: Rule ids whose invariants concern the replication (log-shipping)
#: layer rather than a single machine's persist ordering.
REPLICATION_RULE_IDS = ("repl-ack-durable", "repl-commit-quorum", "repl-seq-order")

RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "steal-order",
            "log record durable before data write-back",
            "§III-B",
            "A persistent heap word may reach NVRAM while its transaction "
            "is uncommitted (the 'steal') only after a log record for that "
            "word is durable; otherwise a crash loses the only recoverable "
            "copy of the old value.",
        ),
        Rule(
            "undo-missing",
            "in-place store without an undo record",
            "§III-A",
            "An in-place persistent store inside an open transaction needs "
            "a durably-ordered undo record (or must be deferred past "
            "commit, as software redo logging does); without it an aborted "
            "or crashed transaction cannot be rolled back.",
        ),
        Rule(
            "redo-missing",
            "commit durable before data with no redo record",
            "§III-A",
            "If a transaction's commit record can become durable before "
            "its data stores do, a redo record must exist for each store; "
            "otherwise a crash after commit loses committed data that "
            "undo records cannot reconstruct.",
        ),
        Rule(
            "commit-order",
            "commit record durable before a data record",
            "§III-D",
            "A transaction's COMMIT log record must not become durable "
            "before all of its DATA records: recovery treats a durable "
            "commit as 'fully logged'.",
        ),
        Rule(
            "commit-durability",
            "reported commit time earlier than real durability",
            "§III-D",
            "The durability time the runtime reports for a commit must "
            "not precede the instant the COMMIT record actually completed "
            "at NVRAM; an optimistic report breaks every consumer of the "
            "golden model.",
        ),
        Rule(
            "wrap-overwrite",
            "log wrap overwrote a record with dirty data",
            "§III-C/III-E",
            "Overwriting a circular-log entry whose data line is still "
            "dirty in the hierarchy requires forcing that line back first "
            "(and the force must complete before the overwriting record "
            "is durable); otherwise the crash window between them has "
            "neither the log copy nor the data copy.",
        ),
        Rule(
            "torn-parity",
            "torn bit failed to flip on slot overwrite",
            "§III-E",
            "Each circular-log pass flips the torn bit; a record written "
            "over an older one with the same bit makes the head "
            "undetectable after a crash.",
        ),
        Rule(
            "fifo-order",
            "log buffer drained out of order",
            "§IV-C",
            "Log records must arrive in NVRAM in store-order: a volatile "
            "log buffer's completions must be non-decreasing per buffer.",
        ),
        Rule(
            "unlogged-mutation",
            "persistent heap mutated outside a transaction",
            "§III-A",
            "Timed stores to the persistent heap outside any transaction "
            "are invisible to logging and recovery (deferred redo-logged "
            "stores flushed right after their commit are the one sanctioned "
            "exception).",
        ),
        Rule(
            "switch-epoch-clean",
            "design switch with pre-switch state in flight",
            "adapt",
            "A safe-switch epoch barrier must be clean: at the switch "
            "instant no transaction may be open, every log record must "
            "have drained to NVRAM, and no line recorded in the log may "
            "still be dirty in the hierarchy.  State straddling the "
            "barrier would be interpreted under the wrong spec by "
            "whichever side of the swap a crash lands on.",
        ),
        Rule(
            "repl-ack-durable",
            "batch acked before durable on the replica",
            "dist",
            "A replica must not acknowledge a shipped log batch before "
            "every record in the batch is durable in its own log ring; an "
            "early ack lets the primary report a cluster commit whose "
            "records no surviving replica can replay.",
        ),
        Rule(
            "repl-commit-quorum",
            "cluster commit reported before ack quorum",
            "dist",
            "A transaction may be reported cluster-committed only after "
            "the batch carrying its COMMIT record has been acknowledged "
            "by the full replica quorum; reporting earlier makes a "
            "single-replica loss lose an externally visible commit.",
        ),
        Rule(
            "repl-seq-order",
            "replica appended records out of sequence",
            "dist",
            "Each replica must append shipped records in global sequence "
            "order with no gaps or duplicate applications — reordered or "
            "re-shipped batches must be buffered/deduplicated — so every "
            "replica's ring is a prefix of the primary's durable record "
            "stream and recovery can truncate at a common frontier.",
        ),
    )
}
"""All registered psan rules, keyed by rule id."""

#: Rules evaluated for any design with a log backend.  ``non-pers``
#: makes no persistence claim, so no rule applies to it.  Shared by the
#: dynamic checker and the static verifier so both report the same
#: ``rules_checked`` universe for a given design.
LOGGING_RULES = tuple(RULES)

#: The single-machine ordering rules (everything but replication).
ORDERING_RULES = tuple(r for r in RULES if r not in REPLICATION_RULE_IDS)


def rules_for_design(spec) -> tuple:
    """The rule ids that apply to ``spec`` (a design or its name).

    A design without a log backend claims nothing, so nothing is
    checked; every logging design is measured against the full registry.
    Both the dynamic checker and the static verifier gate on this, which
    is what makes their ``rules_checked`` tuples comparable cell by
    cell.
    """
    from ..core.design import resolve_design

    spec = resolve_design(spec)
    if spec.uses_hw_logging or spec.uses_sw_logging:
        return LOGGING_RULES
    return ()


def claims_guarantee(policy_name) -> bool:
    """True when ``policy_name`` resolves to a guarantee-claiming design.

    Unknown design names are treated as claiming a guarantee so their
    violations are surfaced rather than excused.
    """
    from ..core.design import resolve_design

    try:
        return resolve_design(policy_name).persistence_guaranteed
    except ValueError:
        return True


@dataclass(frozen=True)
class PsanDiagnostic:
    """One rule violation, with provenance."""

    rule: str
    message: str
    cycle: float
    core: int = -1
    addr: Optional[int] = None
    txid: Optional[int] = None
    tid: Optional[int] = None
    provenance: tuple = ()
    """Chain of short ``"cycle kind detail"`` strings for the events that
    establish the violation, oldest first."""

    def to_dict(self) -> dict:
        """JSON-ready form (machine-readable report)."""
        return {
            "rule": self.rule,
            "message": self.message,
            "cycle": self.cycle,
            "core": self.core,
            "addr": self.addr,
            "txid": self.txid,
            "tid": self.tid,
            "provenance": list(self.provenance),
        }

    def render(self) -> str:
        """One human-readable block."""
        head = f"[{self.rule}] cycle {self.cycle:.0f}"
        if self.core >= 0:
            head += f" core {self.core}"
        if self.addr is not None:
            head += f" addr {self.addr:#x}"
        if self.txid is not None:
            head += f" txn {self.txid}"
        lines = [head, f"  {self.message}"]
        for step in self.provenance:
            lines.append(f"    <- {step}")
        return "\n".join(lines)


@dataclass
class PsanReport:
    """Outcome of sanitizing one run's event stream."""

    policy: str = "?"
    diagnostics: list = field(default_factory=list)
    events_processed: int = 0
    txns_checked: int = 0
    rules_checked: tuple = ()
    benchmark: str = "?"
    threads: int = 0

    @property
    def clean(self) -> bool:
        """True when no rule fired."""
        return not self.diagnostics

    def by_rule(self) -> dict:
        """Diagnostic counts keyed by rule id."""
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        return counts

    def rules_fired(self) -> set:
        """Set of rule ids with at least one diagnostic."""
        return {diag.rule for diag in self.diagnostics}

    def to_dict(self) -> dict:
        """JSON-ready form (machine-readable report)."""
        return {
            "policy": self.policy,
            "benchmark": self.benchmark,
            "threads": self.threads,
            "clean": self.clean,
            "events_processed": self.events_processed,
            "txns_checked": self.txns_checked,
            "rules_checked": list(self.rules_checked),
            "by_rule": self.by_rule(),
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
        }

    def render(self, limit: int = 10) -> str:
        """Human-readable report (at most ``limit`` diagnostics shown)."""
        if self.clean:
            return (
                f"psan: {self.policy}: clean "
                f"({self.events_processed} events, "
                f"{self.txns_checked} txns, "
                f"{len(self.rules_checked)} rules)"
            )
        lines = [
            f"psan: {self.policy}: {len(self.diagnostics)} violation(s) "
            f"({self.events_processed} events, {self.txns_checked} txns)"
        ]
        for rule_id, count in sorted(self.by_rule().items()):
            lines.append(f"  {rule_id:20s} x{count}")
        for diag in self.diagnostics[:limit]:
            lines.append(diag.render())
        if len(self.diagnostics) > limit:
            lines.append(f"  ... and {len(self.diagnostics) - limit} more")
        return "\n".join(lines)
