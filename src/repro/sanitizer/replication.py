"""Replication-ordering sanitizer for the distributed log-shipping layer.

The single-node checker (:mod:`repro.sanitizer.checker`) verifies that a
log record is durable before the data it covers; this module verifies
the distributed analogue over a shipping timeline's event stream
(``ship`` / ``repl_deliver`` / ``repl_append`` / ``repl_ack`` /
``dist_commit`` — see :meth:`repro.dist.ship.ShipTimeline.event_stream`):

* ``repl-ack-durable`` — a replica's ack for a batch must not be sent
  before every record of the batch is durable in its ring (a torn
  landing must never be acked at all);
* ``repl-commit-quorum`` — a transaction may be reported
  cluster-committed only at/after the arrival of the *last* quorum ack
  for the batch carrying its COMMIT record, with every configured
  replica represented;
* ``repl-seq-order`` — each replica appends records in global sequence
  order, no gaps and no duplicate applications.

The checker is stream-shaped like :class:`PersistOrderChecker` so it can
consume live tracer subscriptions or offline event lists; the campaign
runs it over every fault point's timeline, and the deliberate
ack-before-durable probe (``ShipTimeline(unsafe_early_ack=True)``) must
trip the first rule.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .rules import PsanDiagnostic, PsanReport

REPLICATION_RULES = ("repl-ack-durable", "repl-commit-quorum", "repl-seq-order")


class ReplicationOrderChecker:
    """Streaming checker for the three replication-ordering rules."""

    def __init__(self, policy: str = "dist") -> None:
        self._policy = policy
        self._diagnostics: list = []
        self._events = 0
        self._replicas: tuple = ()
        self._next_seq: dict = {}  # replica -> next expected append seq
        self._appends: dict = {}  # (replica, seq) -> durable time (not torn)
        self._batches: dict = {}  # (replica, batch) -> (start_seq, n)
        self._acks: dict = {}  # (replica, batch) -> earliest ack arrival
        self._commits = 0

    # ------------------------------------------------------------------
    def feed(self, event) -> None:
        """Consume one trace event."""
        self._events += 1
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event)

    def consume(self, events: Iterable) -> None:
        for event in events:
            self.feed(event)

    # ------------------------------------------------------------------
    def _report(self, rule: str, message: str, event, **fields) -> None:
        self._diagnostics.append(
            PsanDiagnostic(
                rule=rule,
                message=message,
                cycle=event.time,
                core=-1,
                **fields,
            )
        )

    def _on_meta(self, event) -> None:
        if event.detail.get("dist"):
            self._replicas = tuple(event.detail.get("replicas", ()))

    def _on_ship(self, event) -> None:
        d = event.detail
        self._batches[(d["replica"], d["batch"])] = (d["start_seq"], d["n"])

    def _on_repl_append(self, event) -> None:
        d = event.detail
        replica = d["replica"]
        seq = d["seq"]
        expected = self._next_seq.get(replica, 0)
        if seq != expected:
            kind = "duplicate application of" if seq < expected else "gap before"
            self._report(
                "repl-seq-order",
                f"replica {replica} appended seq {seq} out of order "
                f"({kind} seq {expected})",
                event,
                provenance=(
                    f"{event.time:.0f} repl_append replica={replica} "
                    f"seq={seq} expected={expected}",
                ),
            )
        self._next_seq[replica] = max(expected, seq + 1)
        if not d.get("torn"):
            self._appends[(replica, seq)] = event.time

    def _on_repl_ack(self, event) -> None:
        d = event.detail
        replica = d["replica"]
        batch = d["batch"]
        sent = d["sent"]
        start, count = self._batches.get(
            (replica, batch), (d["start_seq"], d["n"])
        )
        for seq in range(start, start + count):
            durable = self._appends.get((replica, seq))
            if durable is None or durable > sent:
                state = (
                    "never durable" if durable is None
                    else f"durable only at {durable:.0f}"
                )
                self._report(
                    "repl-ack-durable",
                    f"replica {replica} acked batch {batch} at {sent:.0f} "
                    f"but record seq {seq} was {state}",
                    event,
                    provenance=(
                        f"{sent:.0f} ack sent replica={replica} batch={batch}",
                        f"record seq={seq}: {state}",
                    ),
                )
        prev = self._acks.get((replica, batch))
        if prev is None or event.time < prev:
            self._acks[(replica, batch)] = event.time

    def _on_dist_commit(self, event) -> None:
        d = event.detail
        self._commits += 1
        batch = d["batch"]
        quorum = tuple(d.get("quorum", self._replicas)) or self._replicas
        for replica in quorum:
            arrival = self._acks.get((replica, batch))
            if arrival is None or arrival > event.time:
                state = (
                    "was never acked" if arrival is None
                    else f"ack arrived only at {arrival:.0f}"
                )
                self._report(
                    "repl-commit-quorum",
                    f"txn tid={d['tid']}#{d['ordinal']} reported "
                    f"cluster-committed at {event.time:.0f} but replica "
                    f"{replica}'s ack for batch {batch} {state}",
                    event,
                    txid=d.get("txid"),
                    tid=d.get("tid"),
                    provenance=(
                        f"{event.time:.0f} dist_commit seq={d['seq']} "
                        f"batch={batch}",
                        f"replica {replica}: {state}",
                    ),
                )

    # ------------------------------------------------------------------
    def finish(self) -> PsanReport:
        return PsanReport(
            policy=self._policy,
            diagnostics=list(self._diagnostics),
            events_processed=self._events,
            txns_checked=self._commits,
            rules_checked=REPLICATION_RULES,
        )


def check_replication(timeline, policy: Optional[str] = None) -> PsanReport:
    """Sanitize one shipping timeline; returns a standard psan report."""
    checker = ReplicationOrderChecker(policy=policy or "dist")
    checker.consume(timeline.event_stream())
    return checker.finish()
