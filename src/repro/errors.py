"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class AddressError(ReproError):
    """An address is out of range or misaligned for the requested access."""


class LogError(ReproError):
    """The circular log was used incorrectly (overflow, bad record, ...)."""


class TransactionError(ReproError):
    """Transaction API misuse (nested begin, commit without begin, ...)."""


class RecoveryError(ReproError):
    """The recovery manager found an unrecoverable log state."""


class SimulationError(ReproError):
    """Internal simulator invariant violated."""


class WorkloadError(ReproError):
    """A workload was configured or driven incorrectly."""
