"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class AddressError(ReproError):
    """An address is out of range or misaligned for the requested access."""


class LogError(ReproError):
    """The circular log was used incorrectly (overflow, bad record, ...)."""


class TransactionError(ReproError):
    """Transaction API misuse (nested begin, commit without begin, ...)."""


class RecoveryError(ReproError):
    """The recovery manager found an unrecoverable log state."""


class RecoveryInterrupted(ReproError):
    """A simulated crash fired in the middle of a recovery pass.

    Raised by :class:`~repro.core.recovery.RecoveryManager` when a fault
    campaign's crash injector trips between recovery writes; the NVRAM
    image is left exactly as the partial recovery made it, and a second
    recovery pass must converge to the same state as an uninterrupted one.
    """


class FaultInjectionError(ReproError):
    """A fault-injection plan is malformed or targets an invalid range."""


class SimulatedCrash(ReproError):
    """A fault campaign's crash point fired during execution.

    Raised out of :meth:`~repro.sim.machine.Machine.execute` by an
    installed :class:`~repro.faults.crashpoints.FaultMonitor` the moment
    its trigger event occurs.  The driver catches it and calls
    :meth:`~repro.sim.machine.Machine.crash` with :attr:`at_time`.
    """

    def __init__(self, kind: str, index: int, at_time: float) -> None:
        super().__init__(f"simulated crash at {kind}[{index}] t={at_time:.1f}")
        self.kind = kind
        self.index = index
        self.at_time = at_time


class SimulationError(ReproError):
    """Internal simulator invariant violated."""


class WorkloadError(ReproError):
    """A workload was configured or driven incorrectly."""
