"""Mid-run log shipping from stepped shards to replica rings.

The fault-campaign shipping path collects a *finished* run's durable
records and replays them through a timeline.  A served shard never
finishes — traffic is open-ended — so replication has to happen while
the shard is still being stepped.  The safe-frontier argument that makes
this sound: once every thread of a shard has been stepped to cycle
``t``, any record not yet durable will become durable at or after ``t``
(durability times only move forward from the current core clocks), so
the set of records durable *strictly before* ``t`` is final and its
durability order can never change.  The scheduler's per-arrival
checkpoint hands exactly that horizon to the replicator, which harvests
the ripe prefix from its :class:`~repro.dist.ship.LogStreamCollector`
and appends it synchronously to every replica ring.

Because serve traffic is unbounded, replica rings compact instead of
growing: the replicator tracks the **cluster-committed frontier** — the
longest record prefix with no transaction still open — and once a ring's
occupancy crosses the headroom threshold, every replica folds the
prefix below that frontier into its mirrored heap
(:meth:`~repro.dist.node.ReplicaNode.compact_below`) and frees the
slots.  Only closed transactions compact, so a crash mid-run still
recovers exactly: checkpointed heap + remaining ring replay.
"""

from __future__ import annotations

from ..dist.node import ReplicaNode
from ..dist.ship import LogStreamCollector
from ..errors import ConfigError


class ShardReplicator:
    """Ship one shard's durable records to R replicas while it runs."""

    def __init__(
        self,
        shard,
        image_prefix: bytes,
        system,
        *,
        replicas: int = 1,
        ring_records: int = 256,
        compact_headroom: float = 0.75,
    ) -> None:
        if replicas <= 0:
            raise ConfigError("replicas must be positive")
        if not 0.0 < compact_headroom <= 1.0:
            raise ConfigError("compact_headroom must be in (0, 1]")
        self.shard = shard
        self.collector = LogStreamCollector(shard.machine)
        self.nodes = [
            ReplicaNode(
                node_id=node_id,
                system=system,
                image_prefix=image_prefix,
                capacity_records=ring_records,
            )
            for node_id in range(replicas)
        ]
        self._compact_at = max(
            1, int(self.nodes[0].ring.num_entries * compact_headroom)
        )
        self._open: set = set()  # txids with records shipped but no COMMIT
        self._next_seq = 0
        self.committed_frontier = 0
        self.shipped = 0
        self.compactions = 0
        self.records_compacted = 0

    # ------------------------------------------------------------------
    def on_horizon(self, horizon) -> int:
        """Ship everything durable strictly before ``horizon``.

        ``None`` is the end-of-run flush (every thread drained; all
        durability times final).  Returns the number of records shipped.
        """
        before = float("inf") if horizon is None else horizon
        records = self.collector.harvest(before)
        for rec in records:
            for node in self.nodes:
                # Compact before the append that would cross the
                # headroom line: a single harvest can carry more records
                # than the ring's free space, so the check is
                # per-record, not per-batch.  When the frontier hasn't
                # advanced (one transaction spanning the whole ring)
                # compaction is a no-op and a truly full ring still
                # raises — correctly.
                if rec.seq - node.base_seq >= self._compact_at:
                    dropped = node.compact_below(self.committed_frontier)
                    if dropped:
                        self.compactions += 1
                        self.records_compacted += dropped
                node.append(rec)
            if rec.kind == "COMMIT":
                self._open.discard(rec.txid)
            else:
                self._open.add(rec.txid)
            self._next_seq = rec.seq + 1
            if not self._open:
                self.committed_frontier = self._next_seq
        self.shipped += len(records)
        return len(records)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Per-shard replication counters for the serve report."""
        return {
            "replicas": len(self.nodes),
            "shipped": self.shipped,
            "committed_frontier": self.committed_frontier,
            "compactions": self.compactions,
            "records_compacted": self.records_compacted,
            "base_seqs": [node.base_seq for node in self.nodes],
            "ring_occupancy": [
                self._next_seq - node.base_seq for node in self.nodes
            ],
        }

    def release(self) -> None:
        """Return every replica's NVRAM buffer to the pool."""
        for node in self.nodes:
            node.release()


def make_checkpoint(replicators: list):
    """Scheduler ``checkpoint`` callback shipping all shards' streams."""

    def checkpoint(horizon) -> None:
        for replicator in replicators:
            replicator.on_horizon(horizon)

    return checkpoint
