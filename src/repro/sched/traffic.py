"""Seeded open-loop traffic generation.

An *open-loop* generator emits requests on its own schedule regardless
of service progress (the standard way to measure tail latency: a slow
server cannot slow its own offered load down).  The schedule is a pure
function of :class:`TrafficConfig` — every draw comes from one
:func:`repro.workloads.rng.thread_rng` stream — so a scenario replays
bit-identically across reruns and hosts.

Requests are workload-agnostic: each carries two uniform draws that the
serving workload maps through its own distributions (``key_u`` through
its zipfian key-popularity table — the hot-key skew — and ``op_u``
through its operation mix).  Clients are drawn from a configurable id
space (millions by default); a client is pinned to a shard, so shard
routing is stable per client.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..workloads.rng import thread_rng

#: Stream id for the traffic RNG (decorrelated from workload threads).
_TRAFFIC_STREAM = 0x7A4F1C


@dataclass(frozen=True)
class Request:
    """One client request travelling through the service layer."""

    seq: int
    arrival: float  # enqueue instant, in simulated cycles
    client: int
    shard: int
    key_u: float  # uniform draw -> workload key distribution (hot-key skew)
    op_u: float  # uniform draw -> workload operation mix


@dataclass(frozen=True)
class TrafficConfig:
    """Open-loop arrival schedule parameters."""

    requests: int = 512
    rate: float = 0.002
    """Aggregate offered load, requests per simulated cycle."""
    arrival: str = "poisson"
    """Inter-arrival process: ``poisson`` (exponential gaps), ``uniform``
    (fixed gaps at exactly ``rate``), or ``burst`` (back-to-back groups
    of ``burst_size`` arriving at one instant, gaps between groups
    preserving the mean rate)."""
    burst_size: int = 16
    clients: int = 1_000_000
    """Simulated client id space; each request draws a client, and a
    client is pinned to one shard."""
    seed: int = 42

    def validate(self) -> None:
        if self.requests < 0:
            raise ConfigError("requests must be non-negative")
        if self.rate <= 0:
            raise ConfigError("rate must be positive (requests per cycle)")
        if self.arrival not in ("poisson", "uniform", "burst"):
            raise ConfigError(
                f"unknown arrival process {self.arrival!r}; "
                "choose poisson, uniform, or burst"
            )
        if self.burst_size <= 0:
            raise ConfigError("burst_size must be positive")
        if self.clients <= 0:
            raise ConfigError("clients must be positive")


def open_loop_schedule(config: TrafficConfig, num_shards: int) -> list:
    """The full arrival schedule, in arrival order.

    Pure function of ``(config, num_shards)``: one seeded RNG drives
    inter-arrival gaps, client choice, and the per-request uniform
    draws, in a fixed order.
    """
    config.validate()
    if num_shards <= 0:
        raise ConfigError("num_shards must be positive")
    rng = thread_rng(config.seed, _TRAFFIC_STREAM)
    mean_gap = 1.0 / config.rate
    clock = 0.0
    schedule = []
    for seq in range(config.requests):
        if config.arrival == "poisson":
            clock += rng.expovariate(config.rate)
        elif config.arrival == "uniform":
            clock += mean_gap
        else:  # burst: whole groups arrive at one instant
            if seq % config.burst_size == 0 and seq > 0:
                clock += mean_gap * config.burst_size
        client = rng.randrange(config.clients)
        schedule.append(
            Request(
                seq=seq,
                arrival=clock,
                client=client,
                shard=client % num_shards,
                key_u=rng.random(),
                op_u=rng.random(),
            )
        )
    return schedule
