"""``repro serve``: end-to-end open-loop scenarios over sharded machines.

One scenario = one request-shaped WHISPER kernel, prepared once (setup
is the expensive part), restored into N independent shard machines, and
served against a seeded open-loop arrival schedule by the event-loop
scheduler.  Each shard is a full machine — own cores, LLC, NVRAM,
logging hardware — so shard scaling measures the service-layer effect
the paper's per-core log buffers enable: more shards absorb the same
offered load with shorter queues, until a single shard's persist
bandwidth stops being the bottleneck.

The whole scenario is deterministic: the schedule is a pure function of
the traffic config, the scheduler interleaving is a pure function of the
schedule, and every workload draw flows through seeded streams.  Two
runs with the same :class:`ServeConfig` produce byte-identical reports
(the determinism property test replays exactly this entry point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.design import DesignSpec, resolve_design
from ..errors import ConfigError
from ..harness.runner import prepare_workload
from ..sim.config import CacheConfig, LoggingConfig, NVDimmConfig, SystemConfig
from ..sim.machine import Machine
from ..txn.runtime import PersistentMemory
from ..workloads.whisper import make_whisper_kernel
from .loop import AdmissionConfig, EventLoopScheduler
from .metrics import ServeReport, ShardServeStats, percentile
from .replicate import ShardReplicator, make_checkpoint
from .shard import ShardMachine
from .traffic import TrafficConfig, open_loop_schedule


def default_serve_config(threads: int = 2, **overrides) -> SystemConfig:
    """Scaled-down per-shard system for serve scenarios.

    Smaller than the sweep configuration (a serve run builds one machine
    *per shard*): cores sized to the thread count, a 16 MB NVRAM, and a
    1 Ki-entry log ring.  Latency/bank/energy parameters stay at their
    Table II values.
    """
    base = SystemConfig(
        num_cores=max(1, threads),
        llc=CacheConfig(size_bytes=256 * 1024, ways=16, line_size=64, latency_ns=4.4),
        nvram=NVDimmConfig(size_bytes=16 * 1024 * 1024),
        logging=LoggingConfig(log_entries=1024),
    )
    return base.scaled(**overrides) if overrides else base


@dataclass
class ServeConfig:
    """Everything one serve scenario needs."""

    workload: str = "memcached"
    policy: DesignSpec = None
    shards: int = 1
    threads: int = 2
    batch_requests: int = 8
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    system: Optional[SystemConfig] = None
    seed: int = 42
    replicas: int = 0
    """Replica rings per shard (0 disables mid-run log shipping)."""
    ring_records: int = 256
    compact_headroom: float = 0.75
    policy_table: Optional[object] = None
    """A :class:`~repro.adapt.table.PolicyTable` enables adaptive mode:
    an :class:`~repro.adapt.controller.AdaptiveController` rides the
    scheduler checkpoints and may safe-switch shards mid-run.  When the
    caller leaves ``policy`` unset, the table's ``start`` design (if
    any) seeds the shards."""
    adapt_window_txns: int = 16
    drain_checkpoint_cycles: float = 400.0
    """Adaptive mode only: the post-schedule backlog drains in windows
    of this many cycles so the controller keeps observing (see
    ``EventLoopScheduler.drain``)."""

    def __post_init__(self) -> None:
        if self.policy is None:
            table = self.policy_table
            if table is not None and getattr(table, "start", None) is not None:
                self.policy = table.start
            else:
                self.policy = resolve_design("fwb")
        elif not isinstance(self.policy, DesignSpec):
            self.policy = resolve_design(self.policy)

    def validate(self) -> None:
        if self.shards <= 0:
            raise ConfigError("shards must be positive")
        if self.threads <= 0:
            raise ConfigError("threads must be positive")
        if self.batch_requests <= 0:
            raise ConfigError("batch_requests must be positive")
        if self.adapt_window_txns <= 0:
            raise ConfigError("adapt_window_txns must be positive")
        if self.drain_checkpoint_cycles <= 0:
            raise ConfigError("drain_checkpoint_cycles must be positive")
        self.traffic.validate()
        self.admission.validate()


def run_serve(config: ServeConfig, machine_hook=None) -> ServeReport:
    """Run one open-loop serve scenario and return its report.

    ``machine_hook(shard_id, machine)``, when given, is called on every
    freshly built shard machine before execution — the attachment point
    for tracers and psan in serve mode.
    """
    config.validate()
    workload = make_whisper_kernel(config.workload, seed=config.seed)
    if not workload.request_shaped:
        raise ConfigError(
            f"workload {config.workload!r} is not request-shaped; serve "
            "needs one of the kernels exposing serve_request "
            "(memcached_w, redis_w, ycsb)"
        )
    system = config.system or default_serve_config(config.threads)
    prepared = prepare_workload(workload, system)
    workload = prepared.workload
    # All shards share the prepared workload instance; the volatile
    # run-state checkpoint each shard captures at construction is the
    # post-reset baseline, swapped in around every step window.
    workload.reset_run_state()

    shards = []
    replicators = []
    for shard_id in range(config.shards):
        machine = Machine(system, config.policy)
        if machine_hook is not None:
            machine_hook(shard_id, machine)
        pm = PersistentMemory(machine)
        prepared.restore_into(machine)
        pm.heap.restore(prepared.heap_state)
        workload.attach(pm)
        shard = ShardMachine(
            machine,
            pm,
            workload,
            threads=config.threads,
            shard_id=shard_id,
            batch_requests=config.batch_requests,
        )
        shard.start_serve()
        shards.append(shard)
        if config.replicas > 0:
            replicators.append(
                ShardReplicator(
                    shard,
                    prepared.image_prefix,
                    system,
                    replicas=config.replicas,
                    ring_records=config.ring_records,
                    compact_headroom=config.compact_headroom,
                )
            )

    checkpoint = make_checkpoint(replicators) if replicators else None
    controller = None
    if config.policy_table is not None:
        # Lazy: repro.adapt imports this module for default_serve_config.
        from ..adapt.controller import AdaptiveController

        controller = AdaptiveController(
            config.policy_table, window_txns=config.adapt_window_txns
        )
        checkpoint = controller.checkpoint_for(shards, inner=checkpoint)
    scheduler = EventLoopScheduler(
        shards,
        admission=config.admission,
        checkpoint=checkpoint,
        drain_checkpoint_cycles=(
            config.drain_checkpoint_cycles if controller is not None else None
        ),
    )
    schedule = open_loop_schedule(config.traffic, config.shards)
    scheduler.run_open_loop(schedule)

    return _build_report(
        config, shards, scheduler, schedule, replicators, controller
    )


def _build_report(
    config, shards, scheduler, schedule, replicators, controller=None
) -> ServeReport:
    offered_by_shard = [0] * config.shards
    for request in schedule:
        offered_by_shard[request.shard] += 1
    admitted_by_shard = [0] * config.shards
    for request in scheduler.admitted:
        admitted_by_shard[request.shard] += 1
    rejected_by_shard = [0] * config.shards
    for request in scheduler.rejected:
        rejected_by_shard[request.shard] += 1

    latencies = []
    per_shard = []
    makespan = 0.0
    for shard in shards:
        stats = shard.machine.finalize()
        shard_latencies = sorted(
            durable - request.arrival
            for request, durable, _tid in shard.completed_requests()
        )
        latencies.extend(shard_latencies)
        makespan = max(makespan, stats.cycles)
        per_shard.append(
            ShardServeStats(
                shard_id=shard.shard_id,
                offered=offered_by_shard[shard.shard_id],
                admitted=admitted_by_shard[shard.shard_id],
                rejected=rejected_by_shard[shard.shard_id],
                completed=len(shard_latencies),
                transactions=stats.transactions_committed,
                cycles=stats.cycles,
                instructions=stats.instructions,
                nvram_writes=stats.nvram_writes,
                log_records=stats.log_records,
                p50=percentile(shard_latencies, 50.0),
                p99=percentile(shard_latencies, 99.0),
                p999=percentile(shard_latencies, 99.9),
            )
        )
    latencies.sort()

    replication: dict = {}
    if replicators:
        summaries = [replicator.summary() for replicator in replicators]
        replication = {
            "replicas": config.replicas,
            "shipped": sum(s["shipped"] for s in summaries),
            "compactions": sum(s["compactions"] for s in summaries),
            "records_compacted": sum(s["records_compacted"] for s in summaries),
            "per_shard": summaries,
        }

    adaptation: dict = {}
    if controller is not None:
        adaptation = controller.summary()
        adaptation["start_design"] = config.policy.mechanism_string()
        adaptation["final_designs"] = [
            shard.machine.policy.mechanism_string() for shard in shards
        ]

    completed = len(latencies)
    return ServeReport(
        workload=config.workload,
        design=config.policy.name,
        shards=config.shards,
        threads=config.threads,
        batch_requests=config.batch_requests,
        arrival=config.traffic.arrival,
        rate=config.traffic.rate,
        seed=config.traffic.seed,
        offered=len(schedule),
        admitted=len(scheduler.admitted),
        rejected=len(scheduler.rejected),
        completed=completed,
        makespan_cycles=makespan,
        throughput_rpmc=(completed / makespan * 1e6) if makespan else 0.0,
        p50=percentile(latencies, 50.0),
        p99=percentile(latencies, 99.0),
        p999=percentile(latencies, 99.9),
        per_shard=per_shard,
        replication=replication,
        adaptation=adaptation,
    )
