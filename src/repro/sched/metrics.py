"""Service-level metrics: latency percentiles and the serve report.

Latency is **enqueue → commit-durable**: from the request's open-loop
arrival instant to the durability time its transaction's commit
reported (the same value the golden model records), so queueing delay,
batching delay, execution, and persist-ordering stalls all count — the
client-visible number.  Percentiles use the nearest-rank definition on
the full sorted sample (no interpolation): deterministic, and exact for
the sample sizes a simulated scenario produces.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field


def percentile(sorted_values: list, pct: float) -> float:
    """Nearest-rank percentile of an ascending sample (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(pct / 100.0 * len(sorted_values))
    return sorted_values[min(max(rank, 1), len(sorted_values)) - 1]


@dataclass
class ShardServeStats:
    """One shard's share of a serve scenario."""

    shard_id: int
    offered: int
    admitted: int
    rejected: int
    completed: int
    transactions: int
    cycles: float
    instructions: int
    nvram_writes: int
    log_records: int
    p50: float
    p99: float
    p999: float


@dataclass
class ServeReport:
    """Everything one finished open-loop serve scenario reports."""

    workload: str
    design: str
    shards: int
    threads: int
    batch_requests: int
    arrival: str
    rate: float
    seed: int
    offered: int
    admitted: int
    rejected: int
    completed: int
    makespan_cycles: float
    throughput_rpmc: float
    """Completed requests per million simulated cycles."""
    p50: float
    p99: float
    p999: float
    per_shard: list = field(default_factory=list)
    replication: dict = field(default_factory=dict)
    adaptation: dict = field(default_factory=dict)
    """Adaptive mode: the controller's decision log (``switches``,
    ``decisions``, ``start_design``, ``final_designs``)."""

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (determinism checks)."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable report (also the CI artifact body)."""
        lines = [
            f"serve: {self.workload} under {self.design} — "
            f"{self.shards} shard(s) x {self.threads} thread(s), "
            f"batch {self.batch_requests}",
            f"traffic: {self.arrival} arrivals, rate {self.rate:g} req/cycle, "
            f"seed {self.seed}",
            "",
            f"  offered    {self.offered:>10}",
            f"  admitted   {self.admitted:>10}",
            f"  rejected   {self.rejected:>10}",
            f"  completed  {self.completed:>10}",
            f"  makespan   {self.makespan_cycles:>14.1f} cycles",
            f"  throughput {self.throughput_rpmc:>14.2f} req/Mcycle",
            "",
            "  latency (enqueue -> commit-durable, cycles)",
            f"    p50  {self.p50:>12.1f}",
            f"    p99  {self.p99:>12.1f}",
            f"    p999 {self.p999:>12.1f}",
        ]
        if self.per_shard:
            lines.append("")
            lines.append(
                "  shard  admitted  rejected  completed        cycles"
                "          p50          p99"
            )
            for shard in self.per_shard:
                lines.append(
                    f"  {shard.shard_id:>5}  {shard.admitted:>8}  "
                    f"{shard.rejected:>8}  {shard.completed:>9}  "
                    f"{shard.cycles:>12.1f}  {shard.p50:>11.1f}  "
                    f"{shard.p99:>11.1f}"
                )
        if self.replication:
            rep = self.replication
            lines.append("")
            lines.append(
                f"  replication: {rep.get('replicas', 0)} replica(s)/shard, "
                f"{rep.get('shipped', 0)} records shipped, "
                f"{rep.get('compactions', 0)} ring compaction(s), "
                f"{rep.get('records_compacted', 0)} records folded into "
                "checkpoints"
            )
        if self.adaptation:
            adapt = self.adaptation
            finals = ",".join(adapt.get("final_designs", ()))
            lines.append("")
            lines.append(
                f"  adaptive: {adapt.get('switches', 0)} switch(es), "
                f"window {adapt.get('window_txns', 0)} txns, "
                f"start {adapt.get('start_design', '?')} -> final {finals}"
            )
            for decision in adapt.get("decisions", ()):
                lines.append(
                    f"    cycle {decision.get('cycle', 0.0):.0f} shard "
                    f"{decision.get('shard', 0)}: {decision.get('from')} -> "
                    f"{decision.get('to')} ({decision.get('outcome')})"
                )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Markdown summary for the CI ``serve-smoke`` artifact."""
        lines = [
            f"### `repro serve` — {self.workload} / {self.design}",
            "",
            f"{self.shards} shard(s) x {self.threads} thread(s), "
            f"{self.arrival} arrivals at {self.rate:g} req/cycle "
            f"(seed {self.seed})",
            "",
            "| metric | value |",
            "| --- | ---: |",
            f"| offered | {self.offered} |",
            f"| admitted | {self.admitted} |",
            f"| rejected | {self.rejected} |",
            f"| completed | {self.completed} |",
            f"| throughput (req/Mcycle) | {self.throughput_rpmc:.2f} |",
            f"| p50 latency (cycles) | {self.p50:.1f} |",
            f"| p99 latency (cycles) | {self.p99:.1f} |",
            f"| p999 latency (cycles) | {self.p999:.1f} |",
        ]
        if self.replication:
            rep = self.replication
            lines.append(
                f"| replica compactions | {rep.get('compactions', 0)} |"
            )
        if self.adaptation:
            adapt = self.adaptation
            lines.append(
                f"| design switches | {adapt.get('switches', 0)} |"
            )
            lines.append(
                f"| final design(s) | "
                f"{', '.join(adapt.get('final_designs', ()))} |"
            )
        return "\n".join(lines) + "\n"
