"""One independently steppable shard: a machine plus its thread drivers.

A :class:`ShardMachine` owns one :class:`~repro.sim.machine.Machine`
(with its :class:`~repro.txn.runtime.PersistentMemory`) and the
generator per software thread that drives it.  The historical runner
advanced one machine to completion with a private min-heap loop; the
shard keeps the *identical* drive order — a min-heap on
``(core_time, tid)``, one generator advance per pop, drop on
``StopIteration`` — but exposes it cooperatively, so an event-loop
scheduler can interleave many shards and inject work between steps:

``step(until_cycle)``
    Advance any thread whose core clock is behind the horizon; stop once
    the earliest live thread reaches it (or everything finished/parked).
``inject(request)``
    Enqueue one client request and wake parked serve threads.
``drain()``
    Run to completion (and, in serve mode, close the queue first).

Bit-identity: with ``until_cycle=None`` the step loop is structurally
the monolithic loop — same heap contents, same tie-break, same
``next()`` sequence — which is what makes the single-shard scheduler
path bit-identical in cost counters to the pre-refactor runner (the
differential gate in ``tests/integration`` proves it against the golden
fixture).

Volatile workload state: shards may *share* one prepared workload
instance (setup is expensive; the persistent image is per-machine
anyway).  Anything host-side that thread bodies mutate — append
cursors, inode rotors — is checkpointed per shard through the
``Workload.run_state()`` / ``restore_run_state()`` contract and swapped
in around every step window, so interleaved shard stepping can never
leak run state across shards or requests.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

from ..errors import WorkloadError

#: Sentinel a serve thread yields when its queue is empty: the shard
#: parks the thread (removes it from the ready heap) until the next
#: ``inject`` or ``close`` wakes it.
IDLE = object()


class ShardMachine:
    """A steppable execution shard over one machine."""

    def __init__(
        self,
        machine,
        pm,
        workload,
        threads: int,
        *,
        shard_id: int = 0,
        batch_requests: int = 8,
    ) -> None:
        if threads > machine.config.num_cores:
            raise WorkloadError(
                f"{threads} threads need {threads} cores, "
                f"config has {machine.config.num_cores}"
            )
        self.machine = machine
        self.pm = pm
        self.workload = workload
        self.threads = threads
        self.shard_id = shard_id
        self.batch_requests = batch_requests
        self.queue: deque = deque()
        self._apis = [pm.api(core_id=tid, tid=tid) for tid in range(threads)]
        self._gens: list = [None] * threads
        self._ready: list = []
        self._parked: set = set()
        self._closed = False
        self._serving = False
        self._started = False
        # Per-shard checkpoint of the workload's volatile run state,
        # captured at construction (the post-reset baseline) and swapped
        # in around every step window.
        self._run_state = workload.run_state()

    # ------------------------------------------------------------------
    # Mode selection
    # ------------------------------------------------------------------
    def start_batch(self, txns_per_thread: int) -> None:
        """Closed-loop mode: one classic ``thread_body`` generator per
        thread, exactly as the monolithic runner created them."""
        self._start(
            [
                self.workload.thread_body(self._apis[tid], tid, txns_per_thread)
                for tid in range(self.threads)
            ]
        )

    def start_serve(self) -> None:
        """Open-loop mode: every thread serves the shard's request queue."""
        self._serving = True
        self._start(
            [self._serve_body(self._apis[tid], tid) for tid in range(self.threads)]
        )

    def _start(self, generators: list) -> None:
        if self._started:
            raise WorkloadError("shard already started")
        self._started = True
        self._gens = generators
        # Min-heap on core clock; tie-break on thread id for determinism
        # (identical to the historical runner loop).
        self._ready = [
            (self.machine.core_time(tid), tid) for tid in range(self.threads)
        ]
        heapq.heapify(self._ready)

    # ------------------------------------------------------------------
    # The cooperative core
    # ------------------------------------------------------------------
    def step(self, until_cycle: Optional[float] = None) -> int:
        """Advance threads whose clocks are behind ``until_cycle``.

        ``None`` means no horizon: run until every live thread finished
        or parked.  Returns the number of generator advances made.  The
        drive order is the monolithic runner's: pop the thread with the
        lowest core clock, advance its generator once, push it back at
        its new clock.
        """
        if not self._started:
            raise WorkloadError("shard not started (call start_batch/start_serve)")
        ready = self._ready
        gens = self._gens
        machine = self.machine
        workload = self.workload
        workload.restore_run_state(self._run_state)
        steps = 0
        while ready:
            if until_cycle is not None and ready[0][0] >= until_cycle:
                break
            _, tid = heapq.heappop(ready)
            try:
                value = next(gens[tid])
            except StopIteration:
                continue
            if value is IDLE:
                self._parked.add(tid)
                continue
            heapq.heappush(ready, (machine.core_time(tid), tid))
            steps += 1
        self._run_state = workload.run_state()
        return steps

    def inject(self, request) -> None:
        """Enqueue one client request; wakes parked serve threads."""
        if not self._serving:
            raise WorkloadError("inject requires a serving shard (start_serve)")
        if self._closed:
            raise WorkloadError("inject after close")
        self.queue.append(request)
        if self._parked:
            self._wake_parked()

    def close(self) -> None:
        """No further injections: parked threads wake to finish and exit."""
        self._closed = True
        if self._parked:
            self._wake_parked()

    def drain(self) -> None:
        """Run to completion (closing the request queue in serve mode)."""
        if self._serving and not self._closed:
            self.close()
        self.step(None)

    def _wake_parked(self) -> None:
        machine = self.machine
        for tid in sorted(self._parked):
            heapq.heappush(self._ready, (machine.core_time(tid), tid))
        self._parked.clear()

    # ------------------------------------------------------------------
    # Safe-switch protocol (repro.adapt)
    # ------------------------------------------------------------------
    def quiesce(self) -> int:
        """Advance mid-transaction threads until none is in flight.

        Thread generators yield at transaction boundaries (the
        ``thread_body`` contract and the serve body both commit before
        yielding), so a quiesce is normally a no-op; this loop is the
        defensive general case for generators that yield inside a
        transaction.  Drive order stays the canonical
        ``(core_time, tid)`` min-heap order, restricted to in-transaction
        threads, so quiescing is deterministic.  Returns the number of
        generator advances made.
        """
        if not self._started:
            return 0
        apis = self._apis
        if not any(api.in_transaction for api in apis):
            return 0
        ready = self._ready
        gens = self._gens
        machine = self.machine
        workload = self.workload
        workload.restore_run_state(self._run_state)
        deferred = []
        steps = 0
        while ready and any(api.in_transaction for api in apis):
            clock, tid = heapq.heappop(ready)
            if not apis[tid].in_transaction:
                deferred.append((clock, tid))
                continue
            try:
                value = next(gens[tid])
            except StopIteration:
                continue
            if value is IDLE:
                self._parked.add(tid)
                continue
            heapq.heappush(ready, (machine.core_time(tid), tid))
            steps += 1
        for entry in deferred:
            heapq.heappush(ready, entry)
        self._run_state = workload.run_state()
        return steps

    def switch_design(self, new_policy) -> float:
        """Quiesce, run the machine's epoch barrier, swap the spec.

        The full safe-switch protocol: in-flight transactions complete
        (:meth:`quiesce`), the machine drains WCBs and log FIFOs and
        forces logged-dirty lines durable before atomically swapping the
        :class:`~repro.core.design.DesignSpec`
        (:meth:`~repro.sim.machine.Machine.switch_design`), every live
        thread API re-reads the policy, and the ready heap is re-priced
        to the barrier-advanced core clocks so drive order stays
        deterministic.  Returns the barrier completion cycle.
        """
        self.quiesce()
        barrier = self.machine.switch_design(new_policy)
        for api in self._apis:
            api.refresh_policy()
        machine = self.machine
        if self._ready:
            self._ready = [
                (machine.core_time(tid), tid) for _clock, tid in self._ready
            ]
            heapq.heapify(self._ready)
        return barrier

    # ------------------------------------------------------------------
    # Serve-mode thread driver
    # ------------------------------------------------------------------
    def _serve_body(self, api, tid: int):
        """Pull request batches off the queue into tagged transactions."""
        queue = self.queue
        workload = self.workload
        machine = self.machine
        limit = self.batch_requests
        while True:
            if not queue:
                if self._closed:
                    return
                yield IDLE
                continue
            batch = []
            while queue and len(batch) < limit:
                batch.append(queue.popleft())
            # Service cannot begin before the newest request in the
            # batch arrived; an idle core's clock advances to that
            # instant (idle wait, not execution).
            machine.advance_core(tid, batch[-1].arrival)
            api.tag_requests(batch)
            with api.transaction():
                for request in batch:
                    workload.serve_request(api, tid, request)
            yield

    # ------------------------------------------------------------------
    # Introspection (admission / reporting)
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every thread finished (empty heap, nothing parked)."""
        return self._started and not self._ready and not self._parked

    @property
    def active(self) -> bool:
        """True while any thread could still advance (ready or parked)."""
        return self._started and bool(self._ready or self._parked)

    def clock(self) -> float:
        """Highest thread core clock (the shard's local notion of now)."""
        return max(
            (self.machine.core_time(tid) for tid in range(self.threads)),
            default=0.0,
        )

    def queue_depth(self) -> int:
        """Requests enqueued but not yet pulled into a transaction."""
        return len(self.queue)

    def log_occupancy(self) -> int:
        """Deepest hardware log-buffer occupancy (0 without HW logging).

        The backpressure signal: records accepted by the HWL engine but
        not yet drained onto the NVRAM bus.  Saturation here means the
        shard's persist bandwidth, not its compute, is the bottleneck.
        """
        buffers = self.machine.log_buffers
        if not buffers:
            return 0
        return max(buffer.occupancy for buffer in buffers)

    def next_event_cycle(self) -> Optional[float]:
        """Clock of the earliest runnable thread (None if all parked/done)."""
        return self._ready[0][0] if self._ready else None

    def completed_requests(self) -> list:
        """``(request, commit_durable, tid)`` in commit order."""
        return self.pm.request_log
