"""Deterministic service layer: steppable shards + event-loop scheduler.

The execution core used to be one monolithic ``run_workload`` loop that
drove a single :class:`~repro.sim.machine.Machine` to completion.  This
package decomposes it into cooperatively steppable pieces:

* :class:`~repro.sched.shard.ShardMachine` — one machine plus its
  per-thread transaction drivers, exposing ``step(until_cycle)`` /
  ``inject(request)`` / ``drain()``.  In *batch* mode it drives the
  classic closed-loop thread bodies with the exact historical
  core-clock min-heap order (bit-identical cost counters, proven by the
  differential gate); in *serve* mode its threads pull client requests
  from a queue, batch them into transactions, and park when idle.
* :class:`~repro.sched.loop.EventLoopScheduler` — multiplexes N shards
  against an open-loop arrival schedule, stepping every shard to each
  arrival instant, admitting or rejecting requests (queue-depth +
  log-buffer backpressure), and draining everything at the end.
* :mod:`~repro.sched.traffic` — the seeded open-loop traffic generator:
  Poisson/uniform/burst arrival schedules over millions of simulated
  clients, with per-request uniform draws that workloads map through
  their own (zipfian, hot-key-skewed) distributions.
* :mod:`~repro.sched.metrics` — enqueue→commit-durable latency
  percentiles (p50/p99/p999, nearest-rank) and the serve report.
* :mod:`~repro.sched.replicate` — optional mid-run log shipping: each
  shard's durable records stream to R replica rings which compact below
  the cluster-committed frontier while the shard is still being stepped.
* :mod:`~repro.sched.serve` — ``run_serve``: the end-to-end open-loop
  scenario behind the ``repro serve`` CLI.

Everything here is deterministic: all randomness flows through the
seeded :mod:`repro.workloads.rng` streams, and simulated time is the
only clock (``repro lint`` enforces both via the ``sched-entropy``
pass).
"""

from __future__ import annotations

from .loop import AdmissionConfig, EventLoopScheduler
from .metrics import ServeReport, percentile
from .shard import ShardMachine
from .traffic import Request, TrafficConfig, open_loop_schedule

__all__ = [
    "AdmissionConfig",
    "EventLoopScheduler",
    "Request",
    "ServeReport",
    "ShardMachine",
    "TrafficConfig",
    "open_loop_schedule",
    "percentile",
]
