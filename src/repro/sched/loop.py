"""Deterministic event-loop scheduler over N steppable shards.

The loop walks an open-loop arrival schedule in arrival order.  Before
each request is (maybe) admitted, **every** shard is stepped up to the
arrival instant — simulated time advances globally, so a shard's state
at admission time is exactly what it would have been had the shards run
on real parallel hardware with a shared clock.  Admission then looks at
the target shard only: a bounded request queue models a finite accept
backlog, and a log-buffer occupancy bound models persist-bandwidth
backpressure (the HWL engine's buffer is the first thing to saturate
when a design's drain path is slow — rejecting there is how a real
front-end would shed load instead of growing an unbounded queue).

Everything is a pure function of (shard construction order, schedule),
so two runs with the same seed produce identical interleavings, stats,
and reports — the determinism property tests replay exactly this loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class AdmissionConfig:
    """Backpressure policy applied per-shard at each arrival."""

    max_queue_depth: int = 64
    """Reject when the shard already holds this many undispatched
    requests."""
    log_buffer_limit: Optional[int] = None
    """Reject when the shard's deepest hardware log buffer holds at
    least this many undrained records; ``None`` disables the check
    (software logging has no hardware buffer to saturate)."""

    def validate(self) -> None:
        if self.max_queue_depth <= 0:
            raise ConfigError("max_queue_depth must be positive")
        if self.log_buffer_limit is not None and self.log_buffer_limit <= 0:
            raise ConfigError("log_buffer_limit must be positive or None")


class EventLoopScheduler:
    """Multiplex shards against time and an arrival schedule."""

    def __init__(
        self,
        shards: list,
        admission: Optional[AdmissionConfig] = None,
        checkpoint: Optional[Callable[[Optional[float]], None]] = None,
        drain_checkpoint_cycles: Optional[float] = None,
    ) -> None:
        if not shards:
            raise ConfigError("scheduler needs at least one shard")
        self.shards = list(shards)
        self.admission = admission or AdmissionConfig()
        self.admission.validate()
        #: Called after the loop steps all shards to each arrival horizon
        #: (and once with ``None`` after the final drain).  Replication
        #: hooks in here: everything durable strictly before the horizon
        #: is safe to ship.
        self.checkpoint = checkpoint
        if drain_checkpoint_cycles is not None and drain_checkpoint_cycles <= 0:
            raise ConfigError("drain_checkpoint_cycles must be positive or None")
        #: When set, the post-schedule drain advances in bounded windows
        #: of this many cycles, calling ``checkpoint`` after each — so
        #: checkpoint consumers (the adaptive controller above all) keep
        #: observing while queued backlog is served.  ``None`` keeps the
        #: classic single uncheckpointed drain.
        self.drain_checkpoint_cycles = drain_checkpoint_cycles
        self.admitted: list = []
        self.rejected: list = []

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Run every shard to completion (batch mode, or post-schedule).

        With ``drain_checkpoint_cycles`` set (and a checkpoint hook),
        queues are closed first and the shards advance horizon window by
        horizon window, checkpointing between windows, until no thread
        can move; a final unbounded drain settles any residue either
        way.
        """
        if self.drain_checkpoint_cycles is not None and self.checkpoint is not None:
            for shard in self.shards:
                shard.close()
            horizon = max(shard.clock() for shard in self.shards)
            while any(shard.active for shard in self.shards):
                horizon += self.drain_checkpoint_cycles
                self.step_all(horizon)
                self.checkpoint(horizon)
        for shard in self.shards:
            shard.drain()

    # ------------------------------------------------------------------
    def step_all(self, until_cycle: Optional[float]) -> int:
        """Advance every shard to the horizon; returns total advances."""
        steps = 0
        for shard in self.shards:
            steps += shard.step(until_cycle)
        return steps

    def run_open_loop(self, schedule: list) -> None:
        """Play an arrival schedule through the shards to completion.

        For each request in arrival order: step all shards to the
        arrival instant, then admit to (or reject from) the request's
        target shard.  After the last arrival, queues close and every
        shard drains.
        """
        admission = self.admission
        for request in schedule:
            self.step_all(request.arrival)
            if self.checkpoint is not None:
                self.checkpoint(request.arrival)
            shard = self.shards[request.shard]
            if shard.queue_depth() >= admission.max_queue_depth or (
                admission.log_buffer_limit is not None
                and shard.log_occupancy() >= admission.log_buffer_limit
            ):
                self.rejected.append(request)
                continue
            shard.inject(request)
            self.admitted.append(request)
        self.drain()
        if self.checkpoint is not None:
            self.checkpoint(None)
