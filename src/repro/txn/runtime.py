"""Transaction runtime: the paper's software abstraction, lowered per design.

:class:`PersistentMemory` is the user-facing facade over one
:class:`~repro.sim.machine.Machine`.  Each software thread obtains a
:class:`ThreadAPI` bound to a core and drives transactions through it:

.. code-block:: python

    api = pm.api(core_id=0, tid=0)
    api.tx_begin()
    value = api.read(addr, 8)
    api.write(addr, new_value)
    api.tx_commit()

``write`` is lowered according to the machine's
:class:`~repro.core.design.DesignSpec` mechanisms:

* no log backend (``non-pers``) — a plain store;
* hardware logging (``hw-rlog``/``hw-ulog``/``hwl``/``fwb`` and any
  custom ``hw+…`` spec) — a persistent store; the HWL engine reacts
  inside the cache hierarchy with **zero extra instructions** (the
  paper's central efficiency claim);
* software logging with undo content (``unsafe-base``/``undo-clwb``) —
  an explicit old-value load, bookkeeping instructions, an uncacheable
  log store, then the data store (Figure 2(a));
* software redo-only logging (``redo-clwb``) — an uncacheable redo log
  store; the in-place store is *deferred* until the redo log is durable
  (the Figure 1(b) memory barrier), with reads served from a write-set
  overlay.

``tx_commit`` likewise lowers to a commit protocol chosen by the spec's
commit/content/write-back mechanisms and returns the transaction's
durability time, which the :class:`GoldenModel` records for
crash-consistency verification.
"""

from __future__ import annotations

from typing import Optional

from ..core.design import CommitProtocol, DesignSpec
from ..core.logrecord import LogRecord, RecordKind
from ..core.nvlog import PlacedRecord
from ..errors import TransactionError
from ..sim.machine import Machine
from ..sim.microops import CLWB, Compute, Fence, Load, LogStore, Store, TxBegin, TxCommit
from ..utils import line_address, split_words
from .heap import PersistentHeap


class GoldenModel:
    """Commit-ordered record of every transaction's final writes.

    Used by crash tests: the expected NVRAM state at crash time ``T`` is
    the setup image plus the writes of every transaction whose commit was
    durable by ``T``, applied in commit order.
    """

    def __init__(self) -> None:
        self.commits: list[tuple[float, dict[int, bytes]]] = []
        self.staged: dict[int, tuple[int, dict[int, bytes]]] = {}

    def record(self, durable_time: float, writes: dict[int, bytes]) -> None:
        """Record one committed transaction."""
        self.commits.append((durable_time, dict(writes)))

    def stage(self, tid: int, physical_txid: int, writes: dict[int, bytes]) -> None:
        """Mark ``tid``'s current transaction *in doubt*.

        Called just before the first micro-op of the commit sequence that
        could make the commit record durable.  A crash inside that
        sequence leaves the transaction neither committed nor aborted
        from the program's point of view — recovery decides, by whether
        the commit record survived.  Crash verifiers consult
        :attr:`staged` together with the recovery report's committed
        transaction IDs to accept either outcome.
        """
        self.staged[tid] = (physical_txid, dict(writes))

    def finalize(self, tid: int) -> None:
        """The commit sequence completed; the transaction is no longer in
        doubt (its outcome is in :attr:`commits`)."""
        self.staged.pop(tid, None)

    def expected_at(self, crash_time: float) -> dict[int, bytes]:
        """Word-piece image of all transactions durable by ``crash_time``."""
        image: dict[int, bytes] = {}
        for durable, writes in sorted(self.commits, key=lambda item: item[0]):
            if durable <= crash_time:
                image.update(writes)
        return image

    def touched_addresses(self) -> set[int]:
        """Every word-piece address written by any recorded transaction."""
        touched: set[int] = set()
        for _durable, writes in self.commits:
            touched.update(writes)
        return touched


class ThreadAPI:
    """Transaction interface for one software thread on one core."""

    def __init__(self, pm: "PersistentMemory", core_id: int, tid: int) -> None:
        self._pm = pm
        self._machine = pm.machine
        self._policy = pm.machine.policy
        self.core_id = core_id
        self.tid = tid
        self._txid: Optional[int] = None
        self._writes: dict[int, bytes] = {}
        self._write_lines: set[int] = set()
        self._overlay: dict[int, bytes] = {}
        self._pending_frees: list[tuple[int, int]] = []
        self._local_free: dict[int, list[int]] = {}
        self._tagged_requests: Optional[list] = None

    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        """True between ``tx_begin`` and ``tx_commit``."""
        return self._txid is not None

    def refresh_policy(self) -> None:
        """Re-read the machine's active design after a safe switch.

        The policy is cached at construction because every ``write`` and
        ``tx_commit`` consults it; a mid-run design switch
        (:meth:`repro.sim.machine.Machine.switch_design`) must call this
        on every live API, outside any transaction, or the thread keeps
        lowering stores for the pre-switch mechanisms.
        """
        if self.in_transaction:
            raise RuntimeError(
                "cannot refresh the design policy mid-transaction "
                f"(tid={self.tid}, txid={self._txid})"
            )
        self._policy = self._pm.machine.policy

    @property
    def now(self) -> float:
        """This thread's core clock."""
        return self._machine.core_time(self.core_id)

    @property
    def heap(self) -> PersistentHeap:
        """The shared persistent heap (allocation is host-side metadata)."""
        return self._pm.heap

    # ------------------------------------------------------------------
    # Allocation: thread-local recycling with commit-deferred frees.
    #
    # A block freed inside a transaction must not be reused by another
    # thread before that transaction commits — otherwise the reuser's
    # writes and the freer's undo records race in the log, and recovery
    # (which is not full ARIES) could roll a committed write back.  Frees
    # therefore quarantine until commit and recycle only within the
    # freeing thread.
    # ------------------------------------------------------------------
    def alloc(self, size: int) -> int:
        """Allocate persistent memory, preferring this thread's recycled
        blocks."""
        from ..utils import align_up

        size = align_up(size, 8)
        bucket = self._local_free.get(size)
        if bucket:
            return bucket.pop()
        return self._pm.heap.alloc(size)

    def free(self, addr: int, size: int) -> None:
        """Release a block; deferred to commit when inside a transaction."""
        from ..utils import align_up

        size = align_up(size, 8)
        if self.in_transaction:
            self._pending_frees.append((addr, size))
        else:
            self._local_free.setdefault(size, []).append(addr)

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def tx_begin(self) -> int:
        """Start a transaction; returns the user transaction ID."""
        if self.in_transaction:
            raise TransactionError("nested transactions are not supported")
        policy = self._policy
        txid = self._pm.next_txid()
        self._txid = txid
        self._writes = {}
        self._write_lines = set()
        self._overlay = {}
        logging = self._machine.config.logging
        if policy.uses_sw_logging:
            overhead = logging.softlog_instrs_tx_begin
        elif policy.uses_hw_logging:
            overhead = logging.hw_instrs_tx_begin
        else:
            overhead = 0
        self._machine.execute(
            self.core_id, TxBegin(txid=txid, tid=self.tid, overhead_instrs=overhead)
        )
        if policy.uses_sw_logging:
            placed = self._machine.swlog.begin(txid, self.tid)
            self._emit_log(placed, "begin")
        return txid

    def tag_requests(self, requests: list) -> None:
        """Attribute the *next* transaction to a batch of client requests.

        Serve mode (:mod:`repro.sched`) batches client requests into one
        transaction; tagging before ``tx_begin`` makes the commit
        attributable: at ``tx_commit`` every tagged request is appended to
        :attr:`PersistentMemory.request_log` together with the commit's
        durability time, giving the enqueue→commit-durable latency the
        service layer reports.  The tag is consumed by the commit.
        """
        self._tagged_requests = list(requests)

    def tx_commit(self) -> float:
        """Commit; returns the commit's durability time.

        For designs without a persistence guarantee the returned time is
        the (optimistic) core clock at commit.
        """
        if not self.in_transaction:
            raise TransactionError("tx_commit outside a transaction")
        policy = self._policy
        txid = self._txid
        durable = self._commit_for_policy(policy, txid)
        tracer = self._machine.tracer
        if tracer is not None:
            tracer.emit(
                self.now,
                "commit_reported",
                self.core_id,
                txid=txid,
                tid=self.tid,
                durable=durable,
            )
        self._pm.golden.record(durable, self._writes)
        self._pm.golden.finalize(self.tid)
        if self._tagged_requests is not None:
            request_log = self._pm.request_log
            for request in self._tagged_requests:
                request_log.append((request, durable, self.tid))
                if tracer is not None:
                    tracer.emit(
                        self.now,
                        "request_done",
                        self.core_id,
                        txid=txid,
                        tid=self.tid,
                        seq=getattr(request, "seq", None),
                        arrival=getattr(request, "arrival", None),
                        durable=durable,
                    )
            self._tagged_requests = None
        self._txid = None
        self._writes = {}
        self._write_lines = set()
        self._overlay = {}
        for addr, size in self._pending_frees:
            self._local_free.setdefault(size, []).append(addr)
        self._pending_frees = []
        return durable

    def transaction(self) -> "_TxContext":
        """Context manager: ``with api.transaction(): ...``."""
        return _TxContext(self)

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> bytes:
        """Transactional (or plain) read of ``size`` bytes."""
        line_size = self._machine.config.line_size
        out = bytearray()
        cursor = addr
        remaining = size
        while remaining > 0:
            line_end = line_address(cursor, line_size) + line_size
            take = min(remaining, line_end - cursor)
            data = self._machine.execute(self.core_id, Load(cursor, take))
            out += data
            cursor += take
            remaining -= take
        if self._overlay:
            self._patch_overlay(addr, out)
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Persistent write, lowered according to the machine's policy."""
        if not self.in_transaction:
            raise TransactionError("persistent writes require a transaction")
        policy = self._policy
        for piece_addr, piece in split_words(addr, data):
            self._writes[piece_addr] = piece
            self._write_lines.add(
                line_address(piece_addr, self._machine.config.line_size)
            )
            if not (policy.uses_hw_logging or policy.uses_sw_logging):
                self._machine.execute(self.core_id, Store(piece_addr, piece))
            elif policy.uses_hw_logging:
                self._machine.execute(
                    self.core_id,
                    Store(
                        piece_addr,
                        piece,
                        persistent=True,
                        txid=self._txid,
                        tid=self.tid,
                    ),
                )
            elif policy.defers_in_place_stores:
                self._sw_redo_write(piece_addr, piece)
            else:
                self._sw_undo_write(piece_addr, piece)

    def compute(self, count: int) -> None:
        """Execute ``count`` non-memory instructions."""
        if count > 0:
            self._machine.execute(self.core_id, Compute(count))

    # ------------------------------------------------------------------
    # Per-design lowering
    # ------------------------------------------------------------------
    def _sw_undo_write(self, addr: int, piece: bytes) -> None:
        """Software undo logging: load old value, log it, then store."""
        logging = self._machine.config.logging
        old = self._machine.execute(self.core_id, Load(addr, len(piece)))
        self.compute(logging.softlog_instrs_per_record)
        placed = self._machine.swlog.data(self._txid, self.tid, addr, old, piece)
        self._emit_log(placed, "data")
        self._machine.execute(self.core_id, Store(addr, piece))

    def _sw_redo_write(self, addr: int, piece: bytes) -> None:
        """Software redo logging: log the new value; defer the store."""
        logging = self._machine.config.logging
        self.compute(logging.softlog_instrs_per_record)
        placed = self._machine.swlog.data(self._txid, self.tid, addr, b"", piece)
        self._emit_log(placed, "data")
        self._overlay[addr] = piece

    def _commit_for_policy(self, policy: DesignSpec, txid: int) -> float:
        logging = self._machine.config.logging
        core = self.core_id
        if policy.uses_hw_logging:
            # The commit record is appended inside the TxCommit micro-op;
            # from the moment it executes the transaction's fate belongs
            # to the log, so stage it as in-doubt first.
            self._pm.golden.stage(
                self.tid,
                self._machine.registers.physical_txid(txid),
                self._writes,
            )
            durable = self._machine.execute(
                core,
                TxCommit(
                    txid=txid,
                    tid=self.tid,
                    overhead_instrs=logging.hw_instrs_tx_commit,
                ),
            )
            if policy.uses_clwb_at_commit:
                # hwl still forces write-backs with clwb, but delayed past
                # the commit point and unfenced (Figure 1(c): "clwb can be
                # delayed") — the write-backs are posted, not waited on.
                for line in sorted(self._write_lines):
                    self._machine.execute(core, CLWB(line))
            if policy.commit is CommitProtocol.INSTANT:
                return self.now  # optimistic; durability not awaited
            return float(durable) if durable is not None else self.now

        if not policy.uses_sw_logging:
            self._machine.execute(core, TxCommit(txid=txid, tid=self.tid))
            return self.now

        # Software logging designs.
        overhead = logging.softlog_instrs_tx_commit
        if policy.commit is CommitProtocol.INSTANT:
            # unsafe-base: append the commit record and report commit at
            # the core clock without ever fencing — no guarantee.
            physical = self._machine.registers.physical_txid(txid)
            placed = self._machine.swlog.commit(txid, self.tid)
            self._pm.golden.stage(self.tid, physical, self._writes)
            self._emit_log(placed, "commit")
            self._machine.execute(
                core, TxCommit(txid=txid, tid=self.tid, overhead_instrs=overhead)
            )
            return self.now  # optimistic; no durability guarantee

        if not policy.logs_redo:
            # Undo protocol (undo-clwb): force the data (the write-back
            # hook already guarantees the undo records reach NVRAM
            # first), fence, then write the commit record.
            if policy.uses_clwb_at_commit:
                for line in sorted(self._write_lines):
                    self._machine.execute(core, CLWB(line))
            self._machine.execute(core, Fence())
            physical = self._machine.registers.physical_txid(txid)
            placed = self._machine.swlog.commit(txid, self.tid)
            self._pm.golden.stage(self.tid, physical, self._writes)
            self._emit_log(placed, "commit")
            self._machine.execute(
                core, TxCommit(txid=txid, tid=self.tid, overhead_instrs=overhead)
            )
            # The commit record drains with the WCB; its completion is the
            # real commit point (no extra fence needed for correctness —
            # an un-drained commit record just rolls the transaction back).
            # Report that completion exactly: a crash between it and the
            # core observing it still recovers the transaction.
            return self._machine.cores[core].wcb.flush(self.now)

        # Redo protocol (redo-clwb): full redo log (incl. commit record)
        # durable is the commit point; only then do the in-place stores
        # start.  The post-transaction clwbs are posted, not fenced — the
        # redo log already guarantees recoverability of the in-place data.
        physical = self._machine.registers.physical_txid(txid)
        placed = self._machine.swlog.commit(txid, self.tid)
        self._pm.golden.stage(self.tid, physical, self._writes)
        self._emit_log(placed, "commit")
        self._machine.execute(core, Fence())
        # The commit point is the instant the commit record became
        # durable (recovery redoes any fully-logged transaction whose
        # commit record survived), not the later fence retirement.
        durable = self._machine.cores[core].wcb.last_completion
        self._machine.execute(
            core, TxCommit(txid=txid, tid=self.tid, overhead_instrs=overhead)
        )
        for addr, piece in self._overlay.items():
            self._machine.execute(core, Store(addr, piece))
        if policy.uses_clwb_at_commit:
            for line in sorted(self._write_lines):
                self._machine.execute(core, CLWB(line))
        return durable

    # ------------------------------------------------------------------
    def _emit_log(self, placed: PlacedRecord, kind: str) -> None:
        """Issue the uncacheable store for a placed software log record."""
        machine = self._machine
        displaced_dirty = False
        force_completion = None
        if placed.displaced_line is not None and machine.hierarchy.is_line_dirty(
            placed.displaced_line
        ):
            displaced_dirty = True
            if self._policy.protects_log_wrap:
                completion = machine.force_line_durable(
                    placed.displaced_line, self.now
                )
                force_completion = completion
                # The overwriting record must not become durable before
                # the displaced data line (a crash in between would lose
                # the only durable copy of that line's committed value),
                # so the log store stalls until the force completes —
                # the same ordering HWL._append enforces in hardware.
                core = machine.cores[self.core_id]
                if completion > core.time:
                    core.time = completion
        tracer = machine.tracer
        if tracer is not None:
            record = LogRecord.decode(placed.payload)
            tracer.emit(
                self.now,
                "log_place",
                self.core_id,
                kind=record.kind.name,
                txid=record.txid,
                tid=record.tid,
                addr=record.addr if record.kind is RecordKind.DATA else None,
                undo=record.undo.hex(),
                redo=record.redo.hex(),
                entry_addr=placed.addr,
                slot=placed.slot,
                base=machine.log.base,
                torn=placed.payload[0] & 1,
                displaced_line=placed.displaced_line,
                displaced_dirty=displaced_dirty,
                force_completion=force_completion,
                release=None,
            )
        machine.execute(
            self.core_id, LogStore(placed.addr, placed.payload, kind)
        )

    def _patch_overlay(self, addr: int, out: bytearray) -> None:
        """Apply the redo write-set overlay to a read result."""
        end = addr + len(out)
        for piece_addr, piece in self._overlay.items():
            piece_end = piece_addr + len(piece)
            if piece_end <= addr or piece_addr >= end:
                continue
            lo = max(addr, piece_addr)
            hi = min(end, piece_end)
            out[lo - addr:hi - addr] = piece[lo - piece_addr:hi - piece_addr]


class _TxContext:
    """Context manager wrapping ``tx_begin``/``tx_commit``."""

    def __init__(self, api: ThreadAPI) -> None:
        self._api = api

    def __enter__(self) -> ThreadAPI:
        self._api.tx_begin()
        return self._api

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._api.tx_commit()
        return False


class PersistentMemory:
    """Facade over one machine: heap, thread APIs, golden model."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.heap = PersistentHeap(machine.heap_base, machine.heap_limit)
        self.golden = GoldenModel()
        self.request_log: list = []
        """``(request, commit_durable_time, tid)`` per client request
        served by a tagged transaction (see :meth:`ThreadAPI.tag_requests`),
        in commit order — the service layer's latency source."""
        self._txid_counter = 0

    def next_txid(self) -> int:
        """Allocate a fresh user transaction ID."""
        self._txid_counter += 1
        return self._txid_counter

    def api(self, core_id: int, tid: Optional[int] = None) -> ThreadAPI:
        """Create a thread API bound to ``core_id``."""
        return ThreadAPI(self, core_id, self.tid_for(core_id) if tid is None else tid)

    @staticmethod
    def tid_for(core_id: int) -> int:
        """Default thread ID for a core."""
        return core_id

    # ------------------------------------------------------------------
    # Setup (untimed) access, used to build initial workload state
    # ------------------------------------------------------------------
    def setup_write(self, addr: int, data: bytes) -> None:
        """Functional write bypassing caches and timing (pre-run setup)."""
        self.machine.nvram.poke(addr, data)

    def setup_read(self, addr: int, size: int) -> bytes:
        """Functional read bypassing caches and timing."""
        return self.machine.nvram.peek(addr, size)
