"""Persistent-memory transaction runtime.

* :mod:`~repro.txn.heap` — persistent heap allocator over the NVRAM data
  region;
* :mod:`~repro.txn.runtime` — the ``tx_begin``/``tx_commit`` software
  abstraction (Section IV-A) with per-policy lowering to micro-ops, plus
  the golden commit model used by crash-consistency tests.
"""

from .heap import PersistentHeap
from .runtime import GoldenModel, PersistentMemory, ThreadAPI

__all__ = ["PersistentHeap", "PersistentMemory", "ThreadAPI", "GoldenModel"]
