"""Persistent heap allocator.

A simple bump allocator with size-classed free lists over the NVRAM data
region.  Workloads allocate nodes/buckets/records from it; the allocator
itself is host-side metadata (the paper's workloads likewise manage their
own persistent layouts).
"""

from __future__ import annotations

from ..errors import AddressError
from ..utils import align_up


class PersistentHeap:
    """Bump allocator with free lists, word-aligned by default."""

    def __init__(self, base: int, limit: int, alignment: int = 8) -> None:
        if base >= limit:
            raise AddressError(f"empty heap range [{base:#x}, {limit:#x})")
        self._base = base
        self._limit = limit
        self._alignment = alignment
        self._cursor = align_up(base, alignment)
        self._free: dict[int, list[int]] = {}
        self.allocated_bytes = 0

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the address.

        Raises :class:`AddressError` when the heap is exhausted.
        """
        if size <= 0:
            raise AddressError(f"invalid allocation size {size}")
        size = align_up(size, self._alignment)
        bucket = self._free.get(size)
        if bucket:
            addr = bucket.pop()
            self.allocated_bytes += size
            return addr
        if self._cursor + size > self._limit:
            raise AddressError(
                f"persistent heap exhausted: need {size}, "
                f"{self._limit - self._cursor} left"
            )
        addr = self._cursor
        self._cursor += size
        self.allocated_bytes += size
        return addr

    def free(self, addr: int, size: int) -> None:
        """Return a block to its size-class free list."""
        size = align_up(size, self._alignment)
        if not self._base <= addr < self._limit:
            raise AddressError(f"free of address {addr:#x} outside the heap")
        self._free.setdefault(size, []).append(addr)
        self.allocated_bytes -= size

    def snapshot(self) -> tuple:
        """Capture allocator state (cursor + free lists) for later restore."""
        return self._cursor, {size: list(addrs) for size, addrs in self._free.items()}

    def restore(self, state: tuple) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        cursor, free = state
        self._cursor = cursor
        self._free = {size: list(addrs) for size, addrs in free.items()}

    @property
    def used_bytes(self) -> int:
        """High-water mark of bump allocation."""
        return self._cursor - align_up(self._base, self._alignment)

    @property
    def remaining_bytes(self) -> int:
        """Bytes never yet allocated (free lists not counted)."""
        return self._limit - self._cursor
