"""Fault injection: torn/corrupt log damage, event-indexed crash points,
and structured crash-consistency campaigns.

Three layers:

* :mod:`~repro.faults.plan` — fault specifications (torn in-flight
  writes, bit flips, stuck-at media faults, ghost log records) and the
  :class:`FaultInjector` that applies them at the NVRAM device hooks.
* :mod:`~repro.faults.crashpoints` — deterministic crash points keyed to
  simulator events (micro-op retires, log-buffer drains, FWB scans,
  log-wrap forces, recovery writes) via a :class:`FaultMonitor`.
* :mod:`~repro.faults.campaign` — the campaign driver sweeping crash
  points × fault types × policies and reporting consistency verdicts
  against the golden transaction model (``repro faults`` on the CLI).
"""

from .campaign import (
    FAULT_GHOST,
    FAULT_NONE,
    FAULT_TORN,
    GUARANTEED_POLICIES,
    UNGUARANTEED_POLICIES,
    CampaignResult,
    FaultPoint,
    PointResult,
    PolicyReport,
    campaign_workload,
    default_campaign_system,
    enumerate_points,
    instant_variants,
    resolve_policies,
    run_fault_campaign,
)
from .crashpoints import (
    EXECUTION_KINDS,
    CrashPoint,
    EventKind,
    FaultMonitor,
    sample_indices,
)
from .plan import (
    WORD_BYTES,
    BitFlip,
    FaultInjector,
    GhostRecord,
    StuckAt,
    TornWrite,
)

__all__ = [
    "BitFlip",
    "CampaignResult",
    "CrashPoint",
    "EXECUTION_KINDS",
    "EventKind",
    "FAULT_GHOST",
    "FAULT_NONE",
    "FAULT_TORN",
    "FaultInjector",
    "FaultMonitor",
    "FaultPoint",
    "GhostRecord",
    "GUARANTEED_POLICIES",
    "PointResult",
    "PolicyReport",
    "StuckAt",
    "TornWrite",
    "UNGUARANTEED_POLICIES",
    "WORD_BYTES",
    "campaign_workload",
    "default_campaign_system",
    "enumerate_points",
    "instant_variants",
    "resolve_policies",
    "run_fault_campaign",
    "sample_indices",
]
