"""Fault-injection plans for NVRAM contents and in-flight writes.

A plan is a list of fault specs bound into one :class:`FaultInjector`,
which an experiment installs on an :class:`~repro.sim.nvram.NVRAM`
device (``nvram.injector = injector``).  The device consults it at two
points:

* :meth:`FaultInjector.filter_write` — every timed write passes through
  it on the way to the image, which is where *stuck-at* media faults
  live (the stuck bit swallows whatever is stored over it);
* :meth:`FaultInjector.on_revert` — when a crash reverts an in-flight
  (not-yet-durable) write, a matching :class:`TornWrite` spec keeps a
  word-granularity *prefix* of the new data instead of reverting it
  completely: exactly the partially-persisted log entry the paper's
  torn-bit/checksum machinery exists to reject.

Static image faults — :class:`BitFlip` and :class:`GhostRecord` — are
applied once, after the crash, with :meth:`FaultInjector.corrupt_image`.

All specs are plain frozen dataclasses so campaigns can enumerate,
pickle, and label them; validation failures raise
:class:`~repro.errors.FaultInjectionError` at injector construction, not
at fault time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Union

from ..core.logrecord import HEADER_BYTES, LogRecord, RecordKind
from ..errors import FaultInjectionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.nvram import NVRAM

WORD_BYTES = 8


@dataclass(frozen=True)
class TornWrite:
    """Tear in-flight writes landing in ``[base, end)`` at the crash.

    The first ``keep_words`` 8-byte words of the new data persist; the
    rest reverts to the old contents.  At most ``max_tears`` writes are
    torn (newest first, the order the crash revert walks the journal).
    """

    base: int
    end: int
    keep_words: int = 1
    max_tears: int = 1

    def validate(self) -> None:
        if self.base < 0 or self.end <= self.base:
            raise FaultInjectionError(f"torn-write range [{self.base}, {self.end}) is empty")
        if self.keep_words < 0:
            raise FaultInjectionError("keep_words must be non-negative")
        if self.max_tears <= 0:
            raise FaultInjectionError("max_tears must be positive")


@dataclass(frozen=True)
class BitFlip:
    """Flip bit ``bit`` of the byte at ``addr`` once, at the crash."""

    addr: int
    bit: int

    def validate(self) -> None:
        if self.addr < 0:
            raise FaultInjectionError(f"bit-flip address {self.addr} is negative")
        if not 0 <= self.bit < 8:
            raise FaultInjectionError(f"bit index {self.bit} out of range")


@dataclass(frozen=True)
class StuckAt:
    """Media fault: bit ``bit`` of the byte at ``addr`` always reads ``value``.

    Applied to every write covering the byte and once to the existing
    image when the injector is installed.
    """

    addr: int
    bit: int
    value: int

    def validate(self) -> None:
        if self.addr < 0:
            raise FaultInjectionError(f"stuck-at address {self.addr} is negative")
        if not 0 <= self.bit < 8:
            raise FaultInjectionError(f"bit index {self.bit} out of range")
        if self.value not in (0, 1):
            raise FaultInjectionError("stuck-at value must be 0 or 1")


@dataclass(frozen=True)
class GhostRecord:
    """A plausible-but-corrupt log entry materialised in an empty slot.

    The payload carries the record magic byte and well-formed fields but
    a deliberately wrong checksum — the shape garbage or a remnant of a
    half-reset log would take.  Recovery must count and skip it rather
    than replay it (or truncate the window early).
    """

    slot_addr: int
    entry_size: int
    seed: int = 0

    def validate(self) -> None:
        if self.slot_addr < 0:
            raise FaultInjectionError(f"ghost slot address {self.slot_addr} is negative")
        if self.entry_size < HEADER_BYTES:
            raise FaultInjectionError(f"entry size {self.entry_size} below {HEADER_BYTES}")

    def payload(self) -> bytes:
        """The corrupt entry bytes (checksum byte inverted)."""
        value = ((self.seed * 2654435761) & 0xFFFFFFFFFFFF) or 0xBADC0FFEE
        record = LogRecord(
            kind=RecordKind.DATA,
            txid=(0x7000 + self.seed) & 0xFFFF,
            tid=self.seed & 0xFF,
            addr=value,
            undo=b"\xde\xad" * 4,
            redo=b"\xbe\xef" * 4,
            torn=self.seed & 1,
        )
        raw = bytearray(record.encode(self.entry_size))
        raw[6] ^= 0xFF  # break the checksum, keep everything else plausible
        return bytes(raw)


FaultSpec = Union[TornWrite, BitFlip, StuckAt, GhostRecord]


class FaultInjector:
    """A validated plan of faults, ready to attach to an NVRAM device.

    The injector is passive until wired up: assign it to
    ``nvram.injector`` (write-path and crash-revert faults) and call
    :meth:`corrupt_image` after the crash (static image faults).
    Counters record what actually fired so experiments can tell an
    injection that never triggered from one that was tolerated.
    """

    def __init__(self, plan: Iterable[FaultSpec]) -> None:
        self.plan = tuple(plan)
        self._tears: list[TornWrite] = []
        self._flips: list[BitFlip] = []
        self._stuck: list[StuckAt] = []
        self._ghosts: list[GhostRecord] = []
        for spec in self.plan:
            spec.validate()
            if isinstance(spec, TornWrite):
                self._tears.append(spec)
            elif isinstance(spec, BitFlip):
                self._flips.append(spec)
            elif isinstance(spec, StuckAt):
                self._stuck.append(spec)
            elif isinstance(spec, GhostRecord):
                self._ghosts.append(spec)
            else:  # pragma: no cover - defensive
                raise FaultInjectionError(f"unknown fault spec {spec!r}")
        self.tears_applied = 0
        self.writes_filtered = 0
        self.image_faults_applied = 0
        self._tears_remaining = {id(spec): spec.max_tears for spec in self._tears}

    # ------------------------------------------------------------------
    # NVRAM hooks
    # ------------------------------------------------------------------
    def filter_write(self, addr: int, data: bytes) -> bytes:
        """Apply stuck-at masks to ``data`` on its way to the image."""
        if not self._stuck:
            return data
        end = addr + len(data)
        mutated = None
        for spec in self._stuck:
            if addr <= spec.addr < end:
                if mutated is None:
                    mutated = bytearray(data)
                offset = spec.addr - addr
                if spec.value:
                    mutated[offset] |= 1 << spec.bit
                else:
                    mutated[offset] &= ~(1 << spec.bit) & 0xFF
        if mutated is None:
            return data
        self.writes_filtered += 1
        return bytes(mutated)

    def on_revert(self, addr: int, old: bytes, new: bytes) -> bytes:
        """Decide what an in-flight write leaves behind at the crash.

        ``old`` is the pre-write contents (a full revert), ``new`` what
        the write would have stored.  A matching torn-write spec returns
        a word-granularity mix; otherwise ``old`` is returned unchanged.
        """
        for spec in self._tears:
            remaining = self._tears_remaining[id(spec)]
            if remaining <= 0:
                continue
            if not (spec.base <= addr and addr + len(new) <= spec.end):
                continue
            keep = min(spec.keep_words * WORD_BYTES, len(new))
            if keep >= len(new):
                continue  # a full keep is not a tear
            self._tears_remaining[id(spec)] = remaining - 1
            self.tears_applied += 1
            return new[:keep] + old[keep:]
        return old

    # ------------------------------------------------------------------
    # Static image faults
    # ------------------------------------------------------------------
    def corrupt_image(self, nvram: "NVRAM") -> int:
        """Apply bit-flips and ghost records to the surviving image.

        Stuck-at faults are also stamped once so they hold even for
        bytes that are never written again.  Returns the number of
        faults applied.
        """
        applied = 0
        for flip in self._flips:
            byte = nvram.peek(flip.addr, 1)[0]
            nvram.poke(flip.addr, bytes([byte ^ (1 << flip.bit)]))
            applied += 1
        for ghost in self._ghosts:
            nvram.poke(ghost.slot_addr, ghost.payload())
            applied += 1
        for stuck in self._stuck:
            byte = nvram.peek(stuck.addr, 1)[0]
            if stuck.value:
                byte |= 1 << stuck.bit
            else:
                byte &= ~(1 << stuck.bit) & 0xFF
            nvram.poke(stuck.addr, bytes([byte]))
            applied += 1
        self.image_faults_applied += applied
        return applied
