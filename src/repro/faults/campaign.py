"""Structured fault-injection campaigns over crash points × faults × policies.

A campaign answers the paper's central question — "is a crash at *any*
instant recoverable?" — systematically instead of by sampling wall-clock
fractions.  For each policy it:

1. **Profiles** one deterministic run of the workload to learn how many
   events of each kind (micro-op retires, log-buffer drains, FWB scans,
   log-wrap forces) the configuration generates, and where the recovery
   pass writes.
2. **Enumerates** crash points against those totals — evenly spread
   event indices per kind, plus torn-write and ghost-record fault
   variants, plus crash-*during-recovery* points (first crash mid-run,
   second crash between recovery writes).
3. **Replays** the run once per point, crashes at the event, injects the
   point's faults, recovers (checksums on), and compares the surviving
   NVRAM against the golden committed state at the crash instant.

Every point is a pure function of (workload, seed, policy, point), so a
verdict table is reproducible bit-for-bit.  Guaranteed designs (fwb,
hwl, undo-clwb, redo-clwb) must show **zero** violations; unguaranteed
designs (unsafe-base, hw-rlog, hw-ulog) are expected to violate — the
campaign labels their verdicts accordingly rather than failing.

Mid-recovery points additionally assert *convergence*: the NVRAM image
after crash → interrupted recovery → full recovery must be bit-identical
to the image after a single uninterrupted recovery.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.design import (
    FWB,
    HW_RLOG,
    HW_ULOG,
    HWL,
    REDO_CLWB,
    UNDO_CLWB,
    UNSAFE_BASE,
    CommitProtocol,
    DesignSpec,
    resolve_design,
)
from ..core.nvlog import CircularLog
from ..core.recovery import RecoveryManager
from ..errors import RecoveryInterrupted, SimulatedCrash, WorkloadError
from ..harness.runner import PreparedWorkload, prepare_workload
from ..sim.config import (
    CacheConfig,
    CoreConfig,
    LoggingConfig,
    MemCtrlConfig,
    NVDimmConfig,
    SystemConfig,
)
from ..sim.machine import Machine
from ..sim.nvram import NVRAM
from ..txn.runtime import PersistentMemory
from ..workloads import make_microbenchmark
from ..workloads.base import Workload
from .crashpoints import CrashPoint, EventKind, FaultMonitor, sample_indices
from .plan import FaultInjector, GhostRecord, TornWrite

#: The four designs the paper guarantees recoverability for.
GUARANTEED_POLICIES = (FWB, HWL, UNDO_CLWB, REDO_CLWB)

#: Designs the campaign may run but which promise nothing.
UNGUARANTEED_POLICIES = (UNSAFE_BASE, HW_RLOG, HW_ULOG)

FAULT_NONE = "none"
FAULT_TORN = "torn"
FAULT_GHOST = "ghost"

#: Small-footprint constructor overrides per microbenchmark so a campaign
#: cell runs in well under a second on the tiny campaign machine.
_SMALL_WORKLOADS: Dict[str, dict] = {
    "hash": dict(buckets_per_partition=16, keys_per_partition=64),
    "rbtree": dict(keys_per_partition=128),
    "btree": dict(keys_per_partition=128),
    "sps": dict(entries_per_partition=512),
    "ssca2": dict(vertices_per_partition=64, initial_edges_per_vertex=4),
}


def default_campaign_system(log_entries: int = 128) -> SystemConfig:
    """A miniature machine for campaigns: 2 cores, 4 MB NVRAM, small log.

    A small ring wraps within a short run, so the campaign exercises
    wrap-protection and parity-boundary scanning without long runs.
    """
    return SystemConfig(
        num_cores=2,
        core=CoreConfig(),
        l1=CacheConfig(size_bytes=4 * 1024, ways=4, line_size=64, latency_ns=1.6),
        llc=CacheConfig(size_bytes=32 * 1024, ways=8, line_size=64, latency_ns=4.4),
        memctrl=MemCtrlConfig(),
        nvram=NVDimmConfig(size_bytes=4 * 1024 * 1024),
        logging=LoggingConfig(log_entries=log_entries),
    )


def campaign_workload(name: str, seed: int) -> Workload:
    """A small-footprint instance of microbenchmark ``name``."""
    return make_microbenchmark(name, seed=seed, **_SMALL_WORKLOADS.get(name, {}))


@dataclass(frozen=True)
class FaultPoint:
    """One campaign cell: crash at an event occurrence, with a fault."""

    kind: EventKind
    index: int
    fault: str = FAULT_NONE

    @property
    def label(self) -> str:
        """Human-readable cell name (stable across runs)."""
        suffix = "" if self.fault == FAULT_NONE else f"+{self.fault}"
        return f"{self.kind.value}[{self.index}]{suffix}"


@dataclass
class PointResult:
    """Outcome of one fault point under one policy."""

    point: FaultPoint
    crash_time: float
    triggered: bool
    mismatches: int
    torn_records_skipped: int = 0
    checksum_failures: int = 0
    fault_applied: bool = False
    recovery_interrupted: bool = False
    converged: bool = True

    @property
    def consistent(self) -> bool:
        """True when recovery reproduced the golden committed state."""
        return self.mismatches == 0 and self.converged


@dataclass
class PolicyReport:
    """All point outcomes for one design."""

    policy: DesignSpec
    points: List[PointResult] = field(default_factory=list)

    @property
    def guaranteed(self) -> bool:
        """Whether the design promises crash consistency at all."""
        return self.policy.persistence_guaranteed

    @property
    def violations(self) -> List[PointResult]:
        """Points where recovery failed to reproduce the golden state."""
        return [result for result in self.points if not result.consistent]

    @property
    def consistent(self) -> bool:
        """True when every point recovered to the golden state."""
        return not self.violations

    @property
    def torn_records_skipped(self) -> int:
        """Total torn records the scans rejected across all points."""
        return sum(result.torn_records_skipped for result in self.points)

    @property
    def checksum_failures(self) -> int:
        """Total mid-window corrupt records skipped across all points."""
        return sum(result.checksum_failures for result in self.points)

    @property
    def verdict(self) -> str:
        """One-word verdict, qualified for unguaranteed designs."""
        if self.consistent:
            return "CONSISTENT"
        if not self.guaranteed:
            return "VIOLATED (expected: no guarantee)"
        return "VIOLATED"


@dataclass
class CampaignResult:
    """Verdict matrix of one campaign."""

    workload: str
    txns_per_thread: int
    threads: int
    seed: int
    reports: List[PolicyReport] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no *guaranteed* policy shows a violation."""
        return all(
            report.consistent for report in self.reports if report.guaranteed
        )

    @property
    def total_points(self) -> int:
        """Points executed across all policies."""
        return sum(len(report.points) for report in self.reports)

    @property
    def rendered(self) -> str:
        """Terminal verdict table plus a per-kind breakdown."""
        width = max(
            [len("policy")] + [len(r.policy.value) for r in self.reports]
        )
        lines = [
            f"fault campaign: workload={self.workload} "
            f"txns={self.txns_per_thread} threads={self.threads} "
            f"seed={self.seed}",
            f"{'policy':{width}s} {'points':>6s} {'violations':>10s} "
            f"{'torn-skip':>9s} {'cksum-fail':>10s}  verdict",
        ]
        for report in self.reports:
            lines.append(
                f"{report.policy.value:{width}s} {len(report.points):6d} "
                f"{len(report.violations):10d} "
                f"{report.torn_records_skipped:9d} "
                f"{report.checksum_failures:10d}  {report.verdict}"
            )
        for report in self.reports:
            if not report.violations:
                continue
            shown = ", ".join(v.point.label for v in report.violations[:6])
            more = len(report.violations) - 6
            if more > 0:
                shown += f", … +{more}"
            lines.append(f"  {report.policy.value}: failing points: {shown}")
        lines.append(
            f"{self.total_points} point(s) total; campaign "
            f"{'PASSED' if self.passed else 'FAILED'}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Point enumeration
# ----------------------------------------------------------------------
#: Relative share of the point budget per (kind, fault) stream.  RETIRE
#: points dominate (they cover arbitrary instants); event-specific kinds
#: and fault variants each get a slice.
_BUDGET_SHARES: Tuple[Tuple[EventKind, str, float], ...] = (
    (EventKind.RETIRE, FAULT_NONE, 0.34),
    (EventKind.LOG_DRAIN, FAULT_NONE, 0.16),
    (EventKind.FWB_SCAN, FAULT_NONE, 0.08),
    (EventKind.WRAP_FORCE, FAULT_NONE, 0.06),
    (EventKind.RECOVERY, FAULT_NONE, 0.12),
    (EventKind.RETIRE, FAULT_TORN, 0.16),
    (EventKind.RETIRE, FAULT_GHOST, 0.08),
)


def enumerate_points(
    event_totals: Dict[EventKind, int],
    recovery_steps: int,
    budget: int = 60,
) -> List[FaultPoint]:
    """Deterministic crash/fault points against profiled event totals.

    Budget shares that land on event streams the configuration never
    generates (e.g. FWB scans under a software design) are dropped; the
    RETIRE streams absorb the slack so the total stays near ``budget``.
    """
    points: List[FaultPoint] = []
    spent = 0
    for kind, fault, share in _BUDGET_SHARES:
        slice_budget = max(1, round(budget * share))
        total = recovery_steps if kind is EventKind.RECOVERY else event_totals.get(kind, 0)
        indices = sample_indices(total, slice_budget)
        points.extend(FaultPoint(kind, index, fault) for index in indices)
        spent += len(indices)
    shortfall = budget - spent
    if shortfall > 0:
        # Densify the plain RETIRE stream with indices not yet taken.
        taken = {
            p.index for p in points
            if p.kind is EventKind.RETIRE and p.fault == FAULT_NONE
        }
        total = event_totals.get(EventKind.RETIRE, 0)
        extra = [
            index
            for index in sample_indices(total, len(taken) + 2 * shortfall)
            if index not in taken
        ]
        points.extend(
            FaultPoint(EventKind.RETIRE, index) for index in extra[:shortfall]
        )
    return points


# ----------------------------------------------------------------------
# Single-point execution
# ----------------------------------------------------------------------
def _drive(machine: Machine, generators: Sequence) -> None:
    """Advance generators fairly (laggard core first) until exhausted.

    A :class:`~repro.errors.SimulatedCrash` from an armed fault monitor
    propagates to the caller.
    """
    ready = [(machine.core_time(tid), tid) for tid in range(len(generators))]
    heapq.heapify(ready)
    while ready:
        _, tid = heapq.heappop(ready)
        try:
            next(generators[tid])
        except StopIteration:
            continue
        heapq.heappush(ready, (machine.core_time(tid), tid))


def _fresh_run(
    prepared: PreparedWorkload,
    policy: DesignSpec,
    threads: int,
    txns_per_thread: int,
    monitor: Optional[FaultMonitor],
    injector: Optional[FaultInjector] = None,
) -> Tuple[Machine, PersistentMemory, Optional[SimulatedCrash]]:
    """Run the prepared workload under ``policy`` until completion or crash."""
    machine = Machine(prepared.system, policy)
    machine.fault_monitor = monitor
    if injector is not None:
        machine.nvram.injector = injector
    pm = PersistentMemory(machine)
    workload = prepared.workload
    prepared.restore_into(machine)
    pm.heap.restore(prepared.heap_state)
    workload.attach(pm)
    generators = [
        workload.thread_body(pm.api(core_id=tid, tid=tid), tid, txns_per_thread)
        for tid in range(threads)
    ]
    try:
        _drive(machine, generators)
    except SimulatedCrash as crash:
        return machine, pm, crash
    return machine, pm, None


def _find_empty_slot(nvram: NVRAM, log: CircularLog) -> Optional[int]:
    """First never-written (all-zero) slot of the active region, if any."""
    zero = bytes(log.entry_size)
    for slot in range(log.num_entries):
        if nvram.peek(log.entry_addr(slot), log.entry_size) == zero:
            return slot
    return None


def _candidate_states(pm: PersistentMemory, crash_time: float) -> List[dict]:
    """Acceptable golden images at the crash: one per in-doubt outcome.

    Three classes of transaction at a crash:

    * commits with ``durable <= crash_time`` — mandatory in every
      candidate (their commit record survived by construction);
    * commits whose durable time lies *after* the crash — the program
      issued the commit record but it was still in flight; a torn write
      may have persisted enough of it (commit records are all-header) to
      be valid, so recovery may commit or drop them.  The log drains
      FIFO, so only order-respecting prefixes of these are possible;
    * transactions staged mid-commit-sequence (the program never
      observed an outcome) — individually in doubt.

    What is never acceptable is a partial application, which matches no
    candidate."""
    mandatory: dict = {}
    optional: List[dict] = []
    for durable, writes in sorted(pm.golden.commits, key=lambda item: item[0]):
        if durable <= crash_time:
            mandatory.update(writes)
        else:
            optional.append(writes)
    candidates = []
    for depth in range(len(optional) + 1):
        image = dict(mandatory)
        for writes in optional[:depth]:
            image.update(writes)
        candidates.append(image)
    for _physical, writes in pm.golden.staged.values():
        extended = []
        for image in candidates:
            with_tx = dict(image)
            with_tx.update(writes)
            extended.append(with_tx)
        candidates.extend(extended)
    return candidates


def _count_mismatches(nvram: NVRAM, pm: PersistentMemory, crash_time: float) -> int:
    """Word pieces off from the *closest* acceptable golden image."""
    touched = pm.golden.touched_addresses()
    best = None
    for expected in _candidate_states(pm, crash_time):
        wrong = 0
        for addr in touched | set(expected):
            want = expected.get(addr)
            if want is None:
                continue  # written only by post-crash transactions
            if nvram.peek(addr, len(want)) != want:
                wrong += 1
        if best is None or wrong < best:
            best = wrong
        if best == 0:
            break
    return best or 0


def _torn_injector(system: SystemConfig) -> FaultInjector:
    """Tear up to two in-flight log-region writes at the crash."""
    log_base = system.nvram.size_bytes - system.logging.log_bytes
    return FaultInjector(
        [
            TornWrite(
                base=log_base,
                end=system.nvram.size_bytes,
                keep_words=2,
                max_tears=2,
            )
        ]
    )


def _run_execution_point(
    prepared: PreparedWorkload,
    policy: DesignSpec,
    point: FaultPoint,
    threads: int,
    txns_per_thread: int,
) -> PointResult:
    """Crash at an execution event, optionally injure the log, recover."""
    injector = None
    if point.fault == FAULT_TORN:
        injector = _torn_injector(prepared.system)
    monitor = FaultMonitor(CrashPoint(point.kind, point.index))
    machine, pm, crash = _fresh_run(
        prepared, policy, threads, txns_per_thread, monitor, injector
    )
    if crash is not None:
        crash_time = machine.crash_at_point(crash)
    else:  # point beyond the run's events (profile drift): crash at end
        crash_time = machine.crash()
    fault_applied = injector is not None and injector.tears_applied > 0
    if point.fault == FAULT_GHOST:
        slot = _find_empty_slot(machine.nvram, machine.log)
        if slot is not None:
            ghost = FaultInjector(
                [
                    GhostRecord(
                        slot_addr=machine.log.entry_addr(slot),
                        entry_size=machine.log.entry_size,
                        seed=point.index,
                    )
                ]
            )
            ghost.corrupt_image(machine.nvram)
            fault_applied = True
    machine.nvram.injector = None  # recovery sees the damaged image as-is
    report = RecoveryManager(machine.nvram, machine.log).recover()
    return PointResult(
        point=point,
        crash_time=crash_time,
        triggered=crash is not None,
        mismatches=_count_mismatches(machine.nvram, pm, crash_time),
        torn_records_skipped=report.torn_records_skipped,
        checksum_failures=report.checksum_failures,
        fault_applied=fault_applied,
    )


@dataclass
class _RecoveryScenario:
    """Shared state for the crash-during-recovery points of one policy.

    Built once per policy: the workload is crashed at a fixed mid-run
    point and the surviving image snapshotted; a clean single recovery
    of that snapshot provides the convergence reference.
    """

    image: bytes
    crash_time: float
    golden_pm: PersistentMemory
    log_geometry: Tuple[int, int, int]  # base, entries, entry_size
    reference_image: bytes
    reference_report: object
    steps: int

    def cold_manager(self, nvram: NVRAM) -> RecoveryManager:
        """A manager the way a cold restart would build it."""
        base, entries, entry_size = self.log_geometry
        return RecoveryManager(nvram, CircularLog(base, entries, entry_size))


def _build_recovery_scenario(
    prepared: PreparedWorkload,
    policy: DesignSpec,
    threads: int,
    txns_per_thread: int,
    retire_total: int,
) -> Optional[_RecoveryScenario]:
    """Crash mid-run, snapshot, and profile/reference the recovery pass."""
    if retire_total <= 0:
        return None
    mid = CrashPoint(EventKind.RETIRE, max(0, (retire_total * 3) // 5))
    monitor = FaultMonitor(mid)
    machine, pm, crash = _fresh_run(prepared, policy, threads, txns_per_thread, monitor)
    crash_time = machine.crash_at_point(crash) if crash is not None else machine.crash()
    image = bytes(machine.nvram.image)
    log = machine.log
    geometry = (log.base, log.num_entries, log.entry_size)

    # Counting pass doubles as the convergence reference.
    reference = NVRAM(prepared.system.nvram, track_crash_state=False)
    reference.image[: len(image)] = image
    counter = FaultMonitor()
    reference_report = RecoveryManager(reference, CircularLog(*geometry)).recover(
        crash_injector=counter
    )
    return _RecoveryScenario(
        image=image,
        crash_time=crash_time,
        golden_pm=pm,
        log_geometry=geometry,
        reference_image=bytes(reference.image),
        reference_report=reference_report,
        steps=counter.counts[EventKind.RECOVERY],
    )


def _run_recovery_point(
    scenario: _RecoveryScenario,
    system: SystemConfig,
    point: FaultPoint,
) -> PointResult:
    """Interrupt recovery after the point's write; re-recover; verify."""
    nvram = NVRAM(system.nvram, track_crash_state=False)
    nvram.image[: len(scenario.image)] = scenario.image
    interrupted = False
    try:
        scenario.cold_manager(nvram).recover(
            crash_injector=FaultMonitor(CrashPoint(EventKind.RECOVERY, point.index))
        )
    except RecoveryInterrupted:
        interrupted = True
    # Second (clean) recovery pass — the restart after the second crash.
    report = scenario.cold_manager(nvram).recover()

    pm = scenario.golden_pm
    wrong = _count_mismatches(nvram, pm, scenario.crash_time)
    return PointResult(
        point=point,
        crash_time=scenario.crash_time,
        triggered=interrupted,
        mismatches=wrong,
        torn_records_skipped=report.torn_records_skipped,
        checksum_failures=report.checksum_failures,
        fault_applied=interrupted,
        recovery_interrupted=interrupted,
        converged=bytes(nvram.image) == scenario.reference_image,
    )


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------
def instant_variants(policies: Iterable = GUARANTEED_POLICIES) -> Tuple[DesignSpec, ...]:
    """The ``instant``-commit twin of each given design.

    Same mechanisms, commit protocol flipped to ``instant`` — the specs
    whose derived ``persistence_guaranteed`` goes false because the
    reported commit point is no longer tied to durability.  The campaign
    runs them end-to-end to demonstrate (not merely assert) the gap.
    """
    variants = []
    for policy in policies:
        spec = dataclasses.replace(
            resolve_design(policy), commit=CommitProtocol.INSTANT, name=""
        )
        if spec not in variants:
            variants.append(spec)
    return tuple(variants)


def resolve_policies(spec: str) -> Tuple[DesignSpec, ...]:
    """Turn a CLI design spec into a design tuple.

    ``"guaranteed"`` → the four guaranteed designs; ``"all"`` → those
    plus every unguaranteed logging design; ``"instant"`` → the
    instant-commit variants of the guaranteed grid (see
    :func:`instant_variants`); otherwise a comma-separated list of
    design names (e.g. ``"fwb"``) and/or custom mechanism strings
    (``"hw+undo+clwb"``, ``"hw+undo+redo+fwb+instant"``).
    """
    if spec == "guaranteed":
        return GUARANTEED_POLICIES
    if spec == "all":
        return GUARANTEED_POLICIES + UNGUARANTEED_POLICIES
    if spec == "instant":
        return instant_variants()
    policies = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        design = resolve_design(token)
        if design not in policies:
            policies.append(design)
    if not policies:
        raise WorkloadError(f"design spec {spec!r} names no designs")
    return tuple(policies)


def run_fault_campaign(
    policies: Iterable = GUARANTEED_POLICIES,
    workload: str = "hash",
    points: int = 60,
    txns_per_thread: int = 60,
    threads: int = 1,
    seed: int = 7,
    system: Optional[SystemConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run the crash-point × fault × policy matrix; returns all verdicts.

    ``points`` is the per-policy budget; the actual count can differ by a
    few when the configuration lacks some event streams.  ``progress``
    (e.g. ``print``) receives one line per policy as results land.
    """
    system = system or default_campaign_system()
    if threads > system.num_cores:
        raise WorkloadError(
            f"{threads} threads need {threads} cores, config has {system.num_cores}"
        )
    wl = campaign_workload(workload, seed)
    prepared = prepare_workload(wl, system)
    result = CampaignResult(
        workload=workload,
        txns_per_thread=txns_per_thread,
        threads=threads,
        seed=seed,
    )
    for policy in policies:
        policy = resolve_design(policy)
        # 1. Profile the event streams of this design's run.
        profile = FaultMonitor()
        machine, _pm, _ = _fresh_run(
            prepared, policy, threads, txns_per_thread, profile
        )
        machine.nvram.recycle()
        retire_total = profile.counts[EventKind.RETIRE]
        scenario = _build_recovery_scenario(
            prepared, policy, threads, txns_per_thread, retire_total
        )
        # 2. Enumerate points against the profiled totals.
        plan = enumerate_points(
            profile.counts,
            scenario.steps if scenario is not None else 0,
            budget=points,
        )
        # 3. Execute.
        report = PolicyReport(policy)
        for point in plan:
            if point.kind is EventKind.RECOVERY:
                outcome = _run_recovery_point(scenario, system, point)
            else:
                outcome = _run_execution_point(
                    prepared, policy, point, threads, txns_per_thread
                )
            report.points.append(outcome)
        result.reports.append(report)
        if progress is not None:
            progress(
                f"{policy.value}: {len(report.points)} point(s), "
                f"{len(report.violations)} violation(s) — {report.verdict}"
            )
    return result
