"""Deterministic, event-indexed crash points.

Random wall-clock crash fractions miss the failure modes that matter —
the instant a log-buffer record drains, the middle of an FWB scan, the
half-written reset of the log during recovery.  This module keys crash
points to *simulator events* instead: "the 17th micro-op retire", "the
3rd log-buffer drain".  Event indices are stable across runs of the same
configuration, so every crash point is reproducible bit-for-bit.

A :class:`FaultMonitor` installs on ``machine.fault_monitor``; the
machine calls :meth:`FaultMonitor.after_op` once per executed micro-op
and the monitor derives drain/scan/wrap events from the shared stats
counters (zero instrumentation cost when no monitor is installed).  When
the armed :class:`CrashPoint` is reached the monitor raises
:class:`~repro.errors.SimulatedCrash` (execution events) or
:class:`~repro.errors.RecoveryInterrupted` (recovery write events) for
the campaign driver to catch.

Run once with no trigger to *profile* a configuration — the per-kind
event totals — then enumerate points against those totals
(:func:`sample_indices` spreads a budget evenly over an event stream).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import RecoveryInterrupted, SimulatedCrash

if False:  # pragma: no cover - typing only
    from ..sim.stats import MachineStats


class EventKind(str, enum.Enum):
    """The simulator events a crash point can key on."""

    RETIRE = "retire"          # one micro-op retired
    LOG_DRAIN = "log-drain"    # one log record handed to the NVRAM bus
    FWB_SCAN = "fwb-scan"      # one FWB scan pass over the caches
    WRAP_FORCE = "wrap-force"  # one log-wrap forced data write-back
    RECOVERY = "recovery"      # one recovery-pass NVRAM write
    SWITCH_BEFORE = "switch-before"  # at a switch barrier, before the swap
    SWITCH_AFTER = "switch-after"    # at a switch barrier, after the swap

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Execution-side kinds (observable via Machine.execute); RECOVERY is
#: counted by the RecoveryManager instead.
EXECUTION_KINDS = (
    EventKind.RETIRE,
    EventKind.LOG_DRAIN,
    EventKind.FWB_SCAN,
    EventKind.WRAP_FORCE,
)


@dataclass(frozen=True)
class CrashPoint:
    """Crash at the ``index``-th (0-based) occurrence of ``kind``."""

    kind: EventKind
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}[{self.index}]"


class FaultMonitor:
    """Counts simulator events; optionally trips one crash point.

    With ``trigger=None`` the monitor only profiles: run a workload to
    completion and read :attr:`counts` to learn how many events of each
    kind the configuration generates.  With a trigger armed, reaching
    the target occurrence raises immediately.

    ``deadline`` arms a *time-keyed* kill instead: the first retired
    micro-op whose cycle time reaches the deadline raises
    :class:`~repro.errors.SimulatedCrash`.  The distributed campaign
    uses this to kill a node at an instant derived from the shipping
    timeline (mid-transaction, mid-log-ship) rather than an event index;
    determinism still holds because cycle times are deterministic.
    """

    def __init__(
        self,
        trigger: Optional[CrashPoint] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.trigger = trigger
        self.deadline = deadline
        self.counts = {kind: 0 for kind in EventKind}
        self.fired = False
        self._prev_log_records = 0
        self._prev_fwb_scans = 0
        self._prev_wrap_forces = 0

    # ------------------------------------------------------------------
    # Execution-side events (called by Machine.execute)
    # ------------------------------------------------------------------
    def after_op(self, now: float, stats: "MachineStats") -> None:
        """Observe one retired micro-op and any events it generated."""
        if self.deadline is not None and not self.fired and now >= self.deadline:
            self.fired = True
            raise SimulatedCrash("deadline", 0, now)
        self._bump(EventKind.RETIRE, 1, now)
        delta = stats.log_records - self._prev_log_records
        if delta:
            self._prev_log_records = stats.log_records
            self._bump(EventKind.LOG_DRAIN, delta, now)
        delta = stats.fwb_scans - self._prev_fwb_scans
        if delta:
            self._prev_fwb_scans = stats.fwb_scans
            self._bump(EventKind.FWB_SCAN, delta, now)
        delta = stats.log_wrap_forced_writebacks - self._prev_wrap_forces
        if delta:
            self._prev_wrap_forces = stats.log_wrap_forced_writebacks
            self._bump(EventKind.WRAP_FORCE, delta, now)

    # ------------------------------------------------------------------
    # Switch-barrier events (called by Machine.switch_design)
    # ------------------------------------------------------------------
    def at_switch(self, kind: EventKind, now: float) -> None:
        """Observe one side of a safe-switch epoch barrier.

        ``kind`` is :attr:`EventKind.SWITCH_BEFORE` (volatile state
        drained, old spec still active) or :attr:`EventKind.SWITCH_AFTER`
        (new spec just swapped in).  An armed trigger of the matching
        kind raises :class:`~repro.errors.SimulatedCrash` exactly at the
        barrier instant.
        """
        self._bump(kind, 1, now)

    # ------------------------------------------------------------------
    # Recovery-side events (called by RecoveryManager)
    # ------------------------------------------------------------------
    def recovery_step(self) -> None:
        """Observe one recovery NVRAM write (replay or log reset)."""
        count = self.counts[EventKind.RECOVERY]
        self.counts[EventKind.RECOVERY] = count + 1
        trigger = self.trigger
        if (
            trigger is not None
            and not self.fired
            and trigger.kind is EventKind.RECOVERY
            and count >= trigger.index
        ):
            self.fired = True
            raise RecoveryInterrupted(
                f"injected crash after recovery write {count}"
            )

    # ------------------------------------------------------------------
    def _bump(self, kind: EventKind, occurrences: int, now: float) -> None:
        count = self.counts[kind]
        self.counts[kind] = count + occurrences
        trigger = self.trigger
        if (
            trigger is not None
            and not self.fired
            and trigger.kind is kind
            and count <= trigger.index < count + occurrences
        ):
            self.fired = True
            raise SimulatedCrash(kind.value, trigger.index, now)


def sample_indices(total: int, budget: int) -> list[int]:
    """Up to ``budget`` distinct indices spread evenly over ``total`` events.

    Deterministic, endpoint-inclusive-ish (first event, spread, and the
    last event are all sampled when the budget allows), so a campaign
    exercises the earliest and latest occurrences as well as the middle.
    """
    if total <= 0 or budget <= 0:
        return []
    if budget >= total:
        return list(range(total))
    step = total / budget
    picked = sorted({min(total - 1, int(i * step)) for i in range(budget)})
    if total - 1 not in picked:
        picked[-1] = total - 1
    return picked
