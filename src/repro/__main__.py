"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``tables``
    Print Tables I-III (hardware overhead, machine configuration,
    microbenchmark list).
``figure {6,7,8,9,10,11a,11b}``
    Regenerate one of the paper's figures (``--quick`` shrinks the sweep
    for a fast smoke run).
``compare``
    Run one microbenchmark under all eight designs and print the
    comparison (like ``examples/policy_comparison.py``).
``ablate``
    Sweep a user-chosen grid of the mechanism space (``--specs`` or the
    ``--backends``/``--contents``/``--writebacks``/``--commits`` axes)
    through the sweep engine; every spec whose derived
    ``persistence_guaranteed`` is true is additionally gated by the
    persistency-ordering sanitizer.
``faults``
    Run the crash-consistency fault campaign: deterministic crash points
    (micro-op retires, log drains, FWB scans, wrap forces, mid-recovery)
    × fault types (none, torn log writes, ghost records) × policies,
    verifying every surviving NVRAM image against the golden model.
``dist``
    Run the distributed replication campaign: M simulated nodes ship the
    primary's committed HWL log records to R replicas over a
    latency/bandwidth interconnect, then a node-crash × link-fault grid
    (primary mid-transaction / mid-log-ship, replica loss, dropped /
    duplicated / delayed / torn shipment batches, damaged rings,
    mid-recovery kills) proves convergent recovery: every eligible
    survivor reconstructs the same bit-identical committed image, gated
    by the replication-ordering sanitizer rules.
``lifetime``
    Print the Section III-F NVRAM lifetime arithmetic for the configured
    log.
``psan``
    Run the persistency-ordering sanitizer over a benchmark x threads x
    policy matrix (plus adversarial broken-policy probes); exit non-zero
    on any violation in a guaranteed design — or if the probes fail to
    trip.
``pstatic``
    Run the static persistency verifier: prove or refute every psan rule
    symbolically from the compiled trace IR (one column walk, no
    replay), with a happens-before race detector riding along;
    ``--differential`` gates each verdict against the dynamic checker
    and replay-confirms every counterexample.
``lint``
    Run the pluggable determinism/accounting AST lint over the source
    tree; ``--strict`` additionally fails on stale ``lint: allow``
    suppressions.
``bench``
    Performance-regression benchmark suites: ``bench run`` measures the
    registered suites (deterministic cost counters + min-of-N
    wall-clock), ``bench compare`` diffs a fresh run against a committed
    ``BENCH_*.json`` baseline (0% tolerance on counters, configurable %
    on wall-clock) and exits non-zero on regression, ``bench update``
    rewrites the baseline intentionally.
``cache``
    Sweep result-cache maintenance: ``cache prune`` deletes
    ``.repro_cache`` entries whose ``CODE_SALT`` predates the current
    one (``--dry-run`` counts without deleting); ``cache stats`` reports
    entry counts and CRC32-verifies every compiled-trace blob.
"""

from __future__ import annotations

import argparse
import sys

from . import SystemConfig
from .core.design import CANONICAL_DESIGNS, DESIGNS, HW_RLOG, UNSAFE_BASE, expand_grid
from .core.lifetime import log_pass_period_seconds, log_region_lifetime_days
from .harness import experiments
from .harness.cache import SweepCache, cache_enabled
from .harness.parallel import SweepHealth, default_jobs
from .harness.runner import RunConfig, prepare_workload, run_workload
from .harness.sweep import run_micro_sweep
from .workloads import MICROBENCHMARKS, make_microbenchmark


def _sweep_cache(args):
    """The CLI's sweep cache, or None when switched off.

    The cache defaults on at the CLI (library callers opt in instead);
    ``--no-cache`` or ``REPRO_SWEEP_CACHE=0`` disables it.
    """
    if getattr(args, "no_cache", False) or not cache_enabled():
        return None
    return SweepCache()


def _report_cache(cache) -> None:
    if cache is not None and (cache.hits or cache.misses):
        print(cache.summary())
    from .harness.cache import peek_trace_cache

    trace_cache = peek_trace_cache()
    if trace_cache is not None and (
        trace_cache.hits or trace_cache.misses or trace_cache.corrupt
    ):
        print(trace_cache.summary())


def _report_health(health) -> None:
    if health is not None and health.degraded:
        print(health.summary())


def _cmd_tables(_args) -> int:
    for result in (
        experiments.table1_hardware_overhead(),
        experiments.table2_configuration(),
        experiments.table3_microbenchmarks(),
    ):
        print(result.rendered)
        print()
    return 0


def _psan_sweep_report(args):
    """A fresh PsanSweepReport when ``--psan`` was passed, else None."""
    if not getattr(args, "psan", False):
        return None
    from .sanitizer import PsanSweepReport

    return PsanSweepReport()


def _report_psan(psan_report) -> bool:
    """Print a sweep's sanitizer outcome; returns True when clean.

    Diagnostics are only detailed for designs that claim a persistence
    guarantee; expected violations from unsafe baselines stay as one
    table row so they don't drown the real signal.
    """
    if psan_report is None:
        return True
    from repro.sanitizer.checker import _claims_guarantee

    print(psan_report.render())
    for report in psan_report.reports:
        if not report.clean and _claims_guarantee(report.policy):
            print(report.render())
    return psan_report.clean


def _cmd_figure(args) -> int:
    quick = args.quick
    txns = 60 if quick else 250
    threads = (1,) if quick else (1, 8)
    benchmarks = ("hash", "sps") if quick else tuple(MICROBENCHMARKS)
    cache = _sweep_cache(args)
    health = SweepHealth()
    psan_report = _psan_sweep_report(args)
    if args.id in ("6", "7", "8", "9"):
        sweep = run_micro_sweep(
            benchmarks=benchmarks,
            threads=threads,
            txns_per_thread=txns,
            jobs=args.jobs,
            cache=cache,
            cell_timeout=args.cell_timeout,
            health=health,
            psan_report=psan_report,
        )
        fn = {
            "6": experiments.figure6_throughput,
            "7": experiments.figure7_ipc_instructions,
            "8": experiments.figure8_energy,
            "9": experiments.figure9_write_traffic,
        }[args.id]
        result = fn(sweep)
        if args.chart:
            from .harness.plots import figure_chart

            print(figure_chart(result))
        else:
            print(result.rendered)
        if args.id == "6":
            for t in threads:
                gain = experiments.summarize_fwb_gain(sweep, t)
                print(f"fwb gain over best software-clwb @{t}t: {gain:.2f}x")
    elif args.id == "10":
        kernels = ("ycsb", "tpcc") if quick else tuple(
            sorted(__import__("repro.workloads.whisper", fromlist=["WHISPER_KERNELS"]).WHISPER_KERNELS)
        )
        print(
            experiments.figure10_whisper(
                kernels=kernels,
                txns_per_thread=40 if quick else 150,
                jobs=args.jobs,
                cache=cache,
            ).rendered
        )
    elif args.id == "11a":
        sizes = (0, 8, 15) if quick else (0, 8, 15, 16, 32, 64, 128, 256)
        print(
            experiments.figure11a_log_buffer(
                sizes=sizes, txns_per_thread=60 if quick else 300
            ).rendered
        )
    elif args.id == "11b":
        print(experiments.figure11b_fwb_frequency().rendered)
    else:  # pragma: no cover - argparse restricts choices
        return 2
    _report_cache(cache)
    _report_health(health)
    return 0 if _report_psan(psan_report) else 1


def _cmd_compare(args) -> int:
    workload = make_microbenchmark(args.benchmark)
    prepared = prepare_workload(workload)
    print(f"{'design':12s} {'throughput':>11s} {'IPC':>7s} {'instrs':>9s} "
          f"{'NVRAM wr KB':>11s}")
    for policy in CANONICAL_DESIGNS:
        stats = run_workload(
            workload,
            RunConfig(
                policy=policy, threads=args.threads, txns_per_thread=args.txns
            ),
            prepared=prepared,
        ).stats
        print(
            f"{policy.value:12s} {stats.throughput:11.1f} {stats.ipc:7.3f} "
            f"{stats.instructions:9d} {stats.nvram_write_bytes / 1024:11.1f}"
        )
    return 0


def _cmd_ablate(args) -> int:
    if args.specs:
        designs = []
        for token in args.specs.split(","):
            spec = DESIGNS.resolve(token.strip())
            if spec not in designs:
                designs.append(spec)
    else:
        designs = expand_grid(
            args.backends.split(","),
            args.contents.split(","),
            args.writebacks.split(","),
            args.commits.split(","),
        )
    if not designs:
        print("ablate: the requested grid contains no valid design", file=sys.stderr)
        return 2

    benchmarks = args.benchmarks.split(",")
    threads_list = tuple(int(t) for t in args.threads.split(","))
    jobs = args.jobs
    if jobs is None:
        # Unlike the fixed-size figure sweeps, an ablation grid is
        # user-shaped — size the pool to the grid and the machine.
        jobs = default_jobs(len(designs) * len(benchmarks) * len(threads_list))
    cache = _sweep_cache(args)
    health = SweepHealth()
    psan_report = None
    if not args.no_psan and any(spec.persistence_guaranteed for spec in designs):
        from .sanitizer import PsanSweepReport

        psan_report = PsanSweepReport()
    sweep = run_micro_sweep(
        benchmarks=benchmarks,
        threads=threads_list,
        policies=designs,
        txns_per_thread=args.txns,
        seed=args.seed,
        jobs=jobs,
        cache=cache,
        cell_timeout=args.cell_timeout,
        health=health,
        psan_report=psan_report,
    )
    print(
        f"design-space ablation: {len(designs)} design(s) x "
        f"{benchmarks} x threads {list(threads_list)}, "
        f"{args.txns} txns/thread, seed {args.seed}"
    )
    print(
        f"{'benchmark':10s} {'thr':>3s} {'design':20s} {'mechanisms':26s} "
        f"{'guar':>4s} {'throughput':>11s} {'IPC':>7s} {'NVRAM-wr-KB':>11s}"
    )
    for benchmark in sweep.benchmarks():
        for threads in sweep.thread_counts():
            for spec in sweep.policies():
                stats = sweep.stats(benchmark, threads, spec)
                print(
                    f"{benchmark:10s} {threads:3d} {spec.value:20s} "
                    f"{spec.mechanism_string():26s} "
                    f"{'yes' if spec.persistence_guaranteed else 'no':>4s} "
                    f"{stats.throughput:11.1f} {stats.ipc:7.3f} "
                    f"{stats.nvram_write_bytes / 1024:11.1f}"
                )
    if args.chart:
        from .harness.plots import grouped_bars

        groups = {
            f"{benchmark} @ {threads} thread(s)": {
                spec.value: sweep.stats(benchmark, threads, spec).throughput
                for spec in sweep.policies()
            }
            for benchmark in sweep.benchmarks()
            for threads in sweep.thread_counts()
        }
        print()
        print(
            grouped_bars(
                "ablation throughput (txns / M cycles)",
                groups,
                value_format="{:.1f}",
            )
        )
    _report_cache(cache)
    _report_health(health)
    return 0 if _report_psan(psan_report) else 1


def _cmd_validate(args) -> int:
    from .harness.validate import validate

    cache = _sweep_cache(args)
    health = SweepHealth()
    psan_report = _psan_sweep_report(args)
    if args.quick:
        sweep = run_micro_sweep(
            benchmarks=("hash", "sps"),
            threads=(1,),
            txns_per_thread=80,
            jobs=args.jobs,
            cache=cache,
            cell_timeout=args.cell_timeout,
            health=health,
            psan_report=psan_report,
        )
    else:
        sweep = None
    report = validate(sweep=sweep, jobs=args.jobs, cache=cache)
    print(report.rendered)
    _report_cache(cache)
    _report_health(health)
    psan_clean = _report_psan(psan_report)
    return 0 if report.passed and psan_clean else 1


def _cmd_faults(args) -> int:
    from .faults import resolve_policies, run_fault_campaign

    result = run_fault_campaign(
        policies=resolve_policies(args.policy),
        workload=args.workload,
        points=args.points,
        txns_per_thread=args.txns,
        threads=args.threads,
        seed=args.seed,
        progress=print if args.verbose else None,
    )
    print(result.rendered)
    return 0 if result.passed else 1


def _cmd_dist(args) -> int:
    from .dist import DistConfig, run_dist_campaign

    config = DistConfig(
        nodes=args.nodes,
        replicas=args.replicas,
        batch_records=args.batch_records,
        window_batches=args.window,
    )
    config.validate()
    result = run_dist_campaign(
        benchmarks=tuple(args.benchmarks.split(",")),
        policies=tuple(
            DESIGNS.resolve(name.strip()) for name in args.policy.split(",")
        ),
        config=config,
        threads=args.threads,
        txns_per_thread=args.txns,
        points_budget=args.points,
        seed=args.seed,
        probe=not args.no_probe,
        verbose_sink=print if args.verbose else None,
    )
    print(result.render())
    return 0 if result.passed else 1


def _cmd_psan(args) -> int:
    import json
    import os

    from .sanitizer import PersistOrderChecker, PsanSweepReport, run_psan

    if args.rules:
        from .sanitizer import RULES

        for rule in RULES.values():
            print(f"{rule.id:20s} {rule.paper_ref:12s} {rule.title}")
            print(f"{'':20s} {rule.description}")
        return 0

    if args.from_trace:
        from .sim.trace import Tracer

        tracer = Tracer.from_jsonl(args.from_trace)
        report = PersistOrderChecker.check_events(tracer.events())
        print(json.dumps(report.to_dict(), indent=2) if args.json else report.render())
        return 0 if report.clean else 1

    benchmarks = args.benchmarks.split(",")
    threads_list = [int(t) for t in args.threads.split(",")]
    policies = [DESIGNS.resolve(name) for name in args.policies.split(",")]
    if args.save_trace:
        os.makedirs(args.save_trace, exist_ok=True)

    sweep = PsanSweepReport()
    for benchmark in benchmarks:
        prepared = prepare_workload(make_microbenchmark(benchmark, seed=args.seed))
        for threads in threads_list:
            for policy in policies:
                trace_path = None
                if args.save_trace:
                    trace_path = os.path.join(
                        args.save_trace,
                        f"{benchmark}-{threads}t-{policy.value}.jsonl",
                    )
                sweep.reports.append(
                    run_psan(
                        benchmark,
                        policy,
                        threads=threads,
                        txns_per_thread=args.txns,
                        prepared=prepared,
                        seed=args.seed,
                        trace_path=trace_path,
                    )
                )

    # Adversarial probes: the sanitizer itself is under test here — the
    # designs without a persistence guarantee MUST trip a rule, or the
    # checker has gone blind.
    adversarial = {}
    if not args.no_adversarial:
        probe_bench = benchmarks[0]
        prepared = prepare_workload(make_microbenchmark(probe_bench, seed=args.seed))
        for policy in (UNSAFE_BASE, HW_RLOG):
            report = run_psan(
                probe_bench,
                policy,
                threads=1,
                txns_per_thread=args.txns,
                prepared=prepared,
                seed=args.seed,
            )
            adversarial[policy.value] = sorted(report.rules_fired())

    adversarial_ok = args.no_adversarial or all(adversarial.values())
    if args.json:
        print(
            json.dumps(
                {
                    "matrix": sweep.to_dict(),
                    "adversarial": adversarial,
                    "adversarial_ok": adversarial_ok,
                    "passed": sweep.clean and adversarial_ok,
                },
                indent=2,
            )
        )
    else:
        print(sweep.render())
        for name, rules in adversarial.items():
            verdict = f"tripped {','.join(rules)}" if rules else "FAILED TO TRIP"
            print(f"adversarial {name:12s} {verdict}")
        for report in sweep.reports:
            if not report.clean:
                print(report.render())
        print(
            "psan: PASS"
            if sweep.clean and adversarial_ok
            else "psan: FAIL"
        )
    return 0 if sweep.clean and adversarial_ok else 1


def _cmd_lint(args) -> int:
    import json
    import os

    from .sanitizer.lint import STALE_SUPPRESSION, lint_paths

    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    findings = lint_paths(paths)
    real = [f for f in findings if f.rule != STALE_SUPPRESSION]
    stale = [f for f in findings if f.rule == STALE_SUPPRESSION]
    if args.json:
        print(
            json.dumps(
                {
                    "findings": [finding.to_dict() for finding in findings],
                    "real": len(real),
                    "stale_suppressions": len(stale),
                    "strict": args.strict,
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        print(f"lint: {len(findings)} finding(s)" if findings else "lint: clean")
        if stale and not args.strict:
            print(
                f"lint: {len(stale)} stale suppression(s) — informational "
                "(fatal under --strict)"
            )
    # Stale suppressions are advisory by default; --strict makes every
    # finding (including them) fatal.
    if real:
        return 1
    return 1 if (args.strict and findings) else 0


def _cmd_pstatic(args) -> int:
    import json

    from .sanitizer.static import StaticSweepReport, run_differential, run_pstatic

    benchmarks = args.benchmarks.split(",")
    threads_list = [int(t) for t in args.threads.split(",")]
    policies = [DESIGNS.resolve(name) for name in args.policies.split(",")]
    hb = not args.no_hb

    if args.differential:
        report = run_differential(
            benchmarks,
            threads_list,
            policies,
            txns_per_thread=args.txns,
            seed=args.seed,
            hb=hb,
            progress=print if args.verbose else None,
        )
        if args.markdown:
            with open(args.markdown, "w", encoding="utf-8") as fh:
                fh.write(report.render_markdown() + "\n")
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0 if report.passed else 1

    sweep = StaticSweepReport()
    for benchmark in benchmarks:
        prepared = prepare_workload(make_microbenchmark(benchmark, seed=args.seed))
        for threads in threads_list:
            for policy in policies:
                sweep.reports.append(
                    run_pstatic(
                        benchmark,
                        policy,
                        threads=threads,
                        txns_per_thread=args.txns,
                        prepared=prepared,
                        seed=args.seed,
                        hb=hb,
                    )
                )
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(sweep.render_markdown() + "\n")
    if args.json:
        print(json.dumps(sweep.to_dict(), indent=2))
    else:
        print(sweep.render())
        for report in sweep.reports:
            if not report.clean or (report.races is not None and not report.races.clean):
                print(report.render(proofs=args.proofs))
            elif args.proofs:
                print(report.render(proofs=True))
        print("pstatic: PASS" if sweep.clean else "pstatic: FAIL")
    return 0 if sweep.clean else 1


def _cmd_cache(args) -> int:
    from pathlib import Path

    from .harness.cache import TraceCache, default_cache_dir, peek_trace_cache

    directory = Path(args.dir) if args.dir else default_cache_dir()
    cache = SweepCache(directory)
    if args.cache_command == "prune":
        counts = cache.prune(dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        print(
            f"cache prune: {counts['scanned']} entr(ies) scanned, "
            f"{counts['stale']} stale (salt != {cache.salt!r}), "
            f"{verb} {counts['stale'] if args.dry_run else counts['removed']}, "
            f"{counts['kept']} kept ({directory})"
        )
        trace_counts = TraceCache(directory).prune(dry_run=args.dry_run)
        print(
            f"trace prune: {trace_counts['scanned']} entr(ies) scanned, "
            f"{trace_counts['stale']} stale (undecodable format), "
            f"{verb} "
            f"{trace_counts['stale'] if args.dry_run else trace_counts['removed']}, "
            f"{trace_counts['kept']} kept ({directory})"
        )
        return 0
    if args.cache_command == "stats":
        sweep_counts = cache.prune(dry_run=True)
        print(
            f"sweep cache: {sweep_counts['scanned']} entr(ies), "
            f"{sweep_counts['kept']} current, {sweep_counts['stale']} stale "
            f"({directory})"
        )
        trace_counts = TraceCache(directory).verify_disk()
        print(
            f"trace cache: {trace_counts['scanned']} entr(ies), "
            f"{trace_counts['ok']} CRC-verified, "
            f"{trace_counts['stale']} stale (prunable), "
            f"{trace_counts['bytes'] / 1024:.1f} KiB ({directory})"
        )
        live = peek_trace_cache()
        if live is not None and (live.hits or live.misses or live.corrupt):
            print(f"this process: {live.summary()}")
        return 0
    return 2  # pragma: no cover - argparse restricts choices


def _cmd_lifetime(_args) -> int:
    config = SystemConfig()
    period = log_pass_period_seconds(config)
    days = log_region_lifetime_days(config)
    print(f"log entries            : {config.logging.log_entries}")
    print(f"log size               : {config.logging.log_bytes / 2**20:.1f} MB")
    print(f"per-cell overwrite gap : {period * 1e3:.2f} ms "
          "(one full pass at back-to-back 200 ns writes)")
    print(f"time to 1e8 overwrites : {days:.1f} days "
          "(paper: ~15 days — ample for wear-leveling to trigger)")
    return 0


def _load_policy_table(args):
    """The policy table ``--adaptive`` / ``--policy-table`` selects."""
    from .adapt import PolicyTable, default_policy_table

    if getattr(args, "policy_table", None):
        return PolicyTable.load(args.policy_table)
    return default_policy_table()


def _cmd_serve(args) -> int:
    from .sched.loop import AdmissionConfig
    from .sched.serve import ServeConfig, run_serve
    from .sched.traffic import TrafficConfig

    table = None
    if args.adaptive or args.policy_table:
        table = _load_policy_table(args)
    config = ServeConfig(
        workload=args.workload,
        policy=args.design,
        shards=args.shards,
        threads=args.threads,
        batch_requests=args.batch,
        traffic=TrafficConfig(
            requests=args.requests,
            rate=args.rate,
            arrival=args.arrival,
            burst_size=args.burst_size,
            clients=args.clients,
            seed=args.seed,
        ),
        admission=AdmissionConfig(max_queue_depth=args.queue_depth),
        seed=args.seed,
        replicas=args.replicas,
        ring_records=args.ring_records,
        policy_table=table,
        adapt_window_txns=args.adapt_window,
    )
    report = run_serve(config)
    print(report.render())
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(report.render_markdown())
        print(f"markdown report written to {args.markdown}")
    if args.json:
        import json as json_module

        with open(args.json, "w") as handle:
            json_module.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"json report written to {args.json}")
    return 0


def _cmd_adapt_train(args) -> int:
    from .adapt import DriftConfig, train_policy_table

    cache = _sweep_cache(args)
    kwargs = dict(
        threads=args.threads,
        txns_per_thread=args.txns,
        seed=args.seed,
        jobs=args.jobs,
        cache=cache,
    )
    if args.specs:
        kwargs["specs"] = tuple(s.strip() for s in args.specs.split(","))
    if args.benchmarks:
        table = train_policy_table(
            benchmarks=tuple(args.benchmarks.split(",")), **kwargs
        )
    else:
        table = train_policy_table(phases=DriftConfig().phases, **kwargs)
    table.save(args.out)
    units = table.trained_on.get("units", [])
    print(
        f"adapt train: {table.trained_on.get('mode')} mode, "
        f"{len(units)} unit(s), candidates "
        f"{','.join(table.trained_on.get('candidates', ()))}"
    )
    for unit in units:
        cycles = unit["cycles"]
        print(
            f"  {unit['label']:10s} best {unit['best']:24s} "
            + " ".join(f"{k}={v:.1f}" for k, v in sorted(cycles.items()))
        )
    for rule in table.rules:
        conds = ", ".join(f"{k} >= {v:.4f}" if k.endswith("_min") else
                          f"{k[:-4]} <= {v:.4f}" for k, v in rule.when)
        print(f"  rule: {conds} -> {rule.spec.mechanism_string()}")
    print(
        f"  default: "
        f"{'hold' if table.default is None else table.default.mechanism_string()}"
        + (
            f", start: {table.start.mechanism_string()}"
            if table.start is not None
            else ""
        )
    )
    print(f"policy table written to {args.out}")
    _report_cache(cache)
    return 0


def _cmd_adapt_run(args) -> int:
    import json

    from .adapt import DriftConfig, compare_drift

    table = _load_policy_table(args)
    config = DriftConfig(
        threads=args.threads,
        seed=args.seed,
        window_txns=args.window,
    )
    result = compare_drift(config, table=table)
    adaptive = result["adaptive"]
    print(
        f"adapt run: drift scenario "
        f"({' + '.join(str(p['requests']) for p in adaptive['phases'])} "
        f"requests), window {args.window} txns"
    )
    rows = [("adaptive", adaptive)] + sorted(result["static"].items())
    width = max(len(name) for name, _report in rows)
    print(f"  {'design':{width}s} {'cycles':>12s} {'switches':>8s} "
          f"{'wrap-forces':>11s} {'clwbs':>8s}")
    for name, report in rows:
        counters = report["counters"]
        print(
            f"  {name:{width}s} {report['total_cycles']:12.1f} "
            f"{counters['design_switches']:8d} "
            f"{counters['log_wrap_forced_writebacks']:11d} "
            f"{counters['clwb_count']:8d}"
        )
    for decision in adaptive.get("adaptation", {}).get("decisions", ()):
        print(
            f"  decision @{decision.get('cycle', 0.0):.0f}: "
            f"{decision.get('from')} -> {decision.get('to')} "
            f"({decision.get('outcome')}, wrap_pressure "
            f"{decision.get('features', {}).get('wrap_pressure', 0.0):.2f})"
        )
    print(
        f"  best static: {result['best_static']} "
        f"({result['best_static_cycles']:.1f} cycles); adaptive "
        f"{'WINS' if result['adaptive_wins'] else 'LOSES'} "
        f"(margin {result['margin'] * 100:.2f}%)"
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"json report written to {args.json}")
    return 0 if result["adaptive_wins"] else 1


def _cmd_adapt_faults(args) -> int:
    from .adapt import run_switch_campaign

    result = run_switch_campaign(
        workload=args.workload,
        txns_per_thread=args.txns,
        threads=args.threads,
        seed=args.seed,
        progress=print if args.verbose else None,
    )
    print(result.rendered)
    return 0 if result.passed else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Steal-but-No-Force (HPCA 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("tables").set_defaults(fn=_cmd_tables)

    def _sweep_flags(cmd, psan: bool = True, jobs_default: int = 1) -> None:
        if jobs_default is None:
            jobs_help = (
                "worker processes for sweep cells (default: auto — one "
                "per cell, capped at cpu_count-1)"
            )
        else:
            jobs_help = "worker processes for sweep cells (default: 1, in-process)"
        cmd.add_argument(
            "--jobs",
            type=int,
            default=jobs_default,
            help=jobs_help,
        )
        cmd.add_argument(
            "--no-cache",
            action="store_true",
            help="skip the on-disk sweep result cache (.repro_cache)",
        )
        cmd.add_argument(
            "--cell-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-cell wait bound for parallel sweeps; hung workers "
            "are terminated, the cell retried, then run serially",
        )
        if psan:
            cmd.add_argument(
                "--psan",
                action="store_true",
                help="run every sweep cell under the persistency-ordering "
                "sanitizer (bypasses the result cache); non-zero exit on "
                "any violation",
            )

    figure = sub.add_parser("figure")
    figure.add_argument("id", choices=["6", "7", "8", "9", "10", "11a", "11b"])
    figure.add_argument("--quick", action="store_true")
    figure.add_argument(
        "--chart", action="store_true", help="render as terminal bar charts"
    )
    _sweep_flags(figure)
    figure.set_defaults(fn=_cmd_figure)
    compare = sub.add_parser("compare")
    compare.add_argument("--benchmark", default="hash", choices=sorted(MICROBENCHMARKS))
    compare.add_argument("--threads", type=int, default=1)
    compare.add_argument("--txns", type=int, default=200)
    compare.set_defaults(fn=_cmd_compare)
    ablate = sub.add_parser(
        "ablate",
        help="sweep a custom grid of the mechanism design space",
    )
    ablate.add_argument(
        "--specs",
        default=None,
        help="comma-separated designs: registered names and/or mechanism "
        "strings, e.g. 'fwb,hw+undo+clwb,sw+redo+fwb' (overrides the "
        "axis flags)",
    )
    ablate.add_argument(
        "--backends",
        default="hw,sw",
        help="log-backend axis values: hw, sw, none (default: hw,sw)",
    )
    ablate.add_argument(
        "--contents",
        default="undo,redo,undo+redo",
        help="log-content axis values (default: undo,redo,undo+redo)",
    )
    ablate.add_argument(
        "--writebacks",
        default="none,clwb,fwb",
        help="write-back axis values (default: none,clwb,fwb)",
    )
    ablate.add_argument(
        "--commits",
        default="fenced",
        help="commit-protocol axis values: fenced, instant (default: fenced)",
    )
    ablate.add_argument(
        "--benchmarks", default="hash", help="comma-separated microbenchmarks"
    )
    ablate.add_argument(
        "--threads", default="1", help="comma-separated thread counts"
    )
    ablate.add_argument("--txns", type=int, default=60)
    ablate.add_argument("--seed", type=int, default=42)
    ablate.add_argument(
        "--no-psan",
        action="store_true",
        help="skip the sanitizer gate applied to guarantee-claiming specs",
    )
    ablate.add_argument(
        "--chart",
        action="store_true",
        help="append a terminal bar chart of per-cell throughput",
    )
    _sweep_flags(ablate, psan=False, jobs_default=None)
    ablate.set_defaults(fn=_cmd_ablate)
    faults = sub.add_parser(
        "faults",
        help="crash-point × fault-type × policy consistency campaign",
    )
    faults.add_argument(
        "--policy",
        default="guaranteed",
        help="'guaranteed' (default), 'all', 'instant' (instant-commit "
        "variants of the guaranteed grid), or a comma-separated list of "
        "design names / mechanism strings (e.g. "
        "'fwb,hw+undo+redo+clwb+instant')",
    )
    faults.add_argument(
        "--workload", default="hash", choices=sorted(MICROBENCHMARKS)
    )
    faults.add_argument(
        "--points", type=int, default=60, help="crash-point budget per policy"
    )
    faults.add_argument("--txns", type=int, default=60)
    faults.add_argument("--threads", type=int, default=1)
    faults.add_argument("--seed", type=int, default=7)
    faults.add_argument(
        "--verbose", action="store_true", help="print one line per policy"
    )
    faults.set_defaults(fn=_cmd_faults)
    dist = sub.add_parser(
        "dist",
        help="replicated log shipping: node-crash × link-fault campaign "
        "with convergent recovery",
    )
    dist.add_argument(
        "--nodes", type=int, default=3, help="total simulated nodes (default: 3)"
    )
    dist.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="replication factor R: log records ship to R standby nodes "
        "(default: 2; requires nodes >= R+1)",
    )
    dist.add_argument(
        "--benchmarks",
        default="hash,rbtree,sps,btree,ssca2",
        help="comma-separated microbenchmarks (default: all five)",
    )
    dist.add_argument(
        "--policy",
        default="hwl",
        help="comma-separated designs to trace (default: hwl)",
    )
    dist.add_argument(
        "--points",
        type=int,
        default=16,
        help="fault-grid budget per benchmark (default: 16 — the full grid)",
    )
    dist.add_argument("--txns", type=int, default=30)
    dist.add_argument("--threads", type=int, default=2)
    dist.add_argument("--seed", type=int, default=42)
    dist.add_argument(
        "--batch-records",
        type=int,
        default=8,
        help="records per shipment batch (default: 8)",
    )
    dist.add_argument(
        "--window",
        type=int,
        default=4,
        help="bounded in-flight window, in batches per link (default: 4)",
    )
    dist.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the ack-before-durable must-trip sanitizer probe",
    )
    dist.add_argument(
        "--verbose", action="store_true", help="print one line per fault point"
    )
    dist.set_defaults(fn=_cmd_dist)
    sub.add_parser("lifetime").set_defaults(fn=_cmd_lifetime)
    serve = sub.add_parser(
        "serve",
        help="run a seeded open-loop traffic scenario over sharded machines",
    )
    serve.add_argument(
        "--workload",
        default="memcached",
        choices=["memcached", "redis", "ycsb"],
        help="request-shaped WHISPER kernel to serve",
    )
    serve.add_argument(
        "--design",
        default=None,
        help="design spec to run every shard under (default: fwb, or the "
        "policy table's start design in adaptive mode)",
    )
    serve.add_argument(
        "--adaptive",
        action="store_true",
        help="enable the adaptive controller (built-in policy table "
        "unless --policy-table names one); shards may safe-switch "
        "designs mid-run",
    )
    serve.add_argument(
        "--policy-table",
        metavar="FILE",
        default=None,
        help="repro-adapt/v1 JSON policy table (implies --adaptive)",
    )
    serve.add_argument(
        "--adapt-window",
        type=int,
        default=16,
        help="committed transactions per controller decision window "
        "(default: 16)",
    )
    serve.add_argument("--shards", type=int, default=1)
    serve.add_argument("--threads", type=int, default=2, help="threads per shard")
    serve.add_argument("--requests", type=int, default=512)
    serve.add_argument(
        "--rate", type=float, default=0.002, help="offered load, requests/cycle"
    )
    serve.add_argument(
        "--arrival", default="poisson", choices=["poisson", "uniform", "burst"]
    )
    serve.add_argument("--burst-size", type=int, default=16)
    serve.add_argument(
        "--clients", type=int, default=1_000_000, help="simulated client id space"
    )
    serve.add_argument(
        "--batch", type=int, default=8, help="max requests per transaction batch"
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="per-shard admission bound on undispatched requests",
    )
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="replica rings per shard (mid-run log shipping + compaction)",
    )
    serve.add_argument("--ring-records", type=int, default=256)
    serve.add_argument(
        "--markdown", metavar="PATH", help="also write a markdown report"
    )
    serve.add_argument("--json", metavar="PATH", help="also write a JSON report")
    serve.set_defaults(fn=_cmd_serve)
    psan = sub.add_parser(
        "psan",
        help="persistency-ordering sanitizer over a benchmark matrix",
    )
    psan.add_argument(
        "--benchmarks",
        default="hash,rbtree,sps,btree,ssca2",
        help="comma-separated microbenchmarks (default: all five)",
    )
    psan.add_argument(
        "--threads",
        default="1,2,4,8",
        help="comma-separated thread counts (default: 1,2,4,8)",
    )
    psan.add_argument(
        "--policies",
        default="hwl,fwb",
        help="comma-separated designs to verify (default: hwl,fwb)",
    )
    psan.add_argument("--txns", type=int, default=40)
    psan.add_argument("--seed", type=int, default=42)
    psan.add_argument(
        "--no-adversarial",
        action="store_true",
        help="skip the unsafe-base / hw-rlog must-trip probes",
    )
    psan.add_argument("--json", action="store_true", help="machine-readable report")
    psan.add_argument(
        "--rules",
        action="store_true",
        help="print the rule registry (id, paper section, invariant) and exit",
    )
    psan.add_argument(
        "--save-trace",
        metavar="DIR",
        default=None,
        help="save each cell's event stream as JSONL into DIR",
    )
    psan.add_argument(
        "--from-trace",
        metavar="FILE",
        default=None,
        help="sanitize a saved JSONL trace instead of running anything",
    )
    psan.set_defaults(fn=_cmd_psan)
    pstatic = sub.add_parser(
        "pstatic",
        help="static persistency verifier: psan verdicts proven from the "
        "compiled trace, without replaying",
    )
    pstatic.add_argument(
        "--benchmarks",
        default="hash,rbtree,sps,btree,ssca2",
        help="comma-separated microbenchmarks (default: all five)",
    )
    pstatic.add_argument(
        "--threads",
        default="1,2,4",
        help="comma-separated thread counts (default: 1,2,4)",
    )
    pstatic.add_argument(
        "--policies",
        default="non-pers,unsafe-base,redo-clwb,undo-clwb,hw-rlog,hw-ulog,hwl,fwb",
        help="comma-separated designs to verify (default: all eight canonical)",
    )
    pstatic.add_argument("--txns", type=int, default=40)
    pstatic.add_argument("--seed", type=int, default=42)
    pstatic.add_argument(
        "--differential",
        action="store_true",
        help="gate every static verdict against the dynamic checker and "
        "replay-confirm every counterexample (the CI acceptance mode)",
    )
    pstatic.add_argument(
        "--proofs",
        action="store_true",
        help="print the per-rule proof reasons, not just violations",
    )
    pstatic.add_argument(
        "--no-hb",
        action="store_true",
        help="skip the happens-before race detector pass",
    )
    pstatic.add_argument(
        "--markdown",
        metavar="FILE",
        default=None,
        help="also write the verdict table as a markdown artifact",
    )
    pstatic.add_argument(
        "--verbose", action="store_true", help="print one line per cell"
    )
    pstatic.add_argument("--json", action="store_true", help="machine-readable report")
    pstatic.set_defaults(fn=_cmd_pstatic)
    lint = sub.add_parser(
        "lint", help="determinism/accounting AST lint over the source tree"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable report")
    lint.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale lint:allow suppressions (the CI mode)",
    )
    lint.set_defaults(fn=_cmd_lint)
    validate_cmd = sub.add_parser("validate")
    validate_cmd.add_argument("--quick", action="store_true")
    _sweep_flags(validate_cmd)
    validate_cmd.set_defaults(fn=_cmd_validate)

    from .bench.cli import add_bench_parser

    add_bench_parser(sub)

    adapt = sub.add_parser(
        "adapt",
        help="adaptive logging policy: train tables, run drift scenarios, "
        "crash the switch barrier",
    )
    adapt_sub = adapt.add_subparsers(dest="adapt_command", required=True)
    train = adapt_sub.add_parser(
        "train",
        help="grid the writeback family per workload phase (sweep engine "
        "as oracle) and write a repro-adapt/v1 policy table",
    )
    train.add_argument(
        "--benchmarks",
        default=None,
        metavar="A,B",
        help="train one unit per named benchmark kernel instead of the "
        "default drift phases (e.g. hash,sps)",
    )
    train.add_argument(
        "--specs",
        default=None,
        metavar="S1,S2",
        help="candidate designs (default: the legal writeback family "
        "nowb,clwb,fwb under hw+undo+redo)",
    )
    train.add_argument("--threads", type=int, default=2)
    train.add_argument(
        "--txns", type=int, default=160, help="transactions per thread per cell"
    )
    train.add_argument("--seed", type=int, default=42)
    train.add_argument(
        "--out",
        default="policy_table.json",
        metavar="FILE",
        help="where the policy table JSON lands (default: policy_table.json)",
    )
    _sweep_flags(train, psan=False)
    train.set_defaults(fn=_cmd_adapt_train)
    adapt_run = adapt_sub.add_parser(
        "run",
        help="drive the drift scenario adaptively and race every legal "
        "static design; exits non-zero unless adaptive wins",
    )
    adapt_run.add_argument(
        "--table",
        dest="policy_table",
        default=None,
        metavar="FILE",
        help="repro-adapt/v1 policy table (default: the built-in table)",
    )
    adapt_run.add_argument("--threads", type=int, default=2)
    adapt_run.add_argument("--seed", type=int, default=42)
    adapt_run.add_argument(
        "--window",
        type=int,
        default=4,
        help="controller observation window in committed txns (default: 4)",
    )
    adapt_run.add_argument(
        "--json", default=None, metavar="FILE", help="dump the full comparison"
    )
    adapt_run.set_defaults(fn=_cmd_adapt_run)
    adapt_faults = adapt_sub.add_parser(
        "faults",
        help="crash-point campaign at the switch barrier: recovery must "
        "converge under both the pre- and post-switch spec",
    )
    adapt_faults.add_argument(
        "--workload", default="hash", help="campaign kernel (default: hash)"
    )
    adapt_faults.add_argument("--threads", type=int, default=2)
    adapt_faults.add_argument(
        "--txns", type=int, default=24, help="transactions per thread"
    )
    adapt_faults.add_argument("--seed", type=int, default=7)
    adapt_faults.add_argument("--verbose", action="store_true")
    adapt_faults.set_defaults(fn=_cmd_adapt_faults)

    cache_cmd = sub.add_parser(
        "cache", help="sweep result-cache maintenance (.repro_cache)"
    )
    cache_action = cache_cmd.add_subparsers(dest="cache_command", required=True)
    prune = cache_action.add_parser(
        "prune", help="delete entries whose CODE_SALT predates the current one"
    )
    prune.add_argument(
        "--dry-run", action="store_true", help="count stale entries, delete nothing"
    )
    prune.add_argument(
        "--dir",
        default=None,
        help="cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    prune.set_defaults(fn=_cmd_cache)
    stats = cache_action.add_parser(
        "stats",
        help="entry counts plus CRC32 verification of compiled-trace blobs",
    )
    stats.add_argument(
        "--dir",
        default=None,
        help="cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    stats.set_defaults(fn=_cmd_cache)
    return parser


def main(argv=None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
