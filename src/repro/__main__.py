"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``tables``
    Print Tables I-III (hardware overhead, machine configuration,
    microbenchmark list).
``figure {6,7,8,9,10,11a,11b}``
    Regenerate one of the paper's figures (``--quick`` shrinks the sweep
    for a fast smoke run).
``compare``
    Run one microbenchmark under all eight designs and print the
    comparison (like ``examples/policy_comparison.py``).
``faults``
    Run the crash-consistency fault campaign: deterministic crash points
    (micro-op retires, log drains, FWB scans, wrap forces, mid-recovery)
    × fault types (none, torn log writes, ghost records) × policies,
    verifying every surviving NVRAM image against the golden model.
``lifetime``
    Print the Section III-F NVRAM lifetime arithmetic for the configured
    log.
"""

from __future__ import annotations

import argparse
import sys

from . import SystemConfig
from .core.lifetime import log_pass_period_seconds, log_region_lifetime_days
from .core.policy import Policy
from .harness import experiments
from .harness.cache import SweepCache, cache_enabled
from .harness.parallel import SweepHealth
from .harness.runner import RunConfig, prepare_workload, run_workload
from .harness.sweep import run_micro_sweep
from .workloads import MICROBENCHMARKS, make_microbenchmark


def _sweep_cache(args):
    """The CLI's sweep cache, or None when switched off.

    The cache defaults on at the CLI (library callers opt in instead);
    ``--no-cache`` or ``REPRO_SWEEP_CACHE=0`` disables it.
    """
    if getattr(args, "no_cache", False) or not cache_enabled():
        return None
    return SweepCache()


def _report_cache(cache) -> None:
    if cache is not None and (cache.hits or cache.misses):
        print(cache.summary())


def _report_health(health) -> None:
    if health is not None and health.degraded:
        print(health.summary())


def _cmd_tables(_args) -> int:
    for result in (
        experiments.table1_hardware_overhead(),
        experiments.table2_configuration(),
        experiments.table3_microbenchmarks(),
    ):
        print(result.rendered)
        print()
    return 0


def _cmd_figure(args) -> int:
    quick = args.quick
    txns = 60 if quick else 250
    threads = (1,) if quick else (1, 8)
    benchmarks = ("hash", "sps") if quick else tuple(MICROBENCHMARKS)
    cache = _sweep_cache(args)
    health = SweepHealth()
    if args.id in ("6", "7", "8", "9"):
        sweep = run_micro_sweep(
            benchmarks=benchmarks,
            threads=threads,
            txns_per_thread=txns,
            jobs=args.jobs,
            cache=cache,
            cell_timeout=args.cell_timeout,
            health=health,
        )
        fn = {
            "6": experiments.figure6_throughput,
            "7": experiments.figure7_ipc_instructions,
            "8": experiments.figure8_energy,
            "9": experiments.figure9_write_traffic,
        }[args.id]
        result = fn(sweep)
        if args.chart:
            from .harness.plots import figure_chart

            print(figure_chart(result))
        else:
            print(result.rendered)
        if args.id == "6":
            for t in threads:
                gain = experiments.summarize_fwb_gain(sweep, t)
                print(f"fwb gain over best software-clwb @{t}t: {gain:.2f}x")
    elif args.id == "10":
        kernels = ("ycsb", "tpcc") if quick else tuple(
            sorted(__import__("repro.workloads.whisper", fromlist=["WHISPER_KERNELS"]).WHISPER_KERNELS)
        )
        print(
            experiments.figure10_whisper(
                kernels=kernels,
                txns_per_thread=40 if quick else 150,
                jobs=args.jobs,
                cache=cache,
            ).rendered
        )
    elif args.id == "11a":
        sizes = (0, 8, 15) if quick else (0, 8, 15, 16, 32, 64, 128, 256)
        print(
            experiments.figure11a_log_buffer(
                sizes=sizes, txns_per_thread=60 if quick else 300
            ).rendered
        )
    elif args.id == "11b":
        print(experiments.figure11b_fwb_frequency().rendered)
    else:  # pragma: no cover - argparse restricts choices
        return 2
    _report_cache(cache)
    _report_health(health)
    return 0


def _cmd_compare(args) -> int:
    workload = make_microbenchmark(args.benchmark)
    prepared = prepare_workload(workload)
    print(f"{'design':12s} {'throughput':>11s} {'IPC':>7s} {'instrs':>9s} "
          f"{'NVRAM wr KB':>11s}")
    for policy in Policy:
        stats = run_workload(
            workload,
            RunConfig(
                policy=policy, threads=args.threads, txns_per_thread=args.txns
            ),
            prepared=prepared,
        ).stats
        print(
            f"{policy.value:12s} {stats.throughput:11.1f} {stats.ipc:7.3f} "
            f"{stats.instructions:9d} {stats.nvram_write_bytes / 1024:11.1f}"
        )
    return 0


def _cmd_validate(args) -> int:
    from .harness.validate import validate

    cache = _sweep_cache(args)
    health = SweepHealth()
    if args.quick:
        sweep = run_micro_sweep(
            benchmarks=("hash", "sps"),
            threads=(1,),
            txns_per_thread=80,
            jobs=args.jobs,
            cache=cache,
            cell_timeout=args.cell_timeout,
            health=health,
        )
    else:
        sweep = None
    report = validate(sweep=sweep, jobs=args.jobs, cache=cache)
    print(report.rendered)
    _report_cache(cache)
    _report_health(health)
    return 0 if report.passed else 1


def _cmd_faults(args) -> int:
    from .faults import resolve_policies, run_fault_campaign

    result = run_fault_campaign(
        policies=resolve_policies(args.policy),
        workload=args.workload,
        points=args.points,
        txns_per_thread=args.txns,
        threads=args.threads,
        seed=args.seed,
        progress=print if args.verbose else None,
    )
    print(result.rendered)
    return 0 if result.passed else 1


def _cmd_lifetime(_args) -> int:
    config = SystemConfig()
    period = log_pass_period_seconds(config)
    days = log_region_lifetime_days(config)
    print(f"log entries            : {config.logging.log_entries}")
    print(f"log size               : {config.logging.log_bytes / 2**20:.1f} MB")
    print(f"per-cell overwrite gap : {period * 1e3:.2f} ms "
          "(one full pass at back-to-back 200 ns writes)")
    print(f"time to 1e8 overwrites : {days:.1f} days "
          "(paper: ~15 days — ample for wear-leveling to trigger)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Steal-but-No-Force (HPCA 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("tables").set_defaults(fn=_cmd_tables)

    def _sweep_flags(cmd) -> None:
        cmd.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for sweep cells (default: 1, in-process)",
        )
        cmd.add_argument(
            "--no-cache",
            action="store_true",
            help="skip the on-disk sweep result cache (.repro_cache)",
        )
        cmd.add_argument(
            "--cell-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-cell wait bound for parallel sweeps; hung workers "
            "are terminated, the cell retried, then run serially",
        )

    figure = sub.add_parser("figure")
    figure.add_argument("id", choices=["6", "7", "8", "9", "10", "11a", "11b"])
    figure.add_argument("--quick", action="store_true")
    figure.add_argument(
        "--chart", action="store_true", help="render as terminal bar charts"
    )
    _sweep_flags(figure)
    figure.set_defaults(fn=_cmd_figure)
    compare = sub.add_parser("compare")
    compare.add_argument("--benchmark", default="hash", choices=sorted(MICROBENCHMARKS))
    compare.add_argument("--threads", type=int, default=1)
    compare.add_argument("--txns", type=int, default=200)
    compare.set_defaults(fn=_cmd_compare)
    faults = sub.add_parser(
        "faults",
        help="crash-point × fault-type × policy consistency campaign",
    )
    faults.add_argument(
        "--policy",
        default="guaranteed",
        help="'guaranteed' (default), 'all', or one design name (e.g. fwb)",
    )
    faults.add_argument(
        "--workload", default="hash", choices=sorted(MICROBENCHMARKS)
    )
    faults.add_argument(
        "--points", type=int, default=60, help="crash-point budget per policy"
    )
    faults.add_argument("--txns", type=int, default=60)
    faults.add_argument("--threads", type=int, default=1)
    faults.add_argument("--seed", type=int, default=7)
    faults.add_argument(
        "--verbose", action="store_true", help="print one line per policy"
    )
    faults.set_defaults(fn=_cmd_faults)
    sub.add_parser("lifetime").set_defaults(fn=_cmd_lifetime)
    validate_cmd = sub.add_parser("validate")
    validate_cmd.add_argument("--quick", action="store_true")
    _sweep_flags(validate_cmd)
    validate_cmd.set_defaults(fn=_cmd_validate)
    return parser


def main(argv=None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
