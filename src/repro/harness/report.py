"""Fixed-width report rendering for the reproduced tables and figures."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    float_format: str = "{:.2f}",
) -> str:
    """Render a fixed-width text table (the paper's rows/series)."""
    rendered_rows = []
    for row in rows:
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def speedup(value: float, baseline: float) -> float:
    """``value / baseline`` guarded against a zero baseline."""
    if baseline == 0:
        return 0.0
    return value / baseline


def reduction(baseline: float, value: float) -> float:
    """``baseline / value`` ("reduction" axes: higher is better)."""
    if value == 0:
        return 0.0
    return baseline / value


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (0 if any value is non-positive or list empty)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            return 0.0
        product *= value
    return product ** (1.0 / len(values))


def bench_label(benchmark: str, threads: Optional[int]) -> str:
    """Row label in the paper's style, e.g. ``hash-2t``."""
    if threads is None:
        return benchmark
    return f"{benchmark}-{threads}t"
