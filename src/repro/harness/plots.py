"""Terminal (ASCII) charts for the reproduced figures.

The paper's figures are grouped bar charts; these helpers render the
same series as unicode bar rows so `python -m repro figure N` output can
be *seen*, not just read.  Pure text — no plotting dependencies.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

FULL = "█"
PARTIAL = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def bar(value: float, scale: float, width: int = 40) -> str:
    """One horizontal bar: ``value`` rendered against ``scale`` (= width)."""
    if scale <= 0 or value <= 0:
        return ""
    cells = value / scale * width
    whole = int(cells)
    fraction = int((cells - whole) * 8)
    if whole >= width:
        return FULL * width
    return FULL * whole + PARTIAL[fraction]


def grouped_bars(
    title: str,
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    baseline: Optional[str] = None,
    value_format: str = "{:.2f}",
) -> str:
    """A grouped bar chart: one block per group, one bar per series.

    ``groups`` maps group label → {series label → value}.  A ``baseline``
    series, when given, is marked so the normalization anchor is visible.
    """
    finite = [
        value
        for series in groups.values()
        for value in series.values()
        if value != float("inf")
    ]
    scale = max(finite, default=1.0)
    series_width = max(
        (len(name) for series in groups.values() for name in series), default=0
    )
    lines = [title, "=" * len(title)]
    for group, series in groups.items():
        lines.append(group)
        for name, value in series.items():
            marker = " *" if name == baseline else ""
            if value == float("inf"):
                rendered, shown = FULL * width, "inf"
            else:
                rendered = bar(value, scale, width)
                shown = value_format.format(value)
            lines.append(
                f"  {name.ljust(series_width)} |{rendered.ljust(width)}| "
                f"{shown}{marker}"
            )
        lines.append("")
    if baseline is not None:
        lines.append(f"(* = {baseline}, the normalization baseline)")
    return "\n".join(lines)


def series_chart(
    title: str,
    points: Sequence[tuple],
    width: int = 40,
    x_label: str = "x",
    y_format: str = "{:.2f}",
) -> str:
    """A one-series chart: (x, y) points as labelled bars."""
    values = [y for _x, y in points]
    scale = max(values, default=1.0)
    label_width = max((len(str(x)) for x, _y in points), default=1)
    lines = [title, "=" * len(title)]
    for x, y in points:
        lines.append(
            f"  {str(x).rjust(label_width)} |{bar(y, scale, width).ljust(width)}| "
            f"{y_format.format(y)}"
        )
    lines.append(f"  ({x_label} on the left)")
    return "\n".join(lines)


def figure_chart(result, baseline: str = "unsafe-base") -> str:
    """Chart an :class:`~repro.harness.experiments.ExperimentResult` whose
    rows are ``[label, v1, v2, ...]`` against its headers."""
    groups = {}
    for row in result.rows:
        label, values = row[0], row[1:]
        numeric = {}
        for name, value in zip(result.headers[1:], values):
            if isinstance(value, (int, float)):
                numeric[name] = float(value)
        if numeric:
            groups[str(label)] = numeric
    return grouped_bars(result.name, groups, baseline=baseline)
