"""Parallel sweep execution over worker processes, with self-healing.

Sweep cells are embarrassingly parallel: each one builds a private
machine, restores a prepared NVRAM snapshot and runs to completion with
no shared mutable state.  :func:`run_cells_parallel` fans a list of cells
over a :class:`~concurrent.futures.ProcessPoolExecutor`.

The prepared workloads (the expensive part — megabytes of set-up NVRAM
image) are shipped **once per worker** through the pool initializer
rather than once per cell; :class:`~repro.harness.runner.PreparedWorkload`
pickles with its image prefix zlib-compressed, so even spawn-based start
methods pay far less than the raw device size.  Results are plain
:class:`~repro.sim.stats.MachineStats` dataclasses, cheap to return.

Self-healing: long sweeps die ugly when one worker is OOM-killed or
wedges on a pathological cell.  The driver therefore

* bounds each cell's wait with ``cell_timeout`` (hung workers are
  terminated, not joined forever),
* retries the failed remainder up to ``max_retries`` times on a fresh
  pool, with exponential backoff starting at ``retry_backoff`` seconds,
* finally runs whatever still failed **serially in-process**, where no
  pool machinery can eat the result,

and records what happened in a :class:`SweepHealth`.  Because a cell's
outcome is a pure function of its configuration, a retried or
serially-recovered cell returns bit-identical stats to a first-try run
(covered by ``tests/harness/test_parallel_sweep.py``).

Determinism: a cell's outcome depends only on its configuration, never on
which process runs it, so ``jobs=N`` is bit-identical to the serial loop.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, TimeoutError
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from ..sim.stats import MachineStats
from .runner import PreparedWorkload, RunConfig, run_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports us)
    from .sweep import SweepCell

#: Per-worker prepared state, installed by :func:`_init_worker`: prepared
#: workloads keyed by benchmark, compiled traces keyed
#: ``trace:<benchmark>@<threads>`` (as ``(system, trace)`` pairs).
_WORKER_PREPARED: Dict[str, object] = {}

#: Test-only fault hook (see :func:`_apply_test_fault`).
ENV_FAULT_DIR = "REPRO_SWEEP_FAULT_DIR"


@dataclass
class SweepHealth:
    """What the self-healing driver had to do to finish a sweep."""

    worker_deaths: int = 0
    timeouts: int = 0
    retry_rounds: int = 0
    serial_fallback_cells: int = 0

    @property
    def degraded(self) -> bool:
        """True when any cell needed more than one attempt."""
        return bool(
            self.worker_deaths
            or self.timeouts
            or self.retry_rounds
            or self.serial_fallback_cells
        )

    def merge(self, other: "SweepHealth") -> None:
        """Accumulate ``other`` into this record (multi-sweep CLIs)."""
        self.worker_deaths += other.worker_deaths
        self.timeouts += other.timeouts
        self.retry_rounds += other.retry_rounds
        self.serial_fallback_cells += other.serial_fallback_cells

    def summary(self) -> str:
        """One-line report for CLI output."""
        if not self.degraded:
            return "sweep health: clean (no retries needed)"
        return (
            f"sweep health: {self.worker_deaths} worker death(s), "
            f"{self.timeouts} timeout(s), {self.retry_rounds} retry "
            f"round(s), {self.serial_fallback_cells} cell(s) recovered "
            f"serially"
        )


def _init_worker(prepared_map: Dict[str, object]) -> None:
    """Pool initializer: receive the prepared workloads once."""
    global _WORKER_PREPARED
    _WORKER_PREPARED = prepared_map


def _apply_test_fault(benchmark: str, threads: int, policy) -> None:
    """Deterministic worker-fault hook, armed only via environment.

    When ``REPRO_SWEEP_FAULT_DIR`` names a directory, a file
    ``kill-<benchmark>-<threads>-<policy>`` inside it makes the worker
    consume the file and die (``os._exit``) — exactly one death per
    armed file — and ``hang-<...>`` makes it sleep far past any sane
    ``cell_timeout``.  Only :func:`_run_cell` (worker processes) consults
    the hook, so the serial fallback is immune by construction.  This
    exists so the retry/fallback machinery is testable; production runs
    never set the variable.
    """
    root = os.environ.get(ENV_FAULT_DIR)
    if not root:
        return
    name = f"{benchmark}-{threads}-{getattr(policy, 'value', policy)}"
    kill = os.path.join(root, f"kill-{name}")
    if os.path.exists(kill):
        try:
            os.unlink(kill)
        except OSError:
            pass
        os._exit(1)
    if os.path.exists(os.path.join(root, f"hang-{name}")):
        time.sleep(3600)


def _psan_hook(holder: dict):
    """A ``machine_hook`` that attaches a psan checker into ``holder``."""
    from ..sanitizer.checker import PersistOrderChecker

    def hook(machine) -> None:
        holder["checker"] = PersistOrderChecker.attach(machine)

    return hook


def _finish_psan(holder: dict, stats: MachineStats, benchmark: str, threads: int):
    """Evaluate an attached checker and stash its report on the stats.

    The report rides back to the driver as an extra attribute —
    :class:`~repro.sim.stats.MachineStats` pickles with its instance
    dict, so worker-process results carry it across the pool boundary.
    """
    checker = holder.pop("checker")
    report = checker.finish()
    report.benchmark = benchmark
    report.threads = threads
    stats.psan_report = report


def _run_cell(
    benchmark: str,
    threads: int,
    policy,
    txns_per_thread: int,
    seed: int,
    psan: bool = False,
) -> MachineStats:
    """Run one sweep cell in a worker process; returns its stats.

    The sweep ships compiled traces under ``trace:<benchmark>@<threads>``
    keys (as ``(system, trace)`` pairs) alongside any prepared workloads;
    a cell with a trace replays it (bit-identical stats, far cheaper) and
    falls back to interpreting the prepared workload otherwise.
    """
    _apply_test_fault(benchmark, threads, policy)
    holder: dict = {}
    hook = _psan_hook(holder) if psan else None
    entry = _WORKER_PREPARED.get(f"trace:{benchmark}@{threads}")
    if entry is not None:
        from ..sim.replay import run_compiled

        system, trace = entry
        outcome = run_compiled(
            trace,
            RunConfig(
                policy=policy,
                threads=threads,
                txns_per_thread=txns_per_thread,
                system=system,
                seed=seed,
            ),
            machine_hook=hook,
        )
    else:
        prepared = _WORKER_PREPARED[benchmark]
        outcome = run_workload(
            prepared.workload,
            RunConfig(
                policy=policy,
                threads=threads,
                txns_per_thread=txns_per_thread,
                system=prepared.system,
                seed=seed,
            ),
            prepared=prepared,
            machine_hook=hook,
        )
    outcome.machine.nvram.recycle()
    if psan:
        _finish_psan(holder, outcome.stats, benchmark, threads)
    return outcome.stats


def _run_cell_inline(
    prepared: PreparedWorkload,
    cell: "SweepCell",
    txns_per_thread: int,
    seed: int,
    psan: bool = False,
) -> MachineStats:
    """Serial fallback: run one cell in the driver process."""
    holder: dict = {}
    outcome = run_workload(
        prepared.workload,
        RunConfig(
            policy=cell.policy,
            threads=cell.threads,
            txns_per_thread=txns_per_thread,
            system=prepared.system,
            seed=seed,
        ),
        prepared=prepared,
        machine_hook=_psan_hook(holder) if psan else None,
    )
    outcome.machine.nvram.recycle()
    if psan:
        _finish_psan(holder, outcome.stats, cell.benchmark, cell.threads)
    return outcome.stats


def _run_trace_inline(
    trace,
    system,
    cell: "SweepCell",
    txns_per_thread: int,
    seed: int,
    psan: bool = False,
) -> MachineStats:
    """Serial trace replay of one cell in the driver process."""
    from ..sim.replay import run_compiled

    holder: dict = {}
    outcome = run_compiled(
        trace,
        RunConfig(
            policy=cell.policy,
            threads=cell.threads,
            txns_per_thread=txns_per_thread,
            system=system,
            seed=seed,
        ),
        machine_hook=_psan_hook(holder) if psan else None,
    )
    outcome.machine.nvram.recycle()
    if psan:
        _finish_psan(holder, outcome.stats, cell.benchmark, cell.threads)
    return outcome.stats


def default_jobs(cells: int) -> int:
    """CPU-aware worker count for sweeps that don't pin ``jobs``.

    One worker per pending cell, capped at ``os.cpu_count() - 1`` so the
    driver process keeps a core, and never below 1 (which callers treat
    as the serial in-process path — no pool is spun up at all).
    """
    return max(1, min(cells, (os.cpu_count() or 2) - 1))


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: hung workers are terminated, not joined."""
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass


def _parallel_round(
    prepared_map: Dict[str, object],
    cells: List["SweepCell"],
    txns_per_thread: int,
    seed: int,
    jobs: int,
    cell_timeout: Optional[float],
    health: SweepHealth,
    results: Dict["SweepCell", MachineStats],
    psan: bool = False,
) -> List["SweepCell"]:
    """One pool attempt over ``cells``; returns the cells that failed."""
    failed: List["SweepCell"] = []
    pool = ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_worker, initargs=(prepared_map,)
    )
    broken = False
    timed_out = False
    try:
        futures: List[Tuple["SweepCell", object]] = [
            (
                cell,
                pool.submit(
                    _run_cell,
                    cell.benchmark,
                    cell.threads,
                    cell.policy,
                    txns_per_thread,
                    seed,
                    psan,
                ),
            )
            for cell in cells
        ]
        for cell, future in futures:
            try:
                results[cell] = future.result(timeout=cell_timeout)
            except TimeoutError:
                health.timeouts += 1
                timed_out = True
                failed.append(cell)
            except BrokenExecutor:
                if not broken:
                    # One death breaks the whole pool; every unfinished
                    # future fails fast, so count the death once.
                    health.worker_deaths += 1
                    broken = True
                failed.append(cell)
    finally:
        if timed_out or broken:
            _terminate_pool(pool)
        else:
            pool.shutdown(wait=True)
    return failed


def run_cells_parallel(
    prepared_map: Dict[str, object],
    cells: Iterable["SweepCell"],
    txns_per_thread: int,
    seed: int,
    jobs: int,
    cell_timeout: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.5,
    health: Optional[SweepHealth] = None,
    psan: bool = False,
) -> Dict["SweepCell", MachineStats]:
    """Execute ``cells`` across ``jobs`` worker processes, self-healing.

    ``psan=True`` runs every cell under the persistency-ordering
    sanitizer; each returned stats object carries its cell's
    :class:`~repro.sanitizer.rules.PsanReport` as ``psan_report``.

    ``cell_timeout`` bounds the wait for each cell's result (None waits
    forever); cells lost to a timeout or a worker death are retried on a
    fresh pool up to ``max_retries`` times with exponential backoff
    (``retry_backoff * 2**round`` seconds), and whatever still fails is
    recovered serially in the driver process.  ``health`` (optional)
    accumulates what happened for CLI reporting.

    Returns ``{cell: stats}``; callers impose their own ordering (dict
    iteration order here is submission order, which the sweep re-sorts
    into canonical matrix order anyway).  Results are bit-identical to
    the serial loop regardless of how many attempts a cell needed.
    """
    if health is None:
        health = SweepHealth()
    remaining = list(cells)
    results: Dict["SweepCell", MachineStats] = {}
    attempt = 0
    while remaining and attempt <= max_retries:
        if attempt:
            health.retry_rounds += 1
            time.sleep(retry_backoff * (2 ** (attempt - 1)))
        remaining = _parallel_round(
            prepared_map,
            remaining,
            txns_per_thread,
            seed,
            jobs,
            cell_timeout,
            health,
            results,
            psan,
        )
        attempt += 1
    # Last resort: no pool machinery between us and the result.
    for cell in remaining:
        health.serial_fallback_cells += 1
        entry = prepared_map.get(f"trace:{cell.benchmark}@{cell.threads}")
        if entry is not None:
            system, trace = entry
            results[cell] = _run_trace_inline(
                trace, system, cell, txns_per_thread, seed, psan
            )
        else:
            results[cell] = _run_cell_inline(
                prepared_map[cell.benchmark], cell, txns_per_thread, seed, psan
            )
    return results
