"""Parallel sweep execution over worker processes.

Sweep cells are embarrassingly parallel: each one builds a private
machine, restores a prepared NVRAM snapshot and runs to completion with
no shared mutable state.  :func:`run_cells_parallel` fans a list of cells
over a :class:`~concurrent.futures.ProcessPoolExecutor`.

The prepared workloads (the expensive part — megabytes of set-up NVRAM
image) are shipped **once per worker** through the pool initializer
rather than once per cell; :class:`~repro.harness.runner.PreparedWorkload`
pickles with its image prefix zlib-compressed, so even spawn-based start
methods pay far less than the raw device size.  Results are plain
:class:`~repro.sim.stats.MachineStats` dataclasses, cheap to return.

Determinism: a cell's outcome depends only on its configuration, never on
which process runs it, so ``jobs=N`` is bit-identical to the serial loop
(covered by ``tests/harness/test_parallel_sweep.py``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, TYPE_CHECKING

from ..sim.stats import MachineStats
from .runner import PreparedWorkload, RunConfig, run_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports us)
    from .sweep import SweepCell

#: Per-worker prepared state, installed by :func:`_init_worker`.
_WORKER_PREPARED: Dict[str, PreparedWorkload] = {}


def _init_worker(prepared_map: Dict[str, PreparedWorkload]) -> None:
    """Pool initializer: receive the prepared workloads once."""
    global _WORKER_PREPARED
    _WORKER_PREPARED = prepared_map


def _run_cell(
    benchmark: str, threads: int, policy, txns_per_thread: int, seed: int
) -> MachineStats:
    """Run one sweep cell in a worker process; returns its stats."""
    prepared = _WORKER_PREPARED[benchmark]
    outcome = run_workload(
        prepared.workload,
        RunConfig(
            policy=policy,
            threads=threads,
            txns_per_thread=txns_per_thread,
            system=prepared.system,
            seed=seed,
        ),
        prepared=prepared,
    )
    outcome.machine.nvram.recycle()
    return outcome.stats


def run_cells_parallel(
    prepared_map: Dict[str, PreparedWorkload],
    cells: Iterable["SweepCell"],
    txns_per_thread: int,
    seed: int,
    jobs: int,
) -> Dict["SweepCell", MachineStats]:
    """Execute ``cells`` across ``jobs`` worker processes.

    Returns ``{cell: stats}``; callers impose their own ordering (dict
    iteration order here is submission order, which the sweep re-sorts
    into canonical matrix order anyway).
    """
    cells = list(cells)
    with ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_worker, initargs=(prepared_map,)
    ) as pool:
        futures = [
            (
                cell,
                pool.submit(
                    _run_cell,
                    cell.benchmark,
                    cell.threads,
                    cell.policy,
                    txns_per_thread,
                    seed,
                ),
            )
            for cell in cells
        ]
        return {cell: future.result() for cell, future in futures}
