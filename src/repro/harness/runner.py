"""Single-experiment driver.

Builds a machine under a policy, sets a workload up (untimed), then runs
one transaction-generator per thread, always advancing the thread whose
core clock is furthest behind — a fair interleaving in which the shared
LLC and NVRAM banks see time-ordered contention.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from ..core.policy import Policy
from ..errors import WorkloadError
from ..sim.config import SystemConfig
from ..sim.machine import Machine
from ..sim.stats import MachineStats
from ..txn.runtime import PersistentMemory
from ..workloads.base import Workload


def default_experiment_config(**overrides) -> SystemConfig:
    """Scaled-down Table II configuration used by the experiments.

    The LLC and footprints are scaled together (1 MB LLC against multi-MB
    footprints preserves the paper's footprint >> LLC regime) so that runs
    finish in seconds under the Python simulator; all latency, bank and
    energy parameters stay at their Table II values.  See EXPERIMENTS.md.
    """
    from ..sim.config import CacheConfig, LoggingConfig, NVDimmConfig

    base = SystemConfig(
        num_cores=8,
        llc=CacheConfig(size_bytes=256 * 1024, ways=16, line_size=64, latency_ns=4.4),
        nvram=NVDimmConfig(size_bytes=64 * 1024 * 1024),
        logging=LoggingConfig(log_entries=16384),
    )
    return base.scaled(**overrides) if overrides else base


@dataclass(frozen=True)
class RunConfig:
    """Parameters of one simulated run."""

    policy: Policy
    threads: int = 1
    txns_per_thread: int = 200
    system: Optional[SystemConfig] = None
    seed: int = 42


@dataclass
class PreparedWorkload:
    """A workload with its setup phase already executed.

    Setup can dominate sweep time (it builds megabytes of persistent
    structures); preparing once and restoring the NVRAM image per run
    keeps every policy/thread cell bit-identical at start.
    """

    workload: Workload
    system: SystemConfig
    image: bytes
    heap_state: tuple


def prepare_workload(
    workload: Workload, system: Optional[SystemConfig] = None
) -> PreparedWorkload:
    """Run ``workload.setup`` once and capture the initial NVRAM state."""
    system = system or default_experiment_config()
    machine = Machine(system, Policy.NON_PERS)
    pm = PersistentMemory(machine)
    workload.setup(pm)
    return PreparedWorkload(
        workload, system, bytes(machine.nvram.image), pm.heap.snapshot()
    )


@dataclass
class RunOutcome:
    """Everything a finished run exposes."""

    policy: Policy
    threads: int
    stats: MachineStats
    machine: Machine = field(repr=False)
    pm: PersistentMemory = field(repr=False)

    @property
    def throughput(self) -> float:
        """Committed transactions per million cycles."""
        return self.stats.throughput

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle."""
        return self.stats.ipc


def run_workload(
    workload: Workload,
    run: RunConfig,
    prepared: Optional[PreparedWorkload] = None,
) -> RunOutcome:
    """Execute ``workload`` under ``run`` and return the outcome.

    With ``prepared``, the setup phase is skipped and the prepared NVRAM
    image and heap state are restored instead (the workload must be the
    prepared one).
    """
    system = run.system or (prepared.system if prepared else default_experiment_config())
    if run.threads > system.num_cores:
        raise WorkloadError(
            f"{run.threads} threads need {run.threads} cores, "
            f"config has {system.num_cores}"
        )
    machine = Machine(system, run.policy)
    pm = PersistentMemory(machine)
    if prepared is not None:
        if prepared.workload is not workload:
            raise WorkloadError("prepared state belongs to a different workload")
        machine.nvram.image[:] = prepared.image
        pm.heap.restore(prepared.heap_state)
        workload.attach(pm)
    else:
        workload.setup(pm)

    generators = []
    for tid in range(run.threads):
        api = pm.api(core_id=tid, tid=tid)
        generators.append(workload.thread_body(api, tid, run.txns_per_thread))

    # Min-heap on core clock; tie-break on thread id for determinism.
    ready = [(machine.core_time(tid), tid) for tid in range(run.threads)]
    heapq.heapify(ready)
    while ready:
        _, tid = heapq.heappop(ready)
        try:
            next(generators[tid])
        except StopIteration:
            continue
        heapq.heappush(ready, (machine.core_time(tid), tid))

    stats = machine.finalize()
    return RunOutcome(run.policy, run.threads, stats, machine, pm)
