"""Single-experiment driver.

Builds a machine under a design spec, sets a workload up (untimed), then runs
one transaction-generator per thread, always advancing the thread whose
core clock is furthest behind — a fair interleaving in which the shared
LLC and NVRAM banks see time-ordered contention.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import Optional

from ..core.design import NON_PERS, DesignSpec, resolve_design
from ..errors import WorkloadError
from ..sim.config import SystemConfig
from ..sim.machine import Machine
from ..sim.stats import MachineStats
from ..txn.runtime import PersistentMemory
from ..workloads.base import Workload


def default_experiment_config(**overrides) -> SystemConfig:
    """Scaled-down Table II configuration used by the experiments.

    The LLC and footprints are scaled together (1 MB LLC against multi-MB
    footprints preserves the paper's footprint >> LLC regime) so that runs
    finish in seconds under the Python simulator; all latency, bank and
    energy parameters stay at their Table II values.  See EXPERIMENTS.md.
    """
    from ..sim.config import CacheConfig, LoggingConfig, NVDimmConfig

    base = SystemConfig(
        num_cores=8,
        llc=CacheConfig(size_bytes=256 * 1024, ways=16, line_size=64, latency_ns=4.4),
        nvram=NVDimmConfig(size_bytes=64 * 1024 * 1024),
        logging=LoggingConfig(log_entries=16384),
    )
    return base.scaled(**overrides) if overrides else base


@dataclass(frozen=True)
class RunConfig:
    """Parameters of one simulated run.

    ``policy`` accepts anything design-shaped (a
    :class:`~repro.core.design.DesignSpec`, a legacy ``Policy`` member,
    or a name / mechanism string) and normalizes to the spec.
    """

    policy: DesignSpec
    threads: int = 1
    txns_per_thread: int = 200
    system: Optional[SystemConfig] = None
    seed: int = 42

    def __post_init__(self) -> None:
        if not isinstance(self.policy, DesignSpec):
            object.__setattr__(self, "policy", resolve_design(self.policy))


@dataclass
class PreparedWorkload:
    """A workload with its setup phase already executed.

    Setup can dominate sweep time (it builds megabytes of persistent
    structures); preparing once and restoring the NVRAM image per run
    keeps every policy/thread cell bit-identical at start.

    Only the non-zero prefix of the image is stored (setup writes into a
    zeroed device, so everything past the last touched byte is zero) and
    restored into the freshly zeroed machine of each run — the tail of a
    mostly empty multi-megabyte device is never copied or even paged in.
    Instances pickle with the prefix zlib-compressed, so shipping a
    prepared workload to a sweep worker process costs far less than the
    raw device size.
    """

    workload: Workload
    system: SystemConfig
    image_prefix: bytes
    image_size: int
    heap_state: tuple

    @property
    def image(self) -> bytes:
        """The full initial NVRAM image (reconstructed; test/debug use)."""
        return self.image_prefix + bytes(self.image_size - len(self.image_prefix))

    def restore_into(self, machine: Machine) -> None:
        """Copy the prepared image into ``machine``'s (zeroed) NVRAM."""
        machine.nvram.load_image_prefix(self.image_prefix)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["image_prefix"] = zlib.compress(self.image_prefix, 1)
        state["_compressed"] = True
        return state

    def __setstate__(self, state: dict) -> None:
        if state.pop("_compressed", False):
            state["image_prefix"] = zlib.decompress(state["image_prefix"])
        self.__dict__.update(state)


def prepare_workload(
    workload: Workload, system: Optional[SystemConfig] = None
) -> PreparedWorkload:
    """Run ``workload.setup`` once and capture the initial NVRAM state."""
    system = system or default_experiment_config()
    machine = Machine(system, NON_PERS)
    pm = PersistentMemory(machine)
    workload.setup(pm)
    # Setup writes into a zeroed device, so only the written extent can
    # be non-zero; strip trailing zeros off that extent rather than
    # copying and scanning the whole (mostly empty) image.
    lo_end, hi_start = machine.nvram.written_extent()
    if hi_start < system.nvram.size_bytes:
        lo_end = system.nvram.size_bytes
    prefix = bytes(machine.nvram.image[:lo_end]).rstrip(b"\x00")
    prepared = PreparedWorkload(
        workload, system, prefix, system.nvram.size_bytes, pm.heap.snapshot()
    )
    machine.nvram.recycle()
    return prepared


@dataclass
class RunOutcome:
    """Everything a finished run exposes."""

    policy: DesignSpec
    threads: int
    stats: MachineStats
    machine: Machine = field(repr=False)
    pm: PersistentMemory = field(repr=False)

    @property
    def throughput(self) -> float:
        """Committed transactions per million cycles."""
        return self.stats.throughput

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle."""
        return self.stats.ipc


def _build_run(
    workload: Workload,
    run: RunConfig,
    prepared: Optional[PreparedWorkload],
    machine_hook,
):
    """Shared run construction: machine, memory, and a ready workload.

    With ``prepared``, the setup phase is skipped and the prepared NVRAM
    image and heap state are restored instead (the workload must have the
    same identity key as the prepared one; see
    :meth:`~repro.workloads.base.Workload.identity_key`).

    ``machine_hook(machine)``, when given, is called on the freshly built
    machine before any setup or execution — the attachment point for
    tracers and the persistency-ordering sanitizer (setup uses untimed
    pokes, so a tracer attached here sees only timed execution).

    Returns ``(machine, pm, workload)`` with ``reset_run_state`` already
    applied (the post-reset state is the baseline checkpoint shards
    capture at construction).
    """
    system = run.system or (prepared.system if prepared else default_experiment_config())
    if run.threads > system.num_cores:
        raise WorkloadError(
            f"{run.threads} threads need {run.threads} cores, "
            f"config has {system.num_cores}"
        )
    machine = Machine(system, run.policy)
    if machine_hook is not None:
        machine_hook(machine)
    pm = PersistentMemory(machine)
    if prepared is not None:
        # Identity-key comparison (not object identity): a prepared
        # workload that crossed a pickle boundary — e.g. shipped to a
        # sweep worker process — is a different object with the same
        # configuration and post-setup state, and must be accepted.
        if prepared.workload.identity_key() != workload.identity_key():
            raise WorkloadError("prepared state belongs to a different workload")
        # The prepared instance carries the post-setup host-side state
        # (layout addresses, resident sets); run that one even if the
        # caller passed an equivalent fresh instance.
        workload = prepared.workload
        prepared.restore_into(machine)
        pm.heap.restore(prepared.heap_state)
        workload.attach(pm)
    else:
        workload.setup(pm)
    workload.reset_run_state()
    return machine, pm, workload


def run_workload(
    workload: Workload,
    run: RunConfig,
    prepared: Optional[PreparedWorkload] = None,
    machine_hook=None,
) -> RunOutcome:
    """Execute ``workload`` under ``run`` and return the outcome.

    Since the service-layer refactor this is a thin adapter: the run is
    a single :class:`~repro.sched.shard.ShardMachine` in batch mode,
    drained to completion by the event-loop scheduler.  The shard's step
    loop replicates the historical core-clock min-heap drive order, so
    outcomes are bit-identical to the pre-refactor monolithic loop
    (kept below as :func:`run_workload_monolithic`; the differential
    gate in ``tests/integration`` compares the two).
    """
    # Local imports: harness is a lower layer that sched builds on for
    # serve mode; the adapter pulls sched in lazily to avoid the cycle.
    from ..sched.loop import EventLoopScheduler
    from ..sched.shard import ShardMachine

    machine, pm, workload = _build_run(workload, run, prepared, machine_hook)
    shard = ShardMachine(machine, pm, workload, threads=run.threads)
    shard.start_batch(run.txns_per_thread)
    EventLoopScheduler([shard]).drain()
    stats = machine.finalize()
    return RunOutcome(run.policy, run.threads, stats, machine, pm)


def run_workload_monolithic(
    workload: Workload,
    run: RunConfig,
    prepared: Optional[PreparedWorkload] = None,
    machine_hook=None,
) -> RunOutcome:
    """The pre-refactor single-loop runner, kept as the reference.

    Drives every thread generator to completion with one private
    min-heap on ``(core_time, tid)``.  The differential gate runs this
    against :func:`run_workload` to prove the steppable-shard path is
    bit-identical in cost counters; it is not used by any entry point.
    """
    machine, pm, workload = _build_run(workload, run, prepared, machine_hook)

    generators = []
    for tid in range(run.threads):
        api = pm.api(core_id=tid, tid=tid)
        generators.append(workload.thread_body(api, tid, run.txns_per_thread))

    # Min-heap on core clock; tie-break on thread id for determinism.
    ready = [(machine.core_time(tid), tid) for tid in range(run.threads)]
    heapq.heapify(ready)
    while ready:
        _, tid = heapq.heappop(ready)
        try:
            next(generators[tid])
        except StopIteration:
            continue
        heapq.heappush(ready, (machine.core_time(tid), tid))

    stats = machine.finalize()
    return RunOutcome(run.policy, run.threads, stats, machine, pm)
