"""Content-addressed on-disk cache of sweep cell results.

A sweep cell's :class:`~repro.sim.stats.MachineStats` is a pure function
of its configuration: the simulator is deterministic, so (system config,
design-spec mechanisms, workload identity, thread count, transactions per
thread) fully determines the outcome.  :class:`SweepCache` exploits that
by storing each cell's stats as one JSON file named by the SHA-256 of a
canonical encoding of exactly those inputs — repeated figure or
validation runs then skip every already-computed cell.

Keys hash the design's *mechanism fields*
(:meth:`~repro.core.design.DesignSpec.key_material`), not its display
name: a custom ablation spec that happens to share mechanisms with a
canonical design (e.g. ``hw+undo+redo+fwb`` vs ``fwb``) shares its cache
entries, while specs differing in any single mechanism — even just the
write-back discipline — can never collide.

Invalidation is by construction: any change to the key inputs (including
the workload's public attributes, via
:meth:`~repro.workloads.base.Workload.identity_key`) produces a different
hash, and simulator-behaviour changes are handled by bumping
:data:`CODE_SALT`, which is folded into every key.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default ``.repro_cache`` in the
  current working directory);
* ``REPRO_SWEEP_CACHE=0`` — disable the cache even where the CLI would
  turn it on (:func:`cache_enabled`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
from pathlib import Path
from typing import Optional

from ..core.design import resolve_design
from ..sim.config import SystemConfig
from ..sim.stats import MachineStats
from ..workloads.base import Workload

#: Bump whenever a simulator change alters any cell's stats — every key
#: includes it, so old entries become unreachable (not merely stale).
#: (v2: keys switched from policy names to design-spec mechanisms.)
CODE_SALT = "sweep-v2"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_DISABLE = "REPRO_SWEEP_CACHE"

_STATS_FIELDS = {f.name for f in dataclasses.fields(MachineStats)}
_INT_KEY_FIELDS = ("per_core_instructions", "per_core_cycles")


def cache_enabled() -> bool:
    """False when ``REPRO_SWEEP_CACHE`` is set to an off value."""
    return os.environ.get(ENV_DISABLE, "1").lower() not in ("0", "off", "no", "false")


def default_cache_dir() -> Path:
    """Cache directory: ``REPRO_CACHE_DIR`` or ``.repro_cache``."""
    return Path(os.environ.get(ENV_CACHE_DIR, ".repro_cache"))


def stats_to_dict(stats: MachineStats) -> dict:
    """Encode stats as a JSON-ready dict."""
    return dataclasses.asdict(stats)


def stats_from_dict(data: dict) -> MachineStats:
    """Rebuild :class:`MachineStats` from :func:`stats_to_dict` output.

    JSON turns the per-core dicts' int keys into strings; they are
    converted back so round-tripped stats compare equal to the originals.
    Unknown keys are ignored (forward compatibility with entries written
    by a newer field set — the salt guards semantics, not shape).
    """
    fields = {key: value for key, value in data.items() if key in _STATS_FIELDS}
    for name in _INT_KEY_FIELDS:
        if name in fields:
            fields[name] = {int(core): v for core, v in fields[name].items()}
    return MachineStats(**fields)


class SweepCache:
    """On-disk sweep result cache with hit/miss/store counters.

    One instance is typically shared across a whole sweep (or several);
    the counters accumulate so CLI entry points can report how much work
    the cache absorbed.
    """

    def __init__(
        self, directory: Optional[Path] = None, salt: str = CODE_SALT
    ) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key(
        self,
        system: SystemConfig,
        policy,
        workload: Workload,
        threads: int,
        txns_per_thread: int,
    ) -> str:
        """Content hash of everything that determines a cell's stats.

        ``policy`` is anything design-shaped (spec, legacy enum member,
        or string); the hash covers its mechanism fields, never its
        display name.
        """
        material = {
            "salt": self.salt,
            "system": dataclasses.asdict(system),
            "design": resolve_design(policy).key_material(),
            "workload": workload.identity_key(),
            "threads": threads,
            "txns_per_thread": txns_per_thread,
        }
        canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------
    # Get / put
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[MachineStats]:
        """Cached stats for ``key``, or None (counted as hit/miss).

        An entry that exists but fails to parse (torn write, truncation,
        bit rot) is additionally counted in ``corrupt`` and reported on
        stderr — silently recomputing hides that the cache is rotting —
        then treated as a miss; the fresh result overwrites it.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            stats = stats_from_dict(payload["stats"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.corrupt += 1
            self.misses += 1
            print(
                f"warning: corrupt sweep-cache entry {path.name}: {exc!r}; "
                "recomputing",
                file=sys.stderr,
            )
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: MachineStats) -> None:
        """Store ``stats`` under ``key`` (atomic rename, parallel-safe)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        payload = {"salt": self.salt, "stats": stats_to_dict(stats)}
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
        self.stores += 1

    # ------------------------------------------------------------------
    # Maintenance / reporting
    # ------------------------------------------------------------------
    def prune(self, dry_run: bool = False) -> dict:
        """Delete entries written under a different ``CODE_SALT``.

        Keys fold the salt in, so entries from an older salt (e.g.
        pre-``sweep-v2`` files keyed by policy *names*) can never hit
        again — they are pure dead weight.  Every stored payload also
        records its salt, which is what this scan inspects; entries that
        fail to parse at all are treated as stale too.  ``dry_run``
        counts without deleting.  Returns
        ``{"scanned", "stale", "removed", "kept"}``.
        """
        scanned = stale = removed = 0
        if self.directory.is_dir():
            for path in sorted(self.directory.glob("*.json")):
                scanned += 1
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        entry_salt = json.load(fh).get("salt")
                except (OSError, ValueError):
                    entry_salt = None
                if entry_salt == self.salt:
                    continue
                stale += 1
                if not dry_run:
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return {
            "scanned": scanned,
            "stale": stale,
            "removed": removed,
            "kept": scanned - stale,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        """One-line counter summary for CLI output."""
        line = (
            f"sweep cache: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} stored"
        )
        if self.corrupt:
            line += f", {self.corrupt} corrupt entr(ies) recomputed"
        return f"{line} ({self.directory})"
