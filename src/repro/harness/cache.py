"""Content-addressed on-disk cache of sweep cell results.

A sweep cell's :class:`~repro.sim.stats.MachineStats` is a pure function
of its configuration: the simulator is deterministic, so (system config,
design-spec mechanisms, workload identity, thread count, transactions per
thread) fully determines the outcome.  :class:`SweepCache` exploits that
by storing each cell's stats as one JSON file named by the SHA-256 of a
canonical encoding of exactly those inputs — repeated figure or
validation runs then skip every already-computed cell.

Keys hash the design's *mechanism fields*
(:meth:`~repro.core.design.DesignSpec.key_material`), not its display
name: a custom ablation spec that happens to share mechanisms with a
canonical design (e.g. ``hw+undo+redo+fwb`` vs ``fwb``) shares its cache
entries, while specs differing in any single mechanism — even just the
write-back discipline — can never collide.

Invalidation is by construction: any change to the key inputs (including
the workload's public attributes, via
:meth:`~repro.workloads.base.Workload.identity_key`) produces a different
hash, and simulator-behaviour changes are handled by bumping
:data:`CODE_SALT`, which is folded into every key.

This module also hosts :class:`TraceCache`, the compiled-trace store
used by the trace-replay execution engine (:mod:`repro.sim.replay`).
Unlike the result cache it is an *engine* detail — it changes how a cell
is executed, never what its stats are — so it is on by default and keyed
**without** the design (one trace serves every design cell).

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default ``.repro_cache`` in the
  current working directory);
* ``REPRO_SWEEP_CACHE=0`` — disable the result cache even where the CLI
  would turn it on (:func:`cache_enabled`);
* ``REPRO_TRACE=0`` — disable the trace-replay engine entirely (every
  cell runs interpreted, as before the engine existed);
* ``REPRO_TRACE_CACHE=0`` — keep the engine but skip its on-disk store
  (traces are still compiled once per process and memoised in memory).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import zlib
from pathlib import Path
from typing import Optional

from ..core.design import resolve_design
from ..sim.config import SystemConfig
from ..sim.stats import MachineStats
from ..workloads.base import Workload

#: Bump whenever a simulator change alters any cell's stats — every key
#: includes it, so old entries become unreachable (not merely stale).
#: (v2: keys switched from policy names to design-spec mechanisms.)
CODE_SALT = "sweep-v2"

#: Bump whenever the recorded column format or recording semantics
#: change; stale ``.ctrace`` files then fail decoding and are recompiled.
#: (v2: CRC32 trailer appended to the blob.)
TRACE_SALT = "ctrace-v2"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_DISABLE = "REPRO_SWEEP_CACHE"
ENV_TRACE = "REPRO_TRACE"
ENV_TRACE_CACHE = "REPRO_TRACE_CACHE"

_STATS_FIELDS = {f.name for f in dataclasses.fields(MachineStats)}
_INT_KEY_FIELDS = ("per_core_instructions", "per_core_cycles")


_OFF_VALUES = ("0", "off", "no", "false")


def cache_enabled() -> bool:
    """False when ``REPRO_SWEEP_CACHE`` is set to an off value."""
    return os.environ.get(ENV_DISABLE, "1").lower() not in _OFF_VALUES


def trace_enabled() -> bool:
    """False when ``REPRO_TRACE`` is set to an off value."""
    return os.environ.get(ENV_TRACE, "1").lower() not in _OFF_VALUES


def trace_cache_enabled() -> bool:
    """False when ``REPRO_TRACE_CACHE`` is set to an off value."""
    return os.environ.get(ENV_TRACE_CACHE, "1").lower() not in _OFF_VALUES


def default_cache_dir() -> Path:
    """Cache directory: ``REPRO_CACHE_DIR`` or ``.repro_cache``."""
    return Path(os.environ.get(ENV_CACHE_DIR, ".repro_cache"))


def stats_to_dict(stats: MachineStats) -> dict:
    """Encode stats as a JSON-ready dict."""
    return dataclasses.asdict(stats)


def stats_from_dict(data: dict) -> MachineStats:
    """Rebuild :class:`MachineStats` from :func:`stats_to_dict` output.

    JSON turns the per-core dicts' int keys into strings; they are
    converted back so round-tripped stats compare equal to the originals.
    Unknown keys are ignored (forward compatibility with entries written
    by a newer field set — the salt guards semantics, not shape).
    """
    fields = {key: value for key, value in data.items() if key in _STATS_FIELDS}
    for name in _INT_KEY_FIELDS:
        if name in fields:
            fields[name] = {int(core): v for core, v in fields[name].items()}
    return MachineStats(**fields)


class SweepCache:
    """On-disk sweep result cache with hit/miss/store counters.

    One instance is typically shared across a whole sweep (or several);
    the counters accumulate so CLI entry points can report how much work
    the cache absorbed.
    """

    def __init__(
        self, directory: Optional[Path] = None, salt: str = CODE_SALT
    ) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key(
        self,
        system: SystemConfig,
        policy,
        workload: Workload,
        threads: int,
        txns_per_thread: int,
    ) -> str:
        """Content hash of everything that determines a cell's stats.

        ``policy`` is anything design-shaped (spec, legacy enum member,
        or string); the hash covers its mechanism fields, never its
        display name.
        """
        material = {
            "salt": self.salt,
            "system": dataclasses.asdict(system),
            "design": resolve_design(policy).key_material(),
            "workload": workload.identity_key(),
            "threads": threads,
            "txns_per_thread": txns_per_thread,
        }
        canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------
    # Get / put
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[MachineStats]:
        """Cached stats for ``key``, or None (counted as hit/miss).

        An entry that exists but fails to parse (torn write, truncation,
        bit rot) is additionally counted in ``corrupt`` and reported on
        stderr — silently recomputing hides that the cache is rotting —
        then treated as a miss; the fresh result overwrites it.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            stats = stats_from_dict(payload["stats"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.corrupt += 1
            self.misses += 1
            print(
                f"warning: corrupt sweep-cache entry {path.name}: {exc!r}; "
                "recomputing",
                file=sys.stderr,
            )
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: MachineStats) -> None:
        """Store ``stats`` under ``key`` (atomic rename, parallel-safe)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        payload = {"salt": self.salt, "stats": stats_to_dict(stats)}
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
        self.stores += 1

    # ------------------------------------------------------------------
    # Maintenance / reporting
    # ------------------------------------------------------------------
    def prune(self, dry_run: bool = False) -> dict:
        """Delete entries written under a different ``CODE_SALT``.

        Keys fold the salt in, so entries from an older salt (e.g.
        pre-``sweep-v2`` files keyed by policy *names*) can never hit
        again — they are pure dead weight.  Every stored payload also
        records its salt, which is what this scan inspects; entries that
        fail to parse at all are treated as stale too.  ``dry_run``
        counts without deleting.  Returns
        ``{"scanned", "stale", "removed", "kept"}``.
        """
        scanned = stale = removed = 0
        if self.directory.is_dir():
            for path in sorted(self.directory.glob("*.json")):
                scanned += 1
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        entry_salt = json.load(fh).get("salt")
                except (OSError, ValueError):
                    entry_salt = None
                if entry_salt == self.salt:
                    continue
                stale += 1
                if not dry_run:
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return {
            "scanned": scanned,
            "stale": stale,
            "removed": removed,
            "kept": scanned - stale,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        """One-line counter summary for CLI output."""
        line = (
            f"sweep cache: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} stored"
        )
        if self.corrupt:
            line += f", {self.corrupt} corrupt entr(ies) recomputed"
        return f"{line} ({self.directory})"


class TraceCache:
    """Two-level store of compiled workload traces.

    Level 1 is an in-process LRU memo (a ``repro bench`` run repeats each
    suite several times; repeats skip even the disk decode), level 2 a
    directory of ``.ctrace`` files written by the
    :meth:`~repro.sim.ctrace.CompiledTrace.to_bytes` codec.  Keys cover
    system config, workload identity, thread count and transactions per
    thread — **not** the design: the whole point of the engine is that
    one trace replays under every design cell.

    Corrupt or format-incompatible files are counted, reported, and
    recompiled, mirroring :class:`SweepCache`.
    """

    MEMO_ENTRIES = 8

    def __init__(
        self,
        directory: Optional[Path] = None,
        salt: str = TRACE_SALT,
        use_disk: Optional[bool] = None,
    ) -> None:
        # Directory and disk-enable default to the *current* environment
        # on every access (not frozen at construction): the process-wide
        # instance outlives environment changes made by tests and CLIs.
        self._directory = Path(directory) if directory is not None else None
        self.salt = salt
        self._use_disk = use_disk
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self._memo: "dict[str, object]" = {}

    @property
    def directory(self) -> Path:
        return self._directory if self._directory is not None else default_cache_dir()

    @property
    def use_disk(self) -> bool:
        return self._use_disk if self._use_disk is not None else trace_cache_enabled()

    def key(
        self,
        system: SystemConfig,
        workload: Workload,
        threads: int,
        txns_per_thread: int,
    ) -> str:
        """Content hash of everything that determines the recorded trace."""
        material = {
            "salt": self.salt,
            "system": dataclasses.asdict(system),
            "workload": workload.identity_key(),
            "threads": threads,
            "txns_per_thread": txns_per_thread,
        }
        canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.ctrace"

    def get(self, key: str):
        """Cached :class:`~repro.sim.ctrace.CompiledTrace` or None."""
        trace = self._memo.get(key)
        if trace is not None:
            # Re-insert to keep LRU order (dicts preserve insertion order).
            self._memo.pop(key)
            self._memo[key] = trace
            self.hits += 1
            return trace
        if not self.use_disk:
            self.misses += 1
            return None
        from ..sim.ctrace import CompiledTrace

        path = self._path(key)
        try:
            blob = path.read_bytes()
            trace = CompiledTrace.from_bytes(blob)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, zlib.error) as exc:
            self.corrupt += 1
            self.misses += 1
            print(
                f"warning: corrupt trace-cache entry {path.name}: {exc!r}; "
                "recompiling",
                file=sys.stderr,
            )
            return None
        self._remember(key, trace)
        self.hits += 1
        return trace

    def put(self, key: str, trace) -> None:
        """Store a compiled trace (memo always; disk when enabled)."""
        self._remember(key, trace)
        self.stores += 1
        if not self.use_disk:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_bytes(trace.to_bytes())
        os.replace(tmp, path)

    def _remember(self, key: str, trace) -> None:
        self._memo.pop(key, None)
        self._memo[key] = trace
        while len(self._memo) > self.MEMO_ENTRIES:
            self._memo.pop(next(iter(self._memo)))

    def summary(self) -> str:
        """One-line counter summary for CLI output."""
        line = (
            f"trace cache: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} compiled"
        )
        if self.corrupt:
            line += f", {self.corrupt} corrupt entr(ies) recompiled"
        return f"{line} ({self.directory})"

    def verify_disk(self) -> dict:
        """CRC-verify every on-disk entry (``repro cache stats``).

        Fully decodes each ``.ctrace`` blob — which checks the CRC32
        trailer and the column codec — without touching the memo or the
        hit/miss counters.  Undecodable files are counted as ``stale``,
        not as an error: the salt folds into the cache *key*, so a file
        that fails to decode is either unreachable dead weight from an
        older trace format (the common case after a codec change) or a
        live-key blob that the next ``get`` will transparently recompile
        and overwrite.  Either way nothing is lost — ``prune`` deletes
        them.  Returns ``{scanned, ok, stale, bytes}``.
        """
        counts = {"scanned": 0, "ok": 0, "stale": 0, "bytes": 0}
        if self.directory.is_dir():
            from ..sim.ctrace import CompiledTrace

            for path in sorted(self.directory.glob("*.ctrace")):
                counts["scanned"] += 1
                try:
                    blob = path.read_bytes()
                    counts["bytes"] += len(blob)
                    CompiledTrace.from_bytes(blob)
                except (OSError, ValueError, KeyError, TypeError, zlib.error):
                    counts["stale"] += 1
                else:
                    counts["ok"] += 1
        return counts

    def prune(self, dry_run: bool = False) -> dict:
        """Delete ``.ctrace`` files that no longer decode.

        The trace analogue of :meth:`SweepCache.prune`: because the
        format salt is folded into the key rather than the blob, entries
        written under an older codec linger on disk and fail
        :meth:`~repro.sim.ctrace.CompiledTrace.from_bytes` — they can
        never be served again and are pure dead weight.  ``dry_run``
        counts without deleting.  Returns
        ``{"scanned", "stale", "removed", "kept"}``.
        """
        scanned = stale = removed = 0
        if self.directory.is_dir():
            from ..sim.ctrace import CompiledTrace

            for path in sorted(self.directory.glob("*.ctrace")):
                scanned += 1
                try:
                    CompiledTrace.from_bytes(path.read_bytes())
                except (OSError, ValueError, KeyError, TypeError, zlib.error):
                    stale += 1
                    if not dry_run:
                        try:
                            path.unlink()
                            removed += 1
                        except OSError:
                            pass
        return {
            "scanned": scanned,
            "stale": stale,
            "removed": removed,
            "kept": scanned - stale,
        }


#: Process-wide trace cache shared by every sweep in this process (the
#: in-memory memo is what makes bench repeats and multi-figure CLI runs
#: skip recompilation).
_SHARED_TRACE_CACHE: Optional[TraceCache] = None


def shared_trace_cache() -> TraceCache:
    """The process-wide :class:`TraceCache` (created on first use)."""
    global _SHARED_TRACE_CACHE
    if _SHARED_TRACE_CACHE is None:
        _SHARED_TRACE_CACHE = TraceCache()
    return _SHARED_TRACE_CACHE


def peek_trace_cache() -> Optional[TraceCache]:
    """The shared trace cache if one exists, without creating it.

    CLI reporting uses this so that commands which never compiled a
    trace don't print (or instantiate) an idle cache.
    """
    return _SHARED_TRACE_CACHE
