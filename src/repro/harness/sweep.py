"""Configuration sweeps shared by the figure reproductions.

Figures 6-9 all read off the same matrix of runs (benchmark x thread
count x policy); :func:`run_micro_sweep` executes it once and the figure
functions extract their metric.  Only the stats snapshot is retained per
cell to keep memory bounded.

The sweep engine has three throughput levers on top of the serial loop:

* ``jobs=N`` fans the cells over worker processes
  (:mod:`~repro.harness.parallel`); cells are independent, so results are
  bit-identical to the serial loop in any case.
* ``cache=`` consults a content-addressed on-disk store
  (:mod:`~repro.harness.cache`) before running anything; benchmarks whose
  cells all hit are never even prepared.
* trace compilation (:mod:`~repro.sim.replay`, on by default for
  ``trace_compilable`` workloads, ``REPRO_TRACE=0`` to disable): each
  ``(benchmark, threads)`` pair's micro-op stream is decoded once —
  or fetched from the shared trace cache, skipping preparation entirely
  — and replayed per design cell, bit-identically.

Whatever mix of cached and fresh cells a sweep ends up with, the result
dict is assembled in canonical matrix order (benchmarks outermost,
policies innermost) so downstream consumers see the same ordering as a
cold serial sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from ..core.design import DesignSpec, canonical_order, resolve_design
from ..core.policy import MICROBENCH_POLICIES
from ..sim.config import SystemConfig
from ..sim.stats import MachineStats
from ..workloads import make_microbenchmark
from ..workloads.base import Workload
from .cache import SweepCache, shared_trace_cache, trace_enabled
from .runner import default_experiment_config, prepare_workload


@dataclass(frozen=True)
class SweepCell:
    """One point in the sweep matrix.

    ``policy`` accepts anything design-shaped — a
    :class:`~repro.core.design.DesignSpec`, a legacy ``Policy`` member,
    or a name / mechanism string — and normalizes to the spec, so cells
    built from either representation compare and hash identically.
    """

    benchmark: str
    threads: int
    policy: DesignSpec

    def __post_init__(self) -> None:
        if not isinstance(self.policy, DesignSpec):
            object.__setattr__(self, "policy", resolve_design(self.policy))


@dataclass
class SweepResult:
    """Stats for every executed cell."""

    cells: Dict[SweepCell, MachineStats] = field(default_factory=dict)

    def stats(self, benchmark: str, threads: int, policy) -> MachineStats:
        """Stats for one cell (KeyError if the cell was not swept)."""
        return self.cells[SweepCell(benchmark, threads, policy)]

    def benchmarks(self) -> list:
        """Benchmark names present, in first-seen order."""
        seen = []
        for cell in self.cells:
            if cell.benchmark not in seen:
                seen.append(cell.benchmark)
        return seen

    def thread_counts(self) -> list:
        """Thread counts present, ascending."""
        return sorted({cell.threads for cell in self.cells})

    def policies(self) -> list:
        """Design specs present: canonical ones in paper order first,
        then custom specs in first-seen order."""
        present = []
        for cell in self.cells:
            if cell.policy not in present:
                present.append(cell.policy)
        return canonical_order(present)

    def merge(self, other: "SweepResult") -> "SweepResult":
        """Combine two results into a new one (``other`` wins on overlap).

        Lets callers assemble a matrix from partial sweeps — e.g. extend
        an existing result with extra thread counts or benchmarks.
        """
        merged: Dict[SweepCell, MachineStats] = dict(self.cells)
        merged.update(other.cells)
        return SweepResult(merged)


def run_micro_sweep(
    benchmarks: Iterable[str] = ("hash", "rbtree", "sps", "btree", "ssca2"),
    threads: Iterable[int] = (1,),
    policies: Iterable = MICROBENCH_POLICIES,
    txns_per_thread: int = 200,
    system: Optional[SystemConfig] = None,
    seed: int = 42,
    value_kind: str = "int",
    workload_factory: Optional[Callable[[str], Workload]] = None,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
    cell_timeout: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.5,
    health=None,
    psan_report=None,
) -> SweepResult:
    """Run the benchmark x threads x policy matrix; returns all stats.

    ``workload_factory`` may override how a benchmark name becomes a
    workload (used by the WHISPER sweep and by tests).  ``jobs > 1`` runs
    the cells on that many worker processes; ``cache`` (off by default —
    library callers opt in, the CLI passes one) serves cells from the
    on-disk store and writes back fresh results.  ``cell_timeout``,
    ``max_retries``, ``retry_backoff`` and ``health`` configure the
    parallel driver's self-healing (see
    :func:`~repro.harness.parallel.run_cells_parallel`); they are ignored
    by the serial path, which has no workers to lose.

    ``psan_report`` (a :class:`~repro.sanitizer.checker.PsanSweepReport`)
    runs every cell under the persistency-ordering sanitizer and appends
    one per-cell report in canonical matrix order.  Sanitizing requires
    actually executing the cells, so the result cache is bypassed for
    the whole sweep when set.
    """
    benchmarks = tuple(benchmarks)
    if psan_report is not None:
        cache = None
    threads = tuple(threads)
    policies = tuple(resolve_design(policy) for policy in policies)
    workloads: Dict[str, Workload] = {}
    for benchmark in benchmarks:
        if workload_factory is not None:
            workloads[benchmark] = workload_factory(benchmark)
        else:
            workloads[benchmark] = make_microbenchmark(
                benchmark, seed=seed, value_kind=value_kind
            )

    order = [
        SweepCell(benchmark, nthreads, policy)
        for benchmark in benchmarks
        for nthreads in threads
        for policy in policies
    ]

    # Cache probe first: a benchmark whose cells all hit never pays for
    # preparation at all.
    collected: Dict[SweepCell, MachineStats] = {}
    keys: Dict[SweepCell, str] = {}
    pending = []
    resolved_system = system if system is not None else default_experiment_config()
    for cell in order:
        if cache is not None:
            keys[cell] = cache.key(
                resolved_system,
                cell.policy,
                workloads[cell.benchmark],
                cell.threads,
                txns_per_thread,
            )
            stats = cache.get(keys[cell])
            if stats is not None:
                collected[cell] = stats
                continue
        pending.append(cell)

    if pending:
        # Execution planning: cells of trace-compilable workloads replay
        # a compiled trace (decode once per (benchmark, threads), replay
        # per design cell — see repro.sim.replay); everything else runs
        # interpreted from a prepared snapshot.  When a benchmark's
        # traces all come from the trace cache, its (expensive) setup
        # phase is skipped entirely.
        needed_threads: Dict[str, set] = {}
        for cell in pending:
            needed_threads.setdefault(cell.benchmark, set()).add(cell.threads)

        trace_cache = shared_trace_cache() if trace_enabled() else None
        prepared: Dict[str, object] = {}
        traces: Dict[tuple, object] = {}

        def _prepared_for(benchmark: str):
            if benchmark not in prepared:
                prepared[benchmark] = prepare_workload(workloads[benchmark], system)
            return prepared[benchmark]

        for benchmark, thread_counts in needed_threads.items():
            workload = workloads[benchmark]
            if trace_cache is not None and getattr(workload, "trace_compilable", False):
                from ..sim.replay import compile_trace

                for nthreads in sorted(thread_counts):
                    trace_key = trace_cache.key(
                        resolved_system, workload, nthreads, txns_per_thread
                    )
                    trace = trace_cache.get(trace_key)
                    if trace is None:
                        trace = compile_trace(
                            _prepared_for(benchmark), nthreads, txns_per_thread
                        )
                        trace_cache.put(trace_key, trace)
                    traces[(benchmark, nthreads)] = trace
            else:
                _prepared_for(benchmark)

        if jobs > 1:
            from .parallel import run_cells_parallel

            # Ship compiled traces to the pool workers; a prepared
            # snapshot rides along only for benchmarks with interpreted
            # cells.
            traced_benchmarks = {benchmark for benchmark, _ in traces}
            shipping: Dict[str, object] = {
                benchmark: prepared[benchmark]
                for benchmark in needed_threads
                if benchmark not in traced_benchmarks
            }
            for (benchmark, nthreads), trace in traces.items():
                shipping[f"trace:{benchmark}@{nthreads}"] = (resolved_system, trace)
            fresh = run_cells_parallel(
                shipping,
                pending,
                txns_per_thread,
                seed,
                jobs,
                cell_timeout=cell_timeout,
                max_retries=max_retries,
                retry_backoff=retry_backoff,
                health=health,
                psan=psan_report is not None,
            )
        else:
            from .parallel import _run_cell_inline, _run_trace_inline

            fresh = {}
            for cell in pending:
                # Both inline runners recycle the finished machine's
                # NVRAM buffer, saving an allocate+zero of the full
                # device for the next cell.
                trace = traces.get((cell.benchmark, cell.threads))
                if trace is not None:
                    fresh[cell] = _run_trace_inline(
                        trace,
                        resolved_system,
                        cell,
                        txns_per_thread,
                        seed,
                        psan=psan_report is not None,
                    )
                else:
                    fresh[cell] = _run_cell_inline(
                        prepared[cell.benchmark],
                        cell,
                        txns_per_thread,
                        seed,
                        psan=psan_report is not None,
                    )
        for cell, stats in fresh.items():
            collected[cell] = stats
            if cache is not None:
                cache.put(keys[cell], stats)

    if psan_report is not None:
        for cell in order:
            report = getattr(collected[cell], "psan_report", None)
            if report is not None:
                report.policy = cell.policy.value
                psan_report.reports.append(report)

    return SweepResult({cell: collected[cell] for cell in order})
