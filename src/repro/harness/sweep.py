"""Configuration sweeps shared by the figure reproductions.

Figures 6-9 all read off the same matrix of runs (benchmark x thread
count x policy); :func:`run_micro_sweep` executes it once and the figure
functions extract their metric.  Only the stats snapshot is retained per
cell to keep memory bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..core.policy import MICROBENCH_POLICIES, Policy
from ..sim.config import SystemConfig
from ..sim.stats import MachineStats
from ..workloads import make_microbenchmark
from ..workloads.base import Workload
from .runner import RunConfig, prepare_workload, run_workload


@dataclass(frozen=True)
class SweepCell:
    """One point in the sweep matrix."""

    benchmark: str
    threads: int
    policy: Policy


@dataclass
class SweepResult:
    """Stats for every executed cell."""

    cells: dict = field(default_factory=dict)

    def stats(self, benchmark: str, threads: int, policy: Policy) -> MachineStats:
        """Stats for one cell (KeyError if the cell was not swept)."""
        return self.cells[SweepCell(benchmark, threads, policy)]

    def benchmarks(self) -> list:
        """Benchmark names present, in first-seen order."""
        seen = []
        for cell in self.cells:
            if cell.benchmark not in seen:
                seen.append(cell.benchmark)
        return seen

    def thread_counts(self) -> list:
        """Thread counts present, ascending."""
        return sorted({cell.threads for cell in self.cells})

    def policies(self) -> list:
        """Policies present, in paper order."""
        present = {cell.policy for cell in self.cells}
        return [policy for policy in MICROBENCH_POLICIES if policy in present]


def run_micro_sweep(
    benchmarks: Iterable[str] = ("hash", "rbtree", "sps", "btree", "ssca2"),
    threads: Iterable[int] = (1,),
    policies: Iterable[Policy] = MICROBENCH_POLICIES,
    txns_per_thread: int = 200,
    system: Optional[SystemConfig] = None,
    seed: int = 42,
    value_kind: str = "int",
    workload_factory: Optional[Callable[[str], Workload]] = None,
) -> SweepResult:
    """Run the benchmark x threads x policy matrix; returns all stats.

    ``workload_factory`` may override how a benchmark name becomes a
    workload (used by the WHISPER sweep and by tests).
    """
    result = SweepResult()
    for benchmark in benchmarks:
        if workload_factory is not None:
            workload = workload_factory(benchmark)
        else:
            workload = make_microbenchmark(benchmark, seed=seed, value_kind=value_kind)
        prepared = prepare_workload(workload, system)
        for nthreads in threads:
            for policy in policies:
                outcome = run_workload(
                    workload,
                    RunConfig(
                        policy=policy,
                        threads=nthreads,
                        txns_per_thread=txns_per_thread,
                        system=system,
                        seed=seed,
                    ),
                    prepared=prepared,
                )
                cell = SweepCell(benchmark, nthreads, policy)
                result.cells[cell] = outcome.stats
    return result
