"""Experiment harness.

* :mod:`~repro.harness.runner` — build a machine for a policy, set up a
  workload, interleave thread generators in core-clock order, collect
  stats;
* :mod:`~repro.harness.experiments` — one entry per paper table/figure;
* :mod:`~repro.harness.report` — fixed-width tables matching the paper's
  rows and series.
"""

from .cache import SweepCache, cache_enabled
from .parallel import SweepHealth
from .plots import figure_chart, grouped_bars, series_chart
from .runner import RunConfig, RunOutcome, run_workload
from .sweep import SweepCell, SweepResult, run_micro_sweep
from .validate import ValidationReport, validate
from .experiments import (
    figure6_throughput,
    figure7_ipc_instructions,
    figure8_energy,
    figure9_write_traffic,
    figure10_whisper,
    figure11a_log_buffer,
    figure11b_fwb_frequency,
    table1_hardware_overhead,
    table2_configuration,
    table3_microbenchmarks,
)

__all__ = [
    "RunConfig",
    "RunOutcome",
    "SweepCache",
    "SweepCell",
    "SweepHealth",
    "SweepResult",
    "cache_enabled",
    "run_micro_sweep",
    "run_workload",
    "validate",
    "ValidationReport",
    "figure_chart",
    "grouped_bars",
    "series_chart",
    "figure6_throughput",
    "figure7_ipc_instructions",
    "figure8_energy",
    "figure9_write_traffic",
    "figure10_whisper",
    "figure11a_log_buffer",
    "figure11b_fwb_frequency",
    "table1_hardware_overhead",
    "table2_configuration",
    "table3_microbenchmarks",
]
