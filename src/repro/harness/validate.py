"""One-shot reproduction validation.

:func:`validate` runs a compact sweep and checks every headline *shape*
claim of the paper against it, returning a structured report.  It is the
programmatic answer to "did this reproduction actually reproduce?" and
backs the ``python -m repro validate`` command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.design import CANONICAL_DESIGNS, FWB, HWL, NON_PERS, REDO_CLWB, UNDO_CLWB
from ..core.fwb import required_scan_interval
from ..sim.config import SystemConfig
from .experiments import summarize_fwb_gain
from .report import format_table
from .sweep import SweepResult, run_micro_sweep


@dataclass
class Check:
    """One validated claim."""

    name: str
    claim: str
    measured: str
    passed: bool


@dataclass
class ValidationReport:
    """All checks plus an overall verdict."""

    checks: list = field(default_factory=list)

    def add(self, name: str, claim: str, measured, passed: bool) -> None:
        """Record one check outcome."""
        self.checks.append(Check(name, claim, str(measured), bool(passed)))

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(check.passed for check in self.checks)

    @property
    def rendered(self) -> str:
        """Fixed-width report."""
        rows = [
            [check.name, check.claim, check.measured, "ok" if check.passed else "FAIL"]
            for check in self.checks
        ]
        verdict = "ALL CHECKS PASSED" if self.passed else "SOME CHECKS FAILED"
        table = format_table(
            "Reproduction validation", ["check", "paper claim", "measured", "verdict"], rows
        )
        return f"{table}\n\n{verdict}"


def validate(
    sweep: Optional[SweepResult] = None,
    threads: int = 1,
    txns_per_thread: int = 250,
    jobs: int = 1,
    cache=None,
) -> ValidationReport:
    """Run the headline shape checks; returns the report.

    ``jobs`` and ``cache`` (a :class:`~repro.harness.cache.SweepCache`)
    are forwarded to :func:`run_micro_sweep` when no sweep is supplied.
    """
    if sweep is None:
        sweep = run_micro_sweep(
            threads=(threads,),
            txns_per_thread=txns_per_thread,
            jobs=jobs,
            cache=cache,
        )
    report = ValidationReport()

    gain = summarize_fwb_gain(sweep, threads)
    report.add(
        "fig6/fwb-gain",
        "fwb ~1.86x the better software-clwb design",
        f"{gain:.2f}x",
        1.2 < gain < 3.0,
    )

    orderings_ok = True
    for benchmark in sweep.benchmarks():
        stats = {
            policy: sweep.stats(benchmark, threads, policy) for policy in CANONICAL_DESIGNS
        }
        best_sw = max(
            stats[REDO_CLWB].throughput, stats[UNDO_CLWB].throughput
        )
        orderings_ok &= stats[NON_PERS].throughput >= stats[FWB].throughput * 0.95
        orderings_ok &= stats[FWB].throughput > best_sw
        orderings_ok &= stats[HWL].throughput > min(
            stats[REDO_CLWB].throughput, stats[UNDO_CLWB].throughput
        )
    report.add(
        "fig6/ordering",
        "non-pers >= fwb > software-clwb; hwl above the worst software design",
        "holds on every benchmark" if orderings_ok else "violated",
        orderings_ok,
    )

    instr_ok = True
    worst_sw = 0.0
    for benchmark in sweep.benchmarks():
        non_pers = sweep.stats(benchmark, threads, NON_PERS).instructions
        sw = sweep.stats(benchmark, threads, UNDO_CLWB).instructions
        hw = sweep.stats(benchmark, threads, FWB).instructions
        worst_sw = max(worst_sw, sw / non_pers)
        # Per-benchmark floors (compute-heavy ssca2 dilutes software
        # logging the most — the paper's reason it gains least); the
        # "up to ~2.5x" claim is checked on the worst case below.
        instr_ok &= sw > 1.5 * non_pers
        instr_ok &= hw < 1.7 * non_pers
    instr_ok &= worst_sw > 2.0
    report.add(
        "fig7/instructions",
        "software logging up to ~2.5x non-pers instructions; hardware ~1.3x",
        f"software worst {worst_sw:.2f}x",
        instr_ok,
    )

    energy_ok = all(
        sweep.stats(b, threads, FWB).memory_dynamic_energy_pj
        <= sweep.stats(b, threads, UNDO_CLWB).memory_dynamic_energy_pj
        for b in sweep.benchmarks()
    )
    report.add(
        "fig8/energy",
        "fwb at or below the software-clwb designs' memory energy",
        "holds" if energy_ok else "violated",
        energy_ok,
    )

    traffic_ok = all(
        sweep.stats(b, threads, FWB).nvram_write_bytes
        <= sweep.stats(b, threads, UNDO_CLWB).nvram_write_bytes
        for b in sweep.benchmarks()
    )
    report.add(
        "fig9/traffic",
        "fwb writes no more NVRAM than the forced-write-back designs",
        "holds" if traffic_ok else "violated",
        traffic_ok,
    )

    period = required_scan_interval(SystemConfig())
    report.add(
        "fig11b/interval",
        "64K-entry (4 MB) log needs a scan only every ~3M cycles",
        f"{period:,.0f} cycles",
        2e6 < period < 4e6,
    )
    return report
