"""One reproduction entry per table and figure of the paper.

Every function returns an :class:`ExperimentResult` whose ``rendered``
field is a text table with the same rows/series as the paper's figure,
and whose ``data`` field is the structured form tests and benchmarks
assert against.  Figures 6-9 share one sweep (pass it in to avoid
re-running); Figure 10 runs the WHISPER-like kernels; Figure 11 sweeps
log-buffer size and log size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.design import (
    CANONICAL_DESIGNS,
    FWB,
    NON_PERS,
    REDO_CLWB,
    UNDO_CLWB,
    UNSAFE_BASE,
)
from ..core.fwb import required_scan_frequency, required_scan_interval
from ..sim.config import SystemConfig
from ..workloads import MICROBENCHMARKS
from ..workloads.hashtable import HashTableWorkload
from ..workloads.whisper import WHISPER_KERNELS, make_whisper_kernel
from .report import bench_label, format_table, geomean, reduction, speedup
from .runner import RunConfig, default_experiment_config, run_workload
from .sweep import SweepResult, run_micro_sweep


@dataclass
class ExperimentResult:
    """Structured + rendered reproduction of one table/figure."""

    name: str
    headers: list
    rows: list
    data: dict = field(default_factory=dict)

    @property
    def rendered(self) -> str:
        """Fixed-width text rendering."""
        return format_table(self.name, self.headers, self.rows)


def _ensure_sweep(sweep: Optional[SweepResult], **sweep_kwargs) -> SweepResult:
    if sweep is not None:
        return sweep
    return run_micro_sweep(**sweep_kwargs)


def _normalized_rows(sweep: SweepResult, metric, invert: bool = False) -> tuple:
    """Rows of metric(policy)/metric(unsafe-base) for every (bench, threads)."""
    policies = sweep.policies()
    headers = ["benchmark"] + [policy.value for policy in policies]
    rows = []
    data = {}
    for benchmark in sweep.benchmarks():
        for threads in sweep.thread_counts():
            base = metric(sweep.stats(benchmark, threads, UNSAFE_BASE))
            row = [bench_label(benchmark, threads)]
            cell = {}
            for policy in policies:
                value = metric(sweep.stats(benchmark, threads, policy))
                if invert:
                    # A design with zero cost has infinite "reduction"
                    # (non-pers writes nothing in short runs).
                    ratio = float("inf") if value == 0 else reduction(base, value)
                else:
                    ratio = speedup(value, base)
                row.append(ratio)
                cell[policy] = ratio
            rows.append(row)
            data[(benchmark, threads)] = cell
    return headers, rows, data


# ----------------------------------------------------------------------
# Figure 6: transaction throughput speedup (normalized to unsafe-base)
# ----------------------------------------------------------------------
def figure6_throughput(sweep: Optional[SweepResult] = None, **sweep_kwargs) -> ExperimentResult:
    """Transaction throughput speedup, higher is better (Figure 6)."""
    sweep = _ensure_sweep(sweep, **sweep_kwargs)
    headers, rows, data = _normalized_rows(sweep, lambda s: s.throughput)
    return ExperimentResult("Figure 6: transaction throughput speedup "
                            "(normalized to unsafe-base)", headers, rows, data)


# ----------------------------------------------------------------------
# Figure 7: IPC speedup and instruction count (normalized to unsafe-base)
# ----------------------------------------------------------------------
def figure7_ipc_instructions(
    sweep: Optional[SweepResult] = None, **sweep_kwargs
) -> ExperimentResult:
    """IPC speedup (higher better) and instruction count (lower better)."""
    sweep = _ensure_sweep(sweep, **sweep_kwargs)
    ipc_headers, ipc_rows, ipc_data = _normalized_rows(sweep, lambda s: s.ipc)
    _, instr_rows, instr_data = _normalized_rows(sweep, lambda s: s.instructions)
    headers = ["benchmark", "metric"] + ipc_headers[1:]
    rows = []
    for ipc_row, instr_row in zip(ipc_rows, instr_rows):
        rows.append([ipc_row[0], "ipc"] + ipc_row[1:])
        rows.append([instr_row[0], "instructions"] + instr_row[1:])
    return ExperimentResult(
        "Figure 7: IPC speedup (higher better) and instruction count "
        "(lower better), normalized to unsafe-base",
        headers,
        rows,
        {"ipc": ipc_data, "instructions": instr_data},
    )


# ----------------------------------------------------------------------
# Figure 8: dynamic memory energy reduction
# ----------------------------------------------------------------------
def figure8_energy(sweep: Optional[SweepResult] = None, **sweep_kwargs) -> ExperimentResult:
    """Dynamic memory energy reduction vs unsafe-base (higher better)."""
    sweep = _ensure_sweep(sweep, **sweep_kwargs)
    headers, rows, data = _normalized_rows(
        sweep, lambda s: s.memory_dynamic_energy_pj, invert=True
    )
    return ExperimentResult(
        "Figure 8: dynamic memory energy reduction "
        "(normalized to unsafe-base, higher is better)",
        headers,
        rows,
        data,
    )


# ----------------------------------------------------------------------
# Figure 9: NVRAM write-traffic reduction
# ----------------------------------------------------------------------
def figure9_write_traffic(
    sweep: Optional[SweepResult] = None, **sweep_kwargs
) -> ExperimentResult:
    """Memory write-traffic reduction vs unsafe-base (higher better)."""
    sweep = _ensure_sweep(sweep, **sweep_kwargs)
    headers, rows, data = _normalized_rows(
        sweep, lambda s: s.nvram_write_bytes, invert=True
    )
    return ExperimentResult(
        "Figure 9: memory write traffic reduction "
        "(normalized to unsafe-base, higher is better)",
        headers,
        rows,
        data,
    )


# ----------------------------------------------------------------------
# Figure 10: WHISPER results
# ----------------------------------------------------------------------
WHISPER_METRICS = ("ipc", "memory_energy", "throughput", "nvram_writes")


def figure10_whisper(
    kernels: Iterable[str] = tuple(WHISPER_KERNELS),
    policies: Iterable = (
        NON_PERS,
        UNSAFE_BASE,
        REDO_CLWB,
        UNDO_CLWB,
        FWB,
    ),
    threads: int = 1,
    txns_per_thread: int = 150,
    system: Optional[SystemConfig] = None,
    seed: int = 42,
    jobs: int = 1,
    cache=None,
) -> ExperimentResult:
    """WHISPER kernels: IPC, memory energy, throughput, and NVRAM write
    traffic, normalized to unsafe-base (Figure 10)."""
    sweep = run_micro_sweep(
        benchmarks=kernels,
        threads=(threads,),
        policies=policies,
        txns_per_thread=txns_per_thread,
        system=system,
        seed=seed,
        workload_factory=lambda name: make_whisper_kernel(name, seed=seed),
        jobs=jobs,
        cache=cache,
    )
    headers = ["kernel", "policy", "ipc", "memory_energy_red", "throughput", "write_red"]
    rows = []
    data = {}
    for kernel in sweep.benchmarks():
        base = sweep.stats(kernel, threads, UNSAFE_BASE)
        for policy in sweep.policies():
            stats = sweep.stats(kernel, threads, policy)
            cell = {
                "ipc": speedup(stats.ipc, base.ipc),
                "memory_energy": reduction(
                    base.memory_dynamic_energy_pj, stats.memory_dynamic_energy_pj
                ),
                "throughput": speedup(stats.throughput, base.throughput),
                "nvram_writes": reduction(
                    max(base.nvram_write_bytes, 1), max(stats.nvram_write_bytes, 1)
                ),
            }
            data[(kernel, policy)] = cell
            rows.append(
                [
                    kernel,
                    policy.value,
                    cell["ipc"],
                    cell["memory_energy"],
                    cell["throughput"],
                    cell["nvram_writes"],
                ]
            )
    return ExperimentResult(
        "Figure 10: WHISPER results (normalized to unsafe-base)", headers, rows, data
    )


# ----------------------------------------------------------------------
# Figure 11(a): throughput vs log buffer size
# ----------------------------------------------------------------------
def figure11a_log_buffer(
    sizes: Iterable[int] = (0, 8, 15, 16, 32, 64, 128, 256),
    txns_per_thread: int = 300,
    system: Optional[SystemConfig] = None,
    seed: int = 42,
    workload_factory=None,
) -> ExperimentResult:
    """System throughput of the hash benchmark across log-buffer sizes.

    Sizes above the persistence bound are run with infinite NVRAM write
    bandwidth, exactly as the paper footnotes for its 128/256 points.
    """
    base_system = system or default_experiment_config()
    bound = base_system.max_persistent_log_buffer_entries()
    if workload_factory is None:
        workload_factory = lambda: HashTableWorkload(seed=seed)  # noqa: E731
    throughputs = {}
    for size in sizes:
        logging = base_system.logging
        cfg = base_system.scaled(
            logging=_replace(logging, log_buffer_entries=size),
            nvram=_replace(base_system.nvram, infinite_write_bandwidth=size > 64),
        )
        workload = workload_factory()
        outcome = run_workload(
            workload,
            RunConfig(
                policy=FWB,
                threads=1,
                txns_per_thread=txns_per_thread,
                system=cfg,
                seed=seed,
            ),
        )
        throughputs[size] = outcome.stats.throughput
    baseline = throughputs[min(throughputs)]
    headers = ["log_buffer_entries", "throughput", "speedup_vs_no_buffer", "persistent"]
    rows = []
    data = {}
    for size in sizes:
        ratio = speedup(throughputs[size], baseline)
        persistent = "yes" if size <= bound else "no (needs >bound)"
        rows.append([size, throughputs[size], ratio, persistent])
        data[size] = ratio
    return ExperimentResult(
        f"Figure 11(a): hash throughput vs log buffer size "
        f"(persistence bound = {bound} entries)",
        headers,
        rows,
        data,
    )


# ----------------------------------------------------------------------
# Figure 11(b): required FWB frequency vs log size
# ----------------------------------------------------------------------
def figure11b_fwb_frequency(
    log_sizes: Iterable[int] = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536),
    system: Optional[SystemConfig] = None,
) -> ExperimentResult:
    """Required cache force-write-back frequency per log size.

    The paper's running example: a 64K-entry (4 MB) log needs a scan only
    every ~3M cycles.
    """
    base_system = system or SystemConfig()
    headers = ["log_entries", "log_bytes", "scan_interval_cycles", "scans_per_cycle"]
    rows = []
    data = {}
    for entries in log_sizes:
        cfg = base_system.scaled(
            logging=_replace(base_system.logging, log_entries=entries)
        )
        interval = required_scan_interval(cfg)
        frequency = required_scan_frequency(cfg)
        rows.append([entries, entries * cfg.logging.log_entry_size, interval, f"{frequency:.2e}"])
        data[entries] = frequency
    return ExperimentResult(
        "Figure 11(b): required FWB frequency vs NVRAM log size", headers, rows, data
    )


# ----------------------------------------------------------------------
# Table I: hardware overhead
# ----------------------------------------------------------------------
def table1_hardware_overhead(system: Optional[SystemConfig] = None) -> ExperimentResult:
    """Major hardware state added by the design (Table I)."""
    cfg = system or SystemConfig()
    log_buffer_bytes = cfg.logging.log_buffer_entries * cfg.logging.log_entry_size
    l1_lines = cfg.l1.num_lines * cfg.num_cores
    llc_lines = cfg.llc.num_lines
    fwb_bits_bytes = (l1_lines + llc_lines + 7) // 8
    rows = [
        ["Transaction ID register", "flip-flops", 1],
        ["Log head pointer register", "flip-flops", 8],
        ["Log tail pointer register", "flip-flops", 8],
        ["Log buffer (optional)", "SRAM", log_buffer_bytes],
        ["Fwb tag bit", "SRAM", fwb_bits_bytes],
    ]
    data = {row[0]: row[2] for row in rows}
    return ExperimentResult(
        "Table I: summary of major hardware overhead (bytes)",
        ["mechanism", "logic type", "size_bytes"],
        rows,
        data,
    )


# ----------------------------------------------------------------------
# Table II: processor and memory configuration
# ----------------------------------------------------------------------
def table2_configuration(system: Optional[SystemConfig] = None) -> ExperimentResult:
    """The simulated machine configuration (Table II)."""
    cfg = system or SystemConfig()
    ghz = cfg.core.clock_ghz
    rows = [
        ["Cores", f"{cfg.num_cores} cores, {ghz} GHz"],
        [
            "L1 cache",
            f"{cfg.l1.size_bytes // 1024} KB, {cfg.l1.ways}-way, "
            f"{cfg.l1.line_size} B lines, {cfg.l1.latency_ns} ns",
        ],
        [
            "LLC",
            f"{cfg.llc.size_bytes // (1024 * 1024)} MB, {cfg.llc.ways}-way, "
            f"{cfg.llc.line_size} B lines, {cfg.llc.latency_ns} ns",
        ],
        [
            "Memory controller",
            f"{cfg.memctrl.read_queue_entries}-/"
            f"{cfg.memctrl.write_queue_entries}-entry read/write queues",
        ],
        [
            "NVRAM DIMM",
            f"{cfg.nvram.size_bytes // (1024 * 1024)} MB modelled, "
            f"{cfg.nvram.num_banks} banks, {cfg.nvram.row_bytes // 1024} KB rows, "
            f"{cfg.nvram.row_hit_ns} ns row hit, "
            f"{cfg.nvram.read_conflict_ns}/{cfg.nvram.write_conflict_ns} ns "
            "read/write conflict",
        ],
        [
            "NVRAM energy",
            "row buffer 0.93/1.02 pJ/bit read/write, "
            "array 2.47/16.82 pJ/bit read/write",
        ],
    ]
    return ExperimentResult(
        "Table II: processor and memory configuration", ["component", "value"], rows
    )


# ----------------------------------------------------------------------
# Table III: microbenchmarks
# ----------------------------------------------------------------------
def table3_microbenchmarks() -> ExperimentResult:
    """The evaluated microbenchmarks (Table III)."""
    rows = []
    for name, factory in MICROBENCHMARKS.items():
        workload = factory()
        rows.append([name, workload.paper_footprint, workload.description])
    return ExperimentResult(
        "Table III: evaluated microbenchmarks",
        ["name", "paper footprint", "description"],
        rows,
    )


# ----------------------------------------------------------------------
def summarize_fwb_gain(sweep: SweepResult, threads: int) -> float:
    """Geometric-mean fwb gain over the better software-clwb design.

    The paper's headline: 1.86x with one thread, 1.75x with eight.
    """
    gains = []
    for benchmark in sweep.benchmarks():
        fwb = sweep.stats(benchmark, threads, FWB).throughput
        best_sw = max(
            sweep.stats(benchmark, threads, REDO_CLWB).throughput,
            sweep.stats(benchmark, threads, UNDO_CLWB).throughput,
        )
        gains.append(speedup(fwb, best_sw))
    return geomean(gains)


def _replace(config, **changes):
    from dataclasses import replace

    return replace(config, **changes)


_ = CANONICAL_DESIGNS  # the paper's design set; kept for discoverability
