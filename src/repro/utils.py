"""Small shared helpers: alignment math, integer packing, validation."""

from __future__ import annotations

from .errors import AddressError, ConfigError

WORD_SIZE = 8
"""Machine word size in bytes (64-bit machine, Section IV-E of the paper)."""


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def require_power_of_two(value: int, what: str) -> int:
    """Validate that ``value`` is a power of two, returning it unchanged."""
    if not is_power_of_two(value):
        raise ConfigError(f"{what} must be a power of two, got {value}")
    return value


def align_down(addr: int, alignment: int) -> int:
    """Round ``addr`` down to a multiple of ``alignment`` (a power of two)."""
    return addr & ~(alignment - 1)


def align_up(addr: int, alignment: int) -> int:
    """Round ``addr`` up to a multiple of ``alignment`` (a power of two)."""
    return (addr + alignment - 1) & ~(alignment - 1)


def line_address(addr: int, line_size: int) -> int:
    """Return the cache-line base address containing ``addr``."""
    return addr & ~(line_size - 1)


def split_words(addr: int, data: bytes) -> list[tuple[int, bytes]]:
    """Split a write into word-sized (or smaller) pieces.

    Hardware logging operates at word granularity (one log record per word,
    Section III-B).  A write that is not word-aligned or not a whole number
    of words is split so that no piece crosses a word boundary.

    Returns a list of ``(address, piece_bytes)`` tuples in address order.
    """
    pieces: list[tuple[int, bytes]] = []
    offset = 0
    remaining = len(data)
    while remaining > 0:
        at = addr + offset
        word_end = align_down(at, WORD_SIZE) + WORD_SIZE
        take = min(remaining, word_end - at)
        pieces.append((at, bytes(data[offset:offset + take])))
        offset += take
        remaining -= take
    return pieces


def check_range(addr: int, size: int, limit: int, what: str = "access") -> None:
    """Raise :class:`AddressError` unless ``[addr, addr+size)`` fits ``limit``."""
    if addr < 0 or size < 0 or addr + size > limit:
        raise AddressError(
            f"{what} out of range: addr={addr:#x} size={size} limit={limit:#x}"
        )


def int_to_word(value: int) -> bytes:
    """Encode an unsigned integer as a little-endian machine word."""
    return int(value).to_bytes(WORD_SIZE, "little")


def word_to_int(data: bytes) -> int:
    """Decode a little-endian machine word (or shorter piece) to an int."""
    return int.from_bytes(data, "little")


def ns_to_cycles(nanoseconds: float, clock_ghz: float) -> int:
    """Convert a latency in nanoseconds to (rounded) core clock cycles."""
    return max(1, round(nanoseconds * clock_ghz))
