"""Durable-record collection and the deterministic shipping timeline.

Two halves:

* :class:`LogStreamCollector` taps a traced primary run and produces the
  ordered stream of *durable* log records — each ``log_place`` event
  paired with the NVRAM completion that made it durable (hardware
  records carry their release time; software records resolve against the
  ``nvram_write`` covering their log entry, the same pairing psan uses).
  Sequence numbers follow durability order, so "the primary crashed at
  cycle T" is exactly "truncate the stream at T".

* :class:`ShipTimeline` turns a stream into per-link shipping schedules:
  records are cut into batches (size- or COMMIT-bounded), each link
  ships asynchronously under a bounded in-flight window with per-batch
  ack tracking, and link faults (dropped / duplicated / delayed / torn
  batches) and node crashes reshape the schedule deterministically.  The
  timeline also derives the *cluster-commit* overlay — a transaction is
  cluster-committed once every replica acked the batch carrying its
  COMMIT record and the primary lived to see the quorum — and emits the
  whole thing as a trace-event stream
  (``ship``/``repl_deliver``/``repl_append``/``repl_ack``/``dist_commit``)
  for the replication-ordering sanitizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.trace import TraceEvent, Tracer
from .config import DistConfig


@dataclass
class ShippedRecord:
    """One durable log record as it travels the interconnect."""

    seq: int
    kind: str  # RecordKind name: BEGIN / DATA / COMMIT
    txid: int  # physical transaction id carried in the record
    tid: int
    addr: Optional[int]  # heap address (DATA records only)
    undo: bytes
    redo: bytes
    place_time: float
    durable: float


@dataclass
class LogStream:
    """The primary's durable log records in durability (= seq) order."""

    records: list
    entry_size: int
    reported: list
    """``(tid, reported_durable, emit_time)`` per ``commit_reported``
    event, in emission order — index ``i`` pairs with the golden model's
    ``commits[i]`` (the runtime records the golden entry immediately
    after emitting the event)."""

    undrained: int = 0
    """Records placed but never durable by end of run (not shippable)."""

    def truncated(self, crash_time: Optional[float]) -> list:
        """Records durable by ``crash_time`` (all of them when None)."""
        if crash_time is None:
            return list(self.records)
        return [rec for rec in self.records if rec.durable <= crash_time]

    def commit_map(self) -> dict:
        """``(tid, ordinal) -> (seq, physical_txid, golden_index, reported)``.

        ``ordinal`` is the per-thread commit counter (k-th COMMIT record
        of ``tid`` in stream order matches the k-th ``commit_reported``
        for ``tid``); ``golden_index`` indexes the golden model's commit
        list; ``reported`` is the durability the runtime reported.
        """
        reported_by_tid: dict = {}
        reported_index: dict = {}
        for index, (tid, durable, _time) in enumerate(self.reported):
            ordinal = reported_by_tid.get(tid, 0)
            reported_by_tid[tid] = ordinal + 1
            reported_index[(tid, ordinal)] = (index, durable)
        ordinals: dict = {}
        mapping: dict = {}
        for rec in self.records:
            if rec.kind != "COMMIT":
                continue
            ordinal = ordinals.get(rec.tid, 0)
            ordinals[rec.tid] = ordinal + 1
            entry = reported_index.get((rec.tid, ordinal))
            if entry is None:
                continue  # commit record durable but report never emitted
            index, durable = entry
            mapping[(rec.tid, ordinal)] = (rec.seq, rec.txid, index, durable)
        return mapping


class LogStreamCollector:
    """Subscribe to a machine's tracer; collect its durable log records."""

    def __init__(self, machine, tracer: Optional[Tracer] = None) -> None:
        if tracer is None:
            tracer = machine.tracer
        if tracer is None:
            tracer = Tracer(capacity=1024)
            machine.tracer = tracer
        self.tracer = tracer
        self._entry_size = machine.log.entry_size
        self._regions = tuple(
            (log.base, log.num_entries * log.entry_size) for log in machine.logs
        )
        self._placed: list = []  # (place_order, ShippedRecord)
        self._place_count = 0
        self._next_seq = 0  # continues across incremental harvests
        self._pending_by_entry: dict = {}
        self._reported: list = []
        tracer.subscribe(self._on_event)

    # ------------------------------------------------------------------
    def _on_event(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == "log_place":
            self._on_log_place(event)
        elif kind == "nvram_write":
            self._on_nvram_write(event)
        elif kind == "commit_reported":
            detail = event.detail
            self._reported.append((detail["tid"], detail["durable"], event.time))

    def _on_log_place(self, event: TraceEvent) -> None:
        d = event.detail
        rec = ShippedRecord(
            seq=-1,
            kind=d["kind"],
            txid=d["txid"],
            tid=d["tid"],
            addr=d["addr"],
            undo=bytes.fromhex(d["undo"]),
            redo=bytes.fromhex(d["redo"]),
            place_time=event.time,
            durable=d["release"] if d["release"] is not None else -1.0,
        )
        self._placed.append((self._place_count, rec))
        self._place_count += 1
        if d["release"] is None:
            # Software record: durability resolves at the NVRAM write
            # covering its log entry (uncacheable store via the WCB).
            self._pending_by_entry[d["entry_addr"]] = rec

    def _on_nvram_write(self, event: TraceEvent) -> None:
        d = event.detail
        addr = d["addr"]
        for base, size in self._regions:
            if base <= addr < base + size:
                break
        else:
            return
        entry = addr - (addr % self._entry_size)
        end = addr + d["size"]
        completion = d["completion"]
        while entry < end:
            rec = self._pending_by_entry.get(entry)
            if rec is not None and rec.durable < 0:
                rec.durable = completion
            entry += self._entry_size

    # ------------------------------------------------------------------
    def harvest(self, before: float) -> list:
        """Extract records durable strictly before ``before`` (mid-run).

        The incremental shipping API: once every thread of the traced
        machine has been stepped to cycle ``before``, any record still
        pending durability will resolve at or after ``before``, so the
        harvested prefix is final — its durability order can never be
        perturbed by later execution.  Sequence numbers continue across
        harvests (and into :meth:`finish`), giving the same global
        durability order a single end-of-run collection would have
        assigned.
        """
        ripe = [
            (rec.durable, order, rec)
            for order, rec in self._placed
            if 0 <= rec.durable < before
        ]
        ripe.sort(key=lambda item: (item[0], item[1]))
        taken = {id(rec) for _d, _o, rec in ripe}
        self._placed = [
            (order, rec) for order, rec in self._placed if id(rec) not in taken
        ]
        records = []
        for _durable, _order, rec in ripe:
            rec.seq = self._next_seq
            self._next_seq += 1
            records.append(rec)
        return records

    def finish(self) -> LogStream:
        """Stop listening; return the durability-ordered stream.

        After incremental :meth:`harvest` calls, only the leftover
        records appear here, numbered continuing from the harvested
        prefix.
        """
        self.tracer.unsubscribe(self._on_event)
        undrained = sum(1 for _order, rec in self._placed if rec.durable < 0)
        durable = [
            (rec.durable, order, rec)
            for order, rec in self._placed
            if rec.durable >= 0
        ]
        durable.sort(key=lambda item: (item[0], item[1]))
        records = []
        for _durable, _order, rec in durable:
            rec.seq = self._next_seq
            self._next_seq += 1
            records.append(rec)
        return LogStream(
            records=records,
            entry_size=self._entry_size,
            reported=self._reported,
            undrained=undrained,
        )


# ----------------------------------------------------------------------
# Link faults
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkFault:
    """One adversarial event on a primary->replica link.

    ``kind`` is one of:

    * ``drop`` — the batch's first transmission is lost; the primary
      re-ships it after the retransmit timeout.
    * ``dup`` — the batch is delivered twice; the replica must
      deduplicate by sequence number (the second delivery is re-acked
      but not re-applied).
    * ``delay`` — delivery is late by ``delay`` cycles, possibly
      arriving after later batches; the replica buffers successors and
      still appends in sequence order.
    * ``torn`` — the batch lands partially: ``keep_records`` records
      become durable, the next record's ring entry is torn after
      ``keep_bytes`` bytes, and the link goes dark (no ack, no further
      shipments) — the crash-during-log-ship case.
    """

    kind: str
    replica: int
    batch: int
    delay: float = 0.0
    keep_records: int = 0
    keep_bytes: int = 24

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "dup", "delay", "torn"):
            raise ValueError(f"unknown link fault kind: {self.kind!r}")

    @property
    def label(self) -> str:
        extra = ""
        if self.kind == "delay":
            extra = f"+{self.delay:.0f}"
        elif self.kind == "torn":
            extra = f"@{self.keep_records}+{self.keep_bytes}B"
        return f"{self.kind}(r{self.replica},b{self.batch}){extra}"


@dataclass
class _Batch:
    index: int
    records: list  # ShippedRecord, contiguous seqs
    ready: float  # all records durable on the primary

    @property
    def start(self) -> int:
        return self.records[0].seq

    @property
    def count(self) -> int:
        return len(self.records)


@dataclass
class _LinkState:
    appends: list = field(default_factory=list)  # (seq, durable_time)
    torn: Optional[tuple] = None  # (seq, keep_bytes, time)
    acks: dict = field(default_factory=dict)  # batch -> (send, arrival)
    frontier: int = 0  # contiguous fully-durable records from seq 0
    dead_after: Optional[float] = None


class ShipTimeline:
    """Deterministic shipping schedule for one primary run.

    Pure function of ``(stream, config, crash/fault inputs)`` — no
    randomness, no wall clock — so every campaign point is reproducible
    and the timeline can be recomputed per point from one traced run.

    ``unsafe_early_ack`` is the deliberate protocol-violation probe: the
    replica acks a batch at delivery time, before its records are
    durable in the ring, which the ``repl-ack-durable`` sanitizer rule
    must flag.
    """

    def __init__(
        self,
        stream: LogStream,
        config: DistConfig,
        *,
        primary_crash: Optional[float] = None,
        replica_crashes: Optional[dict] = None,
        faults: tuple = (),
        unsafe_early_ack: bool = False,
    ) -> None:
        config.validate()
        self.stream = stream
        self.config = config
        self.primary_crash = primary_crash
        self.replica_crashes = dict(replica_crashes or {})
        self.faults = tuple(faults)
        self.unsafe_early_ack = unsafe_early_ack
        self.events: list = []
        self.links: dict = {}
        self.cluster_committed: dict = {}  # (tid, ordinal) -> commit time
        self.batches: list = []
        self._compute()

    # ------------------------------------------------------------------
    def _cut_batches(self, records: list) -> list:
        """Cut the (possibly truncated) stream into shipment batches.

        The trailing batch is shipped only if the normal cut rule closed
        it (full, or ending in a COMMIT record); a batch still
        accumulating when the primary died was never handed to the NIC.
        """
        batches: list = []
        current: list = []
        closed = True
        for rec in records:
            current.append(rec)
            closed = (
                len(current) >= self.config.batch_records or rec.kind == "COMMIT"
            )
            if closed:
                batches.append(
                    _Batch(
                        index=len(batches),
                        records=current,
                        ready=max(piece.durable for piece in current),
                    )
                )
                current = []
        if current and self.primary_crash is None:
            # End of a complete run: everything durable gets flushed.
            batches.append(
                _Batch(
                    index=len(batches),
                    records=current,
                    ready=max(piece.durable for piece in current),
                )
            )
        return batches

    def _batch_bytes(self, batch: _Batch) -> float:
        return (
            self.config.batch_header_bytes
            + batch.count * self.stream.entry_size
        )

    # ------------------------------------------------------------------
    def _compute(self) -> None:
        link = self.config.link
        crash = self.primary_crash
        records = self.stream.truncated(crash)
        self.batches = self._cut_batches(records)
        xmit_base = 1.0 / link.bandwidth_bytes_per_cycle
        fault_map = {
            (fault.replica, fault.batch): fault for fault in self.faults
        }
        for replica in self.config.replica_ids:
            state = _LinkState()
            self.links[replica] = state
            replica_crash = self.replica_crashes.get(replica)
            link_free = 0.0
            applied_end = 0.0
            contiguous = True
            for batch in self.batches:
                fault = fault_map.get((replica, batch.index))
                window_gate = 0.0
                behind = batch.index - self.config.window_batches
                if behind >= 0:
                    gate_ack = state.acks.get(behind)
                    if gate_ack is None:
                        break  # window full forever (unacked batch ahead)
                    window_gate = gate_ack[1]
                send = max(batch.ready, link_free, window_gate)
                if crash is not None and send > crash:
                    break  # the primary died before shipping this batch
                if state.dead_after is not None:
                    break  # link went dark (torn batch)
                xmit = self._batch_bytes(batch) * xmit_base
                attempt = 1
                if fault is not None and fault.kind == "drop":
                    # First transmission lost; the primary notices the
                    # missing ack at the timeout and re-ships.
                    self._emit(
                        send, "ship", replica=replica, batch=batch.index,
                        start_seq=batch.start, n=batch.count,
                        nbytes=int(self._batch_bytes(batch)), attempt=1,
                        lost=True,
                    )
                    send = send + link.retransmit_timeout
                    if crash is not None and send > crash:
                        break  # died before the retransmit
                    attempt = 2
                link_free = send + xmit
                arrival = send + link.latency + xmit
                self._emit(
                    send, "ship", replica=replica, batch=batch.index,
                    start_seq=batch.start, n=batch.count,
                    nbytes=int(self._batch_bytes(batch)), attempt=attempt,
                    lost=False,
                )
                if fault is not None and fault.kind == "delay":
                    arrival += fault.delay
                if replica_crash is not None and arrival > replica_crash:
                    contiguous = False  # replica dead; nothing lands
                    continue
                self._emit(
                    arrival, "repl_deliver", replica=replica,
                    batch=batch.index, start_seq=batch.start, n=batch.count,
                    duplicate=False,
                )
                # Append in sequence order: a delayed predecessor pushes
                # this batch's append start out via applied_end, which is
                # exactly the replica buffering successors until the gap
                # fills.
                append_start = max(arrival, applied_end)
                appended_all = True
                keep = batch.count
                if fault is not None and fault.kind == "torn":
                    keep = min(fault.keep_records, batch.count)
                for offset, rec in enumerate(batch.records):
                    if offset >= keep:
                        appended_all = False
                        if fault is not None and fault.kind == "torn":
                            tear_time = append_start + (
                                (offset + 1) * link.append_cycles_per_record
                            )
                            state.torn = (rec.seq, fault.keep_bytes, tear_time)
                            self._emit(
                                tear_time, "repl_append", replica=replica,
                                seq=rec.seq, slot=rec.seq, torn=True,
                                record_kind=rec.kind,
                            )
                        break
                    t_durable = append_start + (
                        (offset + 1) * link.append_cycles_per_record
                    )
                    if replica_crash is not None and t_durable > replica_crash:
                        appended_all = False
                        break
                    state.appends.append((rec.seq, t_durable))
                    if contiguous and rec.seq == state.frontier:
                        state.frontier += 1
                    self._emit(
                        t_durable, "repl_append", replica=replica,
                        seq=rec.seq, slot=rec.seq, torn=False,
                        record_kind=rec.kind,
                    )
                applied_end = append_start + keep * link.append_cycles_per_record
                if fault is not None and fault.kind == "torn":
                    state.dead_after = applied_end
                    continue  # no ack: the replica went dark mid-append
                if not appended_all:
                    contiguous = False
                    continue  # replica died mid-append: no ack
                if self.unsafe_early_ack:
                    ack_send = arrival  # PROBE: acked before durable
                else:
                    ack_send = applied_end
                ack_arrival = ack_send + link.latency
                state.acks[batch.index] = (ack_send, ack_arrival)
                self._emit(
                    ack_arrival, "repl_ack", replica=replica,
                    batch=batch.index, start_seq=batch.start, n=batch.count,
                    sent=ack_send,
                )
                if fault is not None and fault.kind == "dup":
                    dup_arrival = arrival + link.latency
                    self._emit(
                        dup_arrival, "repl_deliver", replica=replica,
                        batch=batch.index, start_seq=batch.start,
                        n=batch.count, duplicate=True,
                    )
                    # Already applied: re-ack without re-appending.
                    self._emit(
                        dup_arrival + link.latency, "repl_ack",
                        replica=replica, batch=batch.index,
                        start_seq=batch.start, n=batch.count,
                        sent=dup_arrival,
                    )
        self._derive_cluster_commits()
        self.events.sort(key=lambda item: (item[0], item[1]))
        self.events = [event for _time, _order, event in self.events]

    # ------------------------------------------------------------------
    def _derive_cluster_commits(self) -> None:
        batch_of: dict = {}
        for batch in self.batches:
            for rec in batch.records:
                batch_of[rec.seq] = batch.index
        crash = self.primary_crash
        for (tid, ordinal), (seq, txid, _index, reported) in sorted(
            self.stream.commit_map().items(), key=lambda item: item[1][0]
        ):
            batch_index = batch_of.get(seq)
            if batch_index is None:
                continue  # commit record durable after the primary died
            acks = []
            for replica in self.config.replica_ids:
                ack = self.links[replica].acks.get(batch_index)
                if ack is None:
                    acks = None
                    break
                acks.append(ack[1])
            if acks is None:
                continue  # no full quorum: never reported cluster-committed
            commit_time = max([reported] + acks)
            if crash is not None and commit_time > crash:
                continue  # primary died before seeing the quorum
            self.cluster_committed[(tid, ordinal)] = commit_time
            self._emit(
                commit_time, "dist_commit", tid=tid, ordinal=ordinal,
                txid=txid, seq=seq, batch=batch_index,
                quorum=list(self.config.replica_ids), acks=acks,
                reported=reported,
            )

    def _emit(self, time: float, kind: str, **detail) -> None:
        self.events.append(
            (time, len(self.events), TraceEvent(time, kind, -1, detail))
        )

    # ------------------------------------------------------------------
    def frontier(self, replica: int) -> int:
        """Contiguous durable records on ``replica`` starting at seq 0."""
        return self.links[replica].frontier

    def event_stream(self) -> list:
        """The timeline as trace events, time-ordered (for the sanitizer)."""
        meta = TraceEvent(
            0.0,
            "meta",
            -1,
            {
                "dist": True,
                "replicas": list(self.config.replica_ids),
                "window_batches": self.config.window_batches,
                "batch_records": self.config.batch_records,
            },
        )
        return [meta] + list(self.events)
