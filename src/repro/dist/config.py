"""Topology and interconnect parameters for the distributed model.

All times are in the simulator's cycle units (the same clock
:class:`~repro.sim.machine.Machine` advances), so shipping timelines
compose directly with record durability times from the traced run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass(frozen=True)
class LinkConfig:
    """One primary-to-replica interconnect link."""

    latency: float = 500.0
    """One-way propagation delay, cycles (also applied to the ack path)."""

    bandwidth_bytes_per_cycle: float = 4.0
    """Serialization rate: a batch of B bytes occupies the link for
    ``B / bandwidth_bytes_per_cycle`` cycles on top of the latency."""

    append_cycles_per_record: float = 10.0
    """Replica-side cost to make one shipped record durable in its ring."""

    retransmit_timeout: float = 4000.0
    """How long the primary waits for an ack before re-shipping a batch."""

    def validate(self) -> "LinkConfig":
        if self.latency < 0:
            raise ConfigError(f"link latency must be >= 0, got {self.latency}")
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigError(
                "link bandwidth must be > 0, got "
                f"{self.bandwidth_bytes_per_cycle}"
            )
        if self.retransmit_timeout <= self.latency:
            raise ConfigError(
                "retransmit timeout must exceed the one-way latency "
                f"({self.retransmit_timeout} <= {self.latency})"
            )
        return self


@dataclass(frozen=True)
class DistConfig:
    """Cluster topology: one primary plus ``replicas`` log standbys.

    ``nodes`` counts every simulated node (primary included); the
    replication factor ``replicas`` says how many of the remaining nodes
    receive the primary's durable log records.  The ack *quorum* is the
    full replication factor: a transaction is reported cluster-committed
    only once every replica has acknowledged the batch carrying its
    COMMIT record, so any single surviving replica can reconstruct every
    externally acknowledged commit.
    """

    nodes: int = 3
    replicas: int = 2
    batch_records: int = 8
    """Cut a shipment batch after this many records (a COMMIT record also
    cuts one, so commit-ack latency is not held hostage by batching)."""

    window_batches: int = 4
    """Bounded in-flight window per link: at most this many unacked
    batches may be outstanding before the primary stalls shipping."""

    batch_header_bytes: int = 64
    """Per-batch wire overhead (sequence numbers, link CRC, framing)."""

    link: LinkConfig = field(default_factory=LinkConfig)

    def validate(self) -> "DistConfig":
        if self.replicas < 1:
            raise ConfigError(f"replication factor must be >= 1, got {self.replicas}")
        if self.nodes < self.replicas + 1:
            raise ConfigError(
                f"need at least replicas+1 nodes (one primary): "
                f"nodes={self.nodes} replicas={self.replicas}"
            )
        if self.batch_records < 1:
            raise ConfigError(f"batch_records must be >= 1, got {self.batch_records}")
        if self.window_batches < 1:
            raise ConfigError(f"window_batches must be >= 1, got {self.window_batches}")
        self.link.validate()
        return self

    @property
    def replica_ids(self) -> tuple:
        """Node ids of the replicas (primary is node 0)."""
        return tuple(range(1, self.replicas + 1))
