"""Convergent cluster recovery with damaged-replica fallback.

After losing the primary, the surviving replicas must agree on one
committed-state image.  The protocol:

1. Every survivor scans its own ring from NVRAM
   (:meth:`~repro.dist.node.ReplicaNode.scan_frontier`) — volatile
   bookkeeping is gone, so damage (torn landings, bit rot) is discovered
   exactly as a restarting node would discover it.
2. A survivor is *eligible* to serve recovery only if its frontier
   covers every cluster-acked commit (the ack quorum guarantees at least
   one such survivor exists for any single-node loss).  Survivors that
   fall short — a torn primary-replica log, say — are reported as
   damaged and recovery degrades gracefully to the next replica in
   preference order instead of failing.
3. Eligible survivors reconcile to the *common frontier* (the longest
   record prefix all of them hold), truncate their rings to it, and each
   runs the ordinary single-node :class:`~repro.core.recovery
   .RecoveryManager` independently.
4. Convergence is then proven, not assumed: every eligible survivor's
   full NVRAM image must be bit-identical, and must equal the golden
   model's expected image for exactly the commits whose COMMIT record
   lies inside the common frontier.

A crash *during* step 3 on the chosen source is the mid-recovery fault:
the caller either re-runs recovery on the same node (idempotence — replay
writes absolute values) or abandons it and falls back to the next
eligible survivor; both paths are exercised by the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import RecoveryInterrupted


@dataclass
class ReplicaOutcome:
    """What one survivor contributed to cluster recovery."""

    node_id: int
    frontier: int
    eligible: bool
    recovered: bool = False
    interrupted: bool = False
    abandoned: bool = False
    report: Optional[object] = None


@dataclass
class ClusterRecoveryReport:
    """Outcome of one cluster recovery attempt."""

    required_frontier: int
    common_frontier: int = 0
    source: Optional[int] = None
    fallbacks: list = field(default_factory=list)
    damaged: list = field(default_factory=list)
    per_replica: list = field(default_factory=list)
    images_identical: bool = False
    mismatched_words: int = -1
    acked_commits: int = 0
    recovered_commits: int = 0
    failure: Optional[str] = None

    @property
    def converged(self) -> bool:
        """Every eligible survivor reached the same, golden-true image."""
        return (
            self.failure is None
            and self.source is not None
            and self.images_identical
            and self.mismatched_words == 0
        )

    def render(self) -> str:
        if self.failure is not None:
            return f"cluster recovery FAILED: {self.failure}"
        parts = [
            f"source=replica{self.source}",
            f"frontier={self.common_frontier}/{self.required_frontier} required",
            f"commits={self.recovered_commits} ({self.acked_commits} acked)",
            "images=identical" if self.images_identical else "images=DIVERGED",
            f"golden-mismatches={self.mismatched_words}",
        ]
        if self.fallbacks:
            parts.append(f"fallbacks={self.fallbacks}")
        if self.damaged:
            parts.append(f"damaged={self.damaged}")
        return "cluster recovery: " + " ".join(parts)


def required_frontier(stream, cluster_committed: dict) -> int:
    """Records that must survive: through the last cluster-acked COMMIT."""
    commit_map = stream.commit_map()
    seqs = [
        commit_map[key][0] for key in cluster_committed if key in commit_map
    ]
    return max(seqs) + 1 if seqs else 0


def expected_image(prepared, stream, golden, frontier: int) -> bytes:
    """Golden NVRAM image for commits inside ``frontier``.

    The setup checkpoint plus the write-sets of every transaction whose
    COMMIT record seq lies below the frontier, applied in COMMIT-record
    (= replay) order.  Replicas never receive data write-backs, so this
    is the *whole* truth of what their recovery must reconstruct.
    """
    image = bytearray(prepared.image_size)
    image[: len(prepared.image_prefix)] = prepared.image_prefix
    entries = sorted(stream.commit_map().items(), key=lambda item: item[1][0])
    for _key, (seq, _txid, golden_index, _reported) in entries:
        if seq >= frontier:
            continue
        _durable, writes = golden.commits[golden_index]
        for addr, piece in writes.items():
            image[addr:addr + len(piece)] = piece
    return bytes(image)


def _count_word_mismatches(actual: bytes, expected: bytes) -> int:
    if actual == expected:
        return 0
    count = 0
    limit = min(len(actual), len(expected))
    for offset in range(0, limit, 8):
        if actual[offset:offset + 8] != expected[offset:offset + 8]:
            count += 1
    count += abs(len(actual) - len(expected)) // 8
    return count


def recover_cluster(
    survivors: list,
    stream,
    cluster_committed: dict,
    *,
    prepared=None,
    golden=None,
    interrupt_source_at: Optional[int] = None,
    fallback_on_interrupt: bool = False,
) -> ClusterRecoveryReport:
    """Recover the cluster from ``survivors``; prove convergence.

    ``interrupt_source_at`` injects a crash after that many recovery
    writes on the first eligible survivor; ``fallback_on_interrupt``
    chooses between abandoning it (fall back to the next replica) and
    restarting recovery on the same node (idempotence).  With
    ``prepared``/``golden`` given, the recovered image is also verified
    bit-for-bit against the golden expected image.
    """
    from ..faults.crashpoints import CrashPoint, EventKind, FaultMonitor

    report = ClusterRecoveryReport(
        required_frontier=required_frontier(stream, cluster_committed),
        acked_commits=len(cluster_committed),
    )
    outcomes = []
    for node in sorted(survivors, key=lambda n: n.node_id):
        frontier = node.scan_frontier()
        outcomes.append(
            ReplicaOutcome(
                node_id=node.node_id,
                frontier=frontier,
                eligible=frontier >= report.required_frontier,
            )
        )
    report.per_replica = outcomes
    by_id = {node.node_id: node for node in survivors}
    eligible = [out for out in outcomes if out.eligible]
    report.damaged = [out.node_id for out in outcomes if not out.eligible]
    if not eligible:
        report.failure = (
            f"no survivor covers the acked frontier "
            f"{report.required_frontier} "
            f"(frontiers: {[(o.node_id, o.frontier) for o in outcomes]})"
        )
        return report
    report.common_frontier = min(out.frontier for out in eligible)
    report.recovered_commits = sum(
        1
        for _key, (seq, _txid, _gi, _rep) in stream.commit_map().items()
        if seq < report.common_frontier
    )

    # Reconcile: every eligible survivor truncates to the common frontier
    # so all of them scan the identical window.
    for out in eligible:
        by_id[out.node_id].truncate_to(report.common_frontier)

    # Source recovery, with the optional mid-recovery kill.  The kill is
    # a single-node fault: it fires once, on the first source attempt —
    # a fallback replica (a different node) recovers unmolested.
    interrupt_pending = interrupt_source_at is not None
    queue = list(eligible)
    while queue:
        out = queue[0]
        node = by_id[out.node_id]
        if interrupt_pending and not out.interrupted:
            monitor = FaultMonitor(
                CrashPoint(EventKind.RECOVERY, interrupt_source_at)
            )
            try:
                node.recover(crash_injector=monitor)
            except RecoveryInterrupted:
                out.interrupted = True
                interrupt_pending = False
                if fallback_on_interrupt:
                    # The node is gone mid-recovery: degrade to the next
                    # eligible survivor.
                    out.abandoned = True
                    report.fallbacks.append(out.node_id)
                    queue.pop(0)
                    continue
                # Restart the same node: the second pass must converge.
        out.report = node.recover()
        out.recovered = True
        report.source = out.node_id
        break
    if report.source is None:
        report.failure = "every eligible survivor was lost mid-recovery"
        return report

    # The remaining eligible survivors recover independently.
    for out in eligible:
        if out.recovered or out.abandoned:
            continue
        out.report = by_id[out.node_id].recover()
        out.recovered = True

    # Convergence proof: bit-identical full images across every survivor
    # that recovered, and golden truth when the caller supplied it.
    recovered = [out for out in eligible if out.recovered]
    images = [by_id[out.node_id].image_bytes() for out in recovered]
    report.images_identical = all(image == images[0] for image in images[1:])
    if prepared is not None and golden is not None:
        expected = expected_image(
            prepared, stream, golden, report.common_frontier
        )
        source_node = by_id[report.source]
        report.mismatched_words = _count_word_mismatches(
            source_node.heap_image(), expected
        )
    else:
        report.mismatched_words = 0
    return report
