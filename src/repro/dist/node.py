"""A replica node: its own NVRAM and log ring, fed by shipped records.

A replica is a pure standby for the log stream: its persistent heap
starts as the primary's post-setup checkpoint image and is *never*
written during normal operation — only the log ring grows.  Recovery is
therefore a full redo of every committed transaction in the ring (plus
the usual undo of an uncommitted tail), run by the ordinary
:class:`~repro.core.recovery.RecoveryManager` against the replica's own
NVRAM.  That is the point of the design: the single-node recovery path,
already hardened by the fault campaign, is the *only* recovery path —
replication just changes where the ring lives.

The ring is sized to hold a run's record stream without wrapping (slot
== ``seq - base_seq``), so a replica can reconstruct committed state
that the primary's small circular log has long overwritten — the primary
relies on wrap-forced data write-backs that the replica's heap never
received.  For open-ended serve traffic the ring *compacts* instead of
growing without bound: :meth:`ReplicaNode.compact_below` folds the
record prefix below the cluster-committed frontier into the mirrored
heap (applying redo content in sequence order, exactly recovery's redo
pass) and slides the surviving suffix down, advancing ``base_seq``.
Compacted transactions are thereafter recovered from the checkpointed
heap rather than replayed from the log — the classic
checkpoint-plus-log contraction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.logrecord import LogRecord, RecordKind
from ..core.nvlog import CircularLog
from ..core.recovery import RecoveryManager, RecoveryReport
from ..errors import ConfigError
from ..sim.nvram import NVRAM


def _ring_entries(count: int) -> int:
    entries = 64
    while entries < count:
        entries *= 2
    return entries


class ReplicaNode:
    """One standby node holding a full copy of the shipped log."""

    def __init__(
        self,
        node_id: int,
        system,
        image_prefix: bytes,
        capacity_records: int,
        *,
        line_size: int = 64,
    ) -> None:
        self.node_id = node_id
        entry_size = system.logging.log_entry_size
        entries = _ring_entries(max(1, capacity_records))
        primary_size = system.nvram.size_bytes
        base = primary_size  # ring lives above the mirrored primary space
        size = base + entries * entry_size
        # The DIMM geometry requires a whole number of rows per bank.
        row_stride = system.nvram.row_bytes * system.nvram.num_banks
        size = ((size + row_stride - 1) // row_stride) * row_stride
        if capacity_records > entries:
            raise ConfigError(
                f"replica ring too small: {capacity_records} records > "
                f"{entries} entries"
            )
        self.primary_size = primary_size
        self.line_size = line_size
        self.nvram = NVRAM(
            replace(system.nvram, size_bytes=size), track_crash_state=False
        )
        self.nvram.load_image_prefix(image_prefix)
        self.ring = CircularLog(base, entries, entry_size, line_size=line_size)
        self.appended = 0  # slots occupied, torn tail included
        self.base_seq = 0  # first sequence number still held in the ring
        self.torn_tail = False

    # ------------------------------------------------------------------
    def append(self, rec) -> int:
        """Durably append one shipped record; returns its slot.

        Slots map to sequence numbers as ``slot == seq - base_seq``
        (``base_seq`` advances when :meth:`compact_below` folds a prefix
        into the heap).  Deduplication is by sequence number: a record
        at or below the expected frontier (a re-shipped or duplicated
        batch, or one already compacted away) is ignored, so replayed
        batches cannot resurrect state — the slot already holds the
        identical record, and an undone/aborted tail can only be
        *truncated*, never re-extended, by recovery.
        """
        if self.torn_tail:
            raise ConfigError(
                f"replica {self.node_id}: append after a torn tail"
            )
        expected = self.base_seq + self.appended
        if rec.seq < expected:
            return rec.seq - self.base_seq  # duplicate delivery: already durable
        if rec.seq != expected:
            raise ConfigError(
                f"replica {self.node_id}: out-of-order append "
                f"(seq {rec.seq}, expected {expected})"
            )
        if self.appended >= self.ring.num_entries:
            raise ConfigError(
                f"replica {self.node_id}: ring full at seq {rec.seq}; "
                "compact below the cluster-committed frontier first"
            )
        placed = self.ring.place(self._materialize(rec))
        self.nvram.poke(placed.addr, placed.payload)
        self.appended += 1
        return placed.slot

    def append_torn(self, rec, keep_bytes: int) -> int:
        """A torn landing: only ``keep_bytes`` of the entry became durable."""
        if rec.seq != self.base_seq + self.appended:
            raise ConfigError(
                f"replica {self.node_id}: out-of-order torn append "
                f"(seq {rec.seq}, expected {self.base_seq + self.appended})"
            )
        if self.appended >= self.ring.num_entries:
            raise ConfigError(
                f"replica {self.node_id}: ring full at seq {rec.seq}; "
                "compact below the cluster-committed frontier first"
            )
        placed = self.ring.place(self._materialize(rec))
        keep = max(0, min(keep_bytes, len(placed.payload)))
        self.nvram.poke(placed.addr, placed.payload[:keep])
        self.appended += 1
        self.torn_tail = True
        return placed.slot

    def _materialize(self, rec) -> LogRecord:
        return LogRecord(
            kind=RecordKind[rec.kind],
            txid=rec.txid,
            tid=rec.tid,
            addr=rec.addr if rec.addr is not None else 0,
            undo=rec.undo,
            redo=rec.redo,
        )

    def corrupt_slot(self, slot: int, offset: int = 8, flip: int = 0xFF) -> None:
        """Post-hoc storage damage: flip bits inside an occupied entry.

        The entry's checksum no longer verifies, so a restarting node's
        :meth:`scan_frontier` stops below it — the damaged-replica case
        the convergence checker must degrade around.
        """
        addr = self.ring.entry_addr(slot)
        raw = bytearray(self.nvram.peek(addr, self.ring.entry_size))
        raw[offset] ^= flip
        self.nvram.poke(addr, bytes(raw))

    # ------------------------------------------------------------------
    def scan_frontier(self) -> int:
        """First sequence number past the contiguous decodable prefix.

        Read back from NVRAM (not from volatile bookkeeping), so damage
        injected after the append — a torn landing, post-hoc corruption —
        is discovered exactly the way a recovering node would discover
        it.  Sequence numbers below ``base_seq`` were folded into the
        heap by compaction and count as durable by construction.
        """
        entry_size = self.ring.entry_size
        for slot in range(self.ring.num_entries):
            addr = self.ring.entry_addr(slot)
            payload = self.nvram.peek(addr, entry_size)
            record, status = LogRecord.classify(payload)
            if status.name != "OK" or record is None:
                return self.base_seq + slot
            if (record.torn & 1) != 1:
                return self.base_seq + slot  # wrong parity: not first-pass
        return self.base_seq + self.ring.num_entries

    def truncate_to(self, frontier: int) -> None:
        """Zero every slot at or past sequence ``frontier`` (reconciliation).

        Survivors agree on a common committed frontier before recovering
        independently; slots past it (records some other survivor never
        received, or a torn tail) are erased so every node scans the
        identical window.  ``frontier`` is an absolute sequence number;
        anything below ``base_seq`` is already folded into the heap and
        cannot be rewound.
        """
        rel = max(0, frontier - self.base_seq)
        entry_size = self.ring.entry_size
        zeros = bytes(entry_size)
        for slot in range(rel, self.appended):
            self.nvram.poke(self.ring.entry_addr(slot), zeros)
            self.ring._slot_lines[slot] = None
            self.ring._slot_kinds[slot] = None
        self.appended = min(self.appended, rel)
        self.torn_tail = False
        # Rewind the ring cursor too (the replica ring never wraps, so
        # slot == seq - base_seq must keep holding): a record re-shipped
        # after the truncation lands back in its own slot, not wherever
        # the stale cursor pointed.
        self.ring.tail = self.appended
        self.ring.appended = min(self.ring.appended, self.appended)

    def compact_below(self, frontier: int) -> int:
        """Fold records below sequence ``frontier`` into the heap.

        The dropped prefix's redo content is applied to the mirrored
        primary space in sequence order — exactly the order recovery's
        redo pass would have replayed it — after which those
        transactions live in the checkpointed heap and the log entries
        are free.  The surviving suffix slides down so ``slot ==
        seq - base_seq`` keeps holding, and ``base_seq`` advances by the
        number of records dropped (returned).

        The caller is responsible for ``frontier`` not exceeding the
        cluster-committed frontier: compacting an uncommitted record
        would bake a possibly-aborting transaction into the checkpoint
        with no undo information left to peel it back off.
        """
        drop = min(frontier - self.base_seq, self.appended)
        if drop <= 0:
            return 0
        if self.torn_tail and drop >= self.appended:
            raise ConfigError(
                f"replica {self.node_id}: cannot compact through a torn tail"
            )
        entry_size = self.ring.entry_size
        for slot in range(drop):
            addr = self.ring.entry_addr(slot)
            record, status = LogRecord.classify(self.nvram.peek(addr, entry_size))
            if status.name != "OK" or record is None:
                raise ConfigError(
                    f"replica {self.node_id}: cannot compact undecodable "
                    f"slot {slot} (seq {self.base_seq + slot})"
                )
            if record.kind is RecordKind.DATA:
                if not record.redo:
                    raise ConfigError(
                        f"replica {self.node_id}: cannot compact an "
                        f"undo-only record (seq {self.base_seq + slot}): "
                        "no redo content to fold into the checkpoint"
                    )
                self.nvram.poke(record.addr, record.redo)
            # BEGIN/COMMIT records are pure markers: nothing to fold.
        keep = self.appended - drop
        for slot in range(keep):
            src = self.ring.entry_addr(slot + drop)
            self.nvram.poke(
                self.ring.entry_addr(slot), self.nvram.peek(src, entry_size)
            )
            self.ring._slot_lines[slot] = self.ring._slot_lines[slot + drop]
            self.ring._slot_kinds[slot] = self.ring._slot_kinds[slot + drop]
        zeros = bytes(entry_size)
        for slot in range(keep, self.appended):
            self.nvram.poke(self.ring.entry_addr(slot), zeros)
            self.ring._slot_lines[slot] = None
            self.ring._slot_kinds[slot] = None
        self.ring.tail = keep
        self.ring.appended = keep
        self.base_seq += drop
        self.appended = keep
        return drop

    # ------------------------------------------------------------------
    def recover(
        self,
        *,
        reset_log: bool = True,
        crash_injector=None,
        verify_checksums: bool = True,
    ) -> RecoveryReport:
        """Run the standard single-node recovery over the replica ring."""
        manager = RecoveryManager(
            self.nvram, self._cold_ring(), verify_checksums=verify_checksums
        )
        return manager.recover(reset_log=reset_log, crash_injector=crash_injector)

    def _cold_ring(self) -> CircularLog:
        # A freshly powered-on view of the ring: geometry only, no
        # volatile head/tail state survives the crash.
        return CircularLog(
            self.ring.base,
            self.ring.num_entries,
            self.ring.entry_size,
            line_size=self.line_size,
        )

    def image_bytes(self) -> bytes:
        """The full NVRAM image (bit-compare material)."""
        return bytes(self.nvram.image)

    def heap_image(self) -> bytes:
        """The mirrored primary address space (heap + metadata)."""
        return bytes(self.nvram.image[: self.primary_size])

    def release(self) -> None:
        """Return the NVRAM buffer to the pool."""
        self.nvram.recycle()
