"""The distributed fault campaign: node crashes x link faults, converged.

One traced primary run per (benchmark, design) produces the durable
record stream and the golden model; every campaign point then reshapes
the *shipping timeline* deterministically — kill the primary
mid-transaction or mid-log-ship, kill a replica, drop / duplicate /
delay / tear shipment batches, corrupt a replica's ring after the fact,
interrupt the recovery source mid-replay — and proves that cluster
recovery still converges: every eligible survivor reconstructs the same
bit-identical image, that image equals the golden expectation for the
common committed frontier, and the replication-ordering sanitizer stays
clean over the point's event stream.

This composes the three existing gates the single-node campaign already
provides (crash points, fault injection, psan) with the node/link axis —
the same grid philosophy as :mod:`repro.faults.campaign`, one level up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.design import HWL, DesignSpec
from ..faults.campaign import campaign_workload, default_campaign_system
from ..harness.runner import RunConfig, prepare_workload, run_workload
from ..sanitizer.replication import check_replication
from ..sim.trace import Tracer
from .config import DistConfig
from .node import ReplicaNode
from .recovery import recover_cluster, required_frontier
from .ship import LinkFault, LogStream, LogStreamCollector, ShipTimeline

DIST_BENCHMARKS = ("hash", "rbtree", "sps", "btree", "ssca2")


@dataclass(frozen=True)
class DistPoint:
    """One cell of the node-crash x link-fault grid."""

    label: str
    primary_crash: Optional[float] = None
    replica_crashes: tuple = ()  # ((replica, time), ...)
    dead_replicas: tuple = ()  # replicas whose NVRAM is lost outright
    faults: tuple = ()  # LinkFaults
    corrupt: Optional[tuple] = None  # (replica, slot): post-hoc ring damage
    interrupt_recovery: Optional[int] = None
    fallback_on_interrupt: bool = False
    expect_fallback: bool = False


@dataclass
class DistPointResult:
    point: DistPoint
    converged: bool
    psan_clean: bool
    fallback_seen: bool
    note: str = ""

    @property
    def ok(self) -> bool:
        if not (self.converged and self.psan_clean):
            return False
        if self.point.expect_fallback and not self.fallback_seen:
            return False
        return True


@dataclass
class DistBenchReport:
    benchmark: str
    policy: str
    records: int
    batches: int
    commits: int
    points: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.ok for result in self.points)


@dataclass
class DistCampaignResult:
    config: DistConfig
    reports: list = field(default_factory=list)
    probe_tripped: Optional[bool] = None

    @property
    def passed(self) -> bool:
        probe_ok = self.probe_tripped is not False
        return probe_ok and all(report.passed for report in self.reports)

    def render(self) -> str:
        width = max(
            [len("point")]
            + [
                len(result.point.label)
                for report in self.reports
                for result in report.points
            ]
        )
        lines = []
        for report in self.reports:
            lines.append(
                f"{report.benchmark} [{report.policy}] — "
                f"{report.records} records, {report.batches} batches, "
                f"{report.commits} commits, "
                f"{len(report.points)} points: "
                + ("PASS" if report.passed else "FAIL")
            )
            for result in report.points:
                verdict = "ok" if result.ok else "FAIL"
                note = f"  ({result.note})" if result.note else ""
                lines.append(
                    f"  {result.point.label:{width}s} "
                    f"converged={'yes' if result.converged else 'NO'} "
                    f"psan={'clean' if result.psan_clean else 'VIOLATION'} "
                    f"{verdict}{note}"
                )
        if self.probe_tripped is not None:
            lines.append(
                "ack-before-durable probe: "
                + ("tripped (expected)" if self.probe_tripped else "NOT TRIPPED")
            )
        lines.append(
            "dist campaign "
            + ("PASSED" if self.passed else "FAILED")
            + f" ({self.config.nodes} nodes, {self.config.replicas} replicas)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Primary run tracing
# ----------------------------------------------------------------------
def traced_primary_run(
    prepared, policy: DesignSpec, threads: int, txns_per_thread: int
) -> tuple:
    """Run the workload once with the collector attached.

    Returns ``(stream, golden, outcome)``; the stream is the primary's
    durable record history, the golden model its committed truth.
    """
    holder: dict = {}

    def hook(machine) -> None:
        machine.tracer = Tracer(capacity=64)
        holder["collector"] = LogStreamCollector(machine)

    outcome = run_workload(
        prepared.workload,
        RunConfig(
            policy=policy,
            threads=threads,
            txns_per_thread=txns_per_thread,
            system=prepared.system,
        ),
        prepared=prepared,
        machine_hook=hook,
    )
    stream = holder["collector"].finish()
    return stream, outcome.pm.golden, outcome


# ----------------------------------------------------------------------
# Point grid
# ----------------------------------------------------------------------
def enumerate_dist_points(
    stream: LogStream, config: DistConfig, budget: int = 16
) -> list:
    """The node-crash x link-fault grid for one traced run."""
    baseline = ShipTimeline(stream, config)
    batches = len(baseline.batches)
    records = stream.records
    if not records or not batches:
        return []
    first_link = baseline.links[config.replica_ids[0]]
    last_ack = max(
        (ack[1] for link in baseline.links.values() for ack in link.acks.values()),
        default=records[-1].durable,
    )
    end_time = last_ack + 1.0
    commit_seqs = sorted(
        seq for seq, *_rest in stream.commit_map().values()
    )
    points: list = []

    def mid_txn_point(which: str, seq: int) -> None:
        # Die between the commit's preceding record and the COMMIT record
        # itself: the transaction is mid-flight, replicas must undo it.
        if seq <= 0:
            return
        t_prev = records[seq - 1].durable
        t_commit = records[seq].durable
        when = (t_prev + t_commit) / 2.0
        if when <= t_prev:
            when = t_prev
        points.append(
            DistPoint(label=f"primary-mid-txn[{which}]", primary_crash=when)
        )

    if commit_seqs:
        mid_txn_point("early", commit_seqs[len(commit_seqs) // 4])
        mid_txn_point("late", commit_seqs[(3 * len(commit_seqs)) // 4])
        # Just after the COMMIT record is durable but (typically) before
        # any quorum ack: locally committed, cluster in-doubt.
        seq = commit_seqs[len(commit_seqs) // 2]
        points.append(
            DistPoint(
                label="primary-post-commit-record",
                primary_crash=records[seq].durable + 0.5,
            )
        )

    def ship_window(batch_index: int) -> Optional[Tuple[float, float]]:
        batch_index = min(batch_index, batches - 1)
        ack = first_link.acks.get(batch_index)
        if ack is None:
            return None
        send = baseline.batches[batch_index].ready
        return send, ack[1]

    for which, batch_index in (("mid", batches // 2), ("last", batches - 1)):
        window = ship_window(batch_index)
        if window is None:
            continue
        points.append(
            DistPoint(
                label=f"primary-mid-ship[{which}]",
                primary_crash=(window[0] + window[1]) / 2.0,
            )
        )

    points.append(DistPoint(label="primary-after-quorum", primary_crash=end_time))

    drop_batch = max(0, batches // 3)
    points.append(
        DistPoint(
            label="link-drop+retransmit",
            faults=(LinkFault("drop", config.replica_ids[0], drop_batch),),
        )
    )
    window = ship_window(drop_batch)
    if window is not None:
        points.append(
            DistPoint(
                label="link-drop+primary-crash",
                primary_crash=window[0] + config.link.retransmit_timeout / 2.0,
                faults=(LinkFault("drop", config.replica_ids[0], drop_batch),),
            )
        )
    points.append(
        DistPoint(
            label="link-dup",
            faults=(LinkFault("dup", config.replica_ids[0], batches // 2),),
        )
    )
    points.append(
        DistPoint(
            label="link-delay-reorder",
            primary_crash=end_time,
            faults=(
                LinkFault(
                    "delay",
                    config.replica_ids[0],
                    batches // 2,
                    delay=3.0 * config.link.latency,
                ),
            ),
        )
    )
    points.append(
        DistPoint(
            label="link-torn-mid-ship",
            faults=(
                LinkFault(
                    "torn",
                    config.replica_ids[0],
                    (2 * batches) // 3,
                    keep_records=1,
                    keep_bytes=20,
                ),
            ),
        )
    )
    if len(config.replica_ids) > 1:
        mid = records[len(records) // 2].durable
        points.append(
            DistPoint(
                label="replica-crash-mid-run",
                replica_crashes=((config.replica_ids[0], mid),),
                dead_replicas=(config.replica_ids[0],),
            )
        )
        # The flagship damaged-replica case: the preferred replica's ring
        # is torn *below* the acked frontier, so recovery must degrade to
        # the next replica instead of failing.
        required = required_frontier(stream, baseline.cluster_committed)
        if required >= 2:
            points.append(
                DistPoint(
                    label="torn-replica-fallback",
                    primary_crash=end_time,
                    corrupt=(config.replica_ids[0], required - 2),
                    expect_fallback=True,
                )
            )
    points.append(
        DistPoint(
            label="mid-recovery-restart",
            primary_crash=end_time,
            interrupt_recovery=5,
            fallback_on_interrupt=False,
        )
    )
    if len(config.replica_ids) > 1:
        points.append(
            DistPoint(
                label="mid-recovery-fallback",
                primary_crash=end_time,
                interrupt_recovery=5,
                fallback_on_interrupt=True,
                expect_fallback=True,
            )
        )
    if budget and budget > 0 and len(points) > budget:
        # Keep the grid's spread: evenly sample down to the budget.
        step = len(points) / budget
        points = [points[min(len(points) - 1, int(i * step))] for i in range(budget)]
    return points


# ----------------------------------------------------------------------
# Point evaluation
# ----------------------------------------------------------------------
def build_replicas(
    prepared, stream: LogStream, timeline: ShipTimeline, skip: tuple = ()
) -> list:
    """Materialise the surviving replica nodes a timeline implies.

    Replays each link's append schedule (including a trailing torn
    landing) into a fresh :class:`ReplicaNode`; replicas in ``skip``
    are lost outright (their NVRAM is gone with the node).  The caller
    owns the nodes and must :meth:`~ReplicaNode.release` them.
    """
    capacity = max(1, len(stream.records))
    nodes = []
    for replica in timeline.config.replica_ids:
        if replica in skip:
            continue
        node = ReplicaNode(
            replica, prepared.system, prepared.image_prefix, capacity
        )
        link = timeline.links[replica]
        for seq, _durable in link.appends:
            node.append(stream.records[seq])
        if link.torn is not None:
            seq, keep_bytes, _when = link.torn
            node.append_torn(stream.records[seq], keep_bytes)
        nodes.append(node)
    return nodes


def evaluate_point(
    prepared,
    stream: LogStream,
    golden,
    config: DistConfig,
    point: DistPoint,
) -> DistPointResult:
    """Run one campaign point end to end and judge it."""
    timeline = ShipTimeline(
        stream,
        config,
        primary_crash=point.primary_crash,
        replica_crashes=dict(point.replica_crashes),
        faults=point.faults,
    )
    psan = check_replication(timeline)
    nodes = build_replicas(prepared, stream, timeline, skip=point.dead_replicas)
    try:
        if point.corrupt is not None:
            replica, slot = point.corrupt
            for node in nodes:
                if node.node_id == replica and slot < node.appended:
                    node.corrupt_slot(slot)
        cluster = recover_cluster(
            nodes,
            stream,
            timeline.cluster_committed,
            prepared=prepared,
            golden=golden,
            interrupt_source_at=point.interrupt_recovery,
            fallback_on_interrupt=point.fallback_on_interrupt,
        )
        fallback_seen = bool(cluster.fallbacks or cluster.damaged)
        note = "" if cluster.converged else (cluster.failure or cluster.render())
        if not psan.clean:
            fired = ",".join(sorted(psan.rules_fired()))
            note = (note + "; " if note else "") + f"psan: {fired}"
        return DistPointResult(
            point=point,
            converged=cluster.converged,
            psan_clean=psan.clean,
            fallback_seen=fallback_seen,
            note=note,
        )
    finally:
        for node in nodes:
            node.release()


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------
def run_dist_campaign(
    benchmarks: tuple = DIST_BENCHMARKS,
    policies: tuple = None,
    config: Optional[DistConfig] = None,
    threads: int = 2,
    txns_per_thread: int = 30,
    points_budget: int = 16,
    seed: int = 42,
    probe: bool = True,
    verbose_sink=None,
) -> DistCampaignResult:
    """The full distributed campaign over the microbenchmark grid."""
    if config is None:
        config = DistConfig()
    config.validate()
    if policies is None:
        policies = (HWL,)  # the paper's design
    result = DistCampaignResult(config=config)
    probe_tripped: Optional[bool] = None
    for benchmark in benchmarks:
        workload = campaign_workload(benchmark, seed)
        prepared = prepare_workload(workload, default_campaign_system())
        for policy in policies:
            stream, golden, outcome = traced_primary_run(
                prepared, policy, threads, txns_per_thread
            )
            timeline = ShipTimeline(stream, config)
            report = DistBenchReport(
                benchmark=benchmark,
                policy=policy.name,
                records=len(stream.records),
                batches=len(timeline.batches),
                commits=len(stream.commit_map()),
            )
            for point in enumerate_dist_points(stream, config, points_budget):
                point_result = evaluate_point(
                    prepared, stream, golden, config, point
                )
                report.points.append(point_result)
                if verbose_sink is not None:
                    verdict = "ok" if point_result.ok else "FAIL"
                    verbose_sink(
                        f"  {benchmark}/{policy.name} {point.label}: {verdict}"
                    )
            result.reports.append(report)
            if probe and probe_tripped is None:
                probe_report = check_replication(
                    ShipTimeline(stream, config, unsafe_early_ack=True)
                )
                probe_tripped = "repl-ack-durable" in probe_report.rules_fired()
            outcome.machine.nvram.recycle()
    result.probe_tripped = probe_tripped if probe else None
    return result
