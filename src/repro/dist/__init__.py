"""Distributed persistence: replicated HWL logs across simulated nodes.

The paper makes one machine's log provably durable before its data; this
package asks what survives the loss of the whole machine.  A *primary*
node runs a workload on the ordinary simulator stack
(:mod:`repro.sim.machine`) while a :class:`~repro.dist.ship.LogStreamCollector`
taps its trace-event stream for the durable log records.  A
deterministic :class:`~repro.dist.ship.ShipTimeline` then models an
interconnect with latency/bandwidth links shipping those records, in
batches with a bounded in-flight window and per-link ack tracking, to R
:class:`~repro.dist.node.ReplicaNode` standbys — each a full NVRAM +
circular-log stack of its own.

Because the simulator is deterministic, a primary crash at cycle ``T``
is exactly a truncation of the durable record stream at ``T``
(verified against a really-crashed run in ``tests/dist``), so the
distributed fault campaign (:mod:`repro.dist.campaign`) can evaluate a
whole grid of node-crash x link-fault points from **one** traced primary
run per workload: each point re-derives the shipping timeline, damages
it (dropped / duplicated / delayed / torn batches, per-node kills),
replays the surviving deliveries into fresh replica rings, and proves
convergent recovery (:mod:`repro.dist.recovery`): every eligible
survivor reconstructs a bit-identical committed-state image that
contains every cluster-acked commit, with graceful fallback past a
damaged replica.

The replication-ordering invariants (a batch is never acked before its
records are durable on the replica; a commit is never reported
cluster-committed before its ack quorum; replicas append in global
sequence order) are checked by
:class:`repro.sanitizer.replication.ReplicationOrderChecker` over the
timeline's event stream (``ship`` / ``repl_deliver`` / ``repl_append`` /
``repl_ack`` / ``dist_commit``).
"""

from __future__ import annotations

from .config import DistConfig, LinkConfig
from .ship import LinkFault, LogStream, LogStreamCollector, ShippedRecord, ShipTimeline
from .node import ReplicaNode
from .recovery import (
    ClusterRecoveryReport,
    expected_image,
    recover_cluster,
    required_frontier,
)
from .campaign import (
    DistCampaignResult,
    build_replicas,
    enumerate_dist_points,
    evaluate_point,
    run_dist_campaign,
    traced_primary_run,
)

__all__ = [
    "ClusterRecoveryReport",
    "DistCampaignResult",
    "DistConfig",
    "LinkConfig",
    "LinkFault",
    "LogStream",
    "LogStreamCollector",
    "ReplicaNode",
    "ShipTimeline",
    "ShippedRecord",
    "build_replicas",
    "enumerate_dist_points",
    "evaluate_point",
    "expected_image",
    "recover_cluster",
    "required_frontier",
    "run_dist_campaign",
    "traced_primary_run",
]
