"""Adaptive logging-policy control: the design space as a *learnable function*.

The paper's mechanism axes (undo/redo content, clwb/fwb/nowb write-back)
have no single winner across workload phases — which is why software PM
transaction systems expose the choice as a tunable and why ROADMAP open
item 1 calls for a controller that treats the logging policy as a
function of observed workload features.  This package supplies the three
pieces:

* **safe-switch protocol** — the epoch barrier lives on
  :meth:`repro.sim.machine.Machine.switch_design` (quiesce + drain +
  force-writeback + atomic spec swap, legality gated by
  :func:`repro.core.design.check_switch_transition`) and its shard-level
  wrapper :meth:`repro.sched.shard.ShardMachine.switch_design`;
* **runtime controller** (:mod:`repro.adapt.controller`) — observes
  per-window features (:mod:`repro.adapt.features`) at scheduler
  checkpoints and consults a feature→spec decision table
  (:mod:`repro.adapt.table`);
* **offline optimizer** (:mod:`repro.adapt.train`) — grids the ablate
  mechanism space per workload phase through the cached parallel sweep
  engine and writes the versioned JSON policy table that
  ``repro serve --adaptive`` and ``repro adapt run`` consume.

:mod:`repro.adapt.drift` builds the drift-style scenarios (write-mix /
key-churn shifts mid-run) where the adaptive controller beats every
static design, and :mod:`repro.adapt.faults` proves recovery convergent
for crashes injected exactly at the switch barrier.
"""

from .controller import AdaptiveController
from .drift import DriftConfig, DriftPhase, compare_drift, run_drift
from .faults import SwitchCampaignResult, default_switch_transitions, run_switch_campaign
from .features import FEATURE_NAMES, WindowFeatures, feature_probe, window_features
from .table import PolicyTable, PolicyRule, default_policy_table
from .train import train_policy_table

__all__ = [
    "AdaptiveController",
    "DriftConfig",
    "DriftPhase",
    "FEATURE_NAMES",
    "PolicyRule",
    "PolicyTable",
    "SwitchCampaignResult",
    "WindowFeatures",
    "compare_drift",
    "default_policy_table",
    "default_switch_transitions",
    "feature_probe",
    "run_drift",
    "run_switch_campaign",
    "train_policy_table",
    "window_features",
]
