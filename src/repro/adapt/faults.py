"""Crash injection exactly at the safe-switch barrier.

The safe-switch protocol's whole claim is that the barrier instant is a
*clean* point: every pre-switch transaction is committed and durable,
every logged dirty line written back, the log buffer drained — so a
crash on either side of the atomic spec swap recovers to the same
committed state, regardless of which spec the restarted system believes
in.  This module proves that the same way the main fault campaign proves
ordinary crash points: run, crash (via the fault monitor's
``switch-before`` / ``switch-after`` hooks), recover, and compare the
surviving NVRAM to the golden committed image.

Per legal transition the campaign asserts three things:

* **before/after equivalence** — the crash images on the two sides of
  the swap recover to bit-identical NVRAM (the swap itself writes no
  persistent state, and the barrier left nothing in flight);
* **golden consistency** — both recovered images match the golden
  committed state at the barrier exactly (zero acceptable-candidate
  slack: nothing may be in doubt at a barrier);
* **post-switch execution** — a later crash in the switched run (a
  retire event in the new spec's epoch) still recovers consistently, so
  the swap left the logging machinery coherent.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.design import DesignSpec, resolve_design, switch_legal
from ..core.recovery import RecoveryManager
from ..errors import SimulatedCrash
from ..faults.campaign import (
    _count_mismatches,
    campaign_workload,
    default_campaign_system,
)
from ..faults.crashpoints import CrashPoint, EventKind, FaultMonitor
from ..harness.runner import PreparedWorkload, prepare_workload
from ..sim.config import SystemConfig
from ..sim.machine import Machine
from ..txn.runtime import PersistentMemory
from .drift import WRITEBACK_FAMILY

#: Transition candidates the default campaign ranges over: every ordered
#: pair inside the hw+undo+redo write-back family, plus the sw-logging
#: content switch, filtered down to the legal set at run time.
_DEFAULT_CANDIDATES = WRITEBACK_FAMILY + ("sw+undo+clwb", "sw+undo+redo+clwb")


def default_switch_transitions() -> Tuple[Tuple[DesignSpec, DesignSpec], ...]:
    """Every legal ordered transition among the default candidates."""
    specs = [resolve_design(name) for name in _DEFAULT_CANDIDATES]
    return tuple(
        (old, new)
        for old in specs
        for new in specs
        if old != new and switch_legal(old, new)
    )


@dataclass
class SwitchPointResult:
    """One crash point of one transition."""

    kind: str
    """``switch-before``, ``switch-after``, or ``post-switch-retire``."""
    triggered: bool
    crash_time: float
    mismatches: int
    converged: bool
    """A second cold recovery pass changed nothing (idempotence)."""

    @property
    def consistent(self) -> bool:
        return self.triggered and self.mismatches == 0 and self.converged


@dataclass
class TransitionReport:
    """All switch-point outcomes for one (old → new) transition."""

    old: DesignSpec
    new: DesignSpec
    points: List[SwitchPointResult] = field(default_factory=list)
    sides_identical: bool = True
    """Recovered images of the switch-before and switch-after crashes
    are bit-identical."""

    @property
    def label(self) -> str:
        return f"{self.old.mechanism_string()} -> {self.new.mechanism_string()}"

    @property
    def consistent(self) -> bool:
        return self.sides_identical and all(p.consistent for p in self.points)


@dataclass
class SwitchCampaignResult:
    """Verdicts for every transition of one switch campaign."""

    workload: str
    txns_per_thread: int
    threads: int
    seed: int
    reports: List[TransitionReport] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(report.consistent for report in self.reports)

    @property
    def total_points(self) -> int:
        return sum(len(report.points) for report in self.reports)

    @property
    def rendered(self) -> str:
        width = max([len("transition")] + [len(r.label) for r in self.reports])
        lines = [
            f"switch campaign: workload={self.workload} "
            f"txns={self.txns_per_thread} threads={self.threads} "
            f"seed={self.seed}",
            f"{'transition':{width}s} {'points':>6s} {'sides':>6s}  verdict",
        ]
        for report in self.reports:
            bad = [p for p in report.points if not p.consistent]
            verdict = "CONSISTENT" if report.consistent else (
                "VIOLATED: " + ", ".join(p.kind for p in bad)
                + ("" if report.sides_identical else " sides-differ")
            )
            lines.append(
                f"{report.label:{width}s} {len(report.points):6d} "
                f"{'same' if report.sides_identical else 'DIFF':>6s}  {verdict}"
            )
        lines.append(
            f"{self.total_points} point(s) over {len(self.reports)} "
            f"transition(s); campaign {'PASSED' if self.passed else 'FAILED'}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Single-run driver: closed-loop threads with one mid-run switch
# ----------------------------------------------------------------------
def _run_with_switch(
    prepared: PreparedWorkload,
    old: DesignSpec,
    new: DesignSpec,
    threads: int,
    txns_per_thread: int,
    switch_at_txns: int,
    monitor: Optional[FaultMonitor],
) -> Tuple[Machine, PersistentMemory, Optional[SimulatedCrash]]:
    """Run under ``old``, switch to ``new`` mid-run, finish (or crash).

    The switch fires at the first transaction boundary at or after
    ``switch_at_txns`` commits — generators yield only between
    transactions, so the machine is quiescent there by construction.
    """
    machine = Machine(prepared.system, old)
    machine.fault_monitor = monitor
    pm = PersistentMemory(machine)
    workload = prepared.workload
    prepared.restore_into(machine)
    pm.heap.restore(prepared.heap_state)
    workload.attach(pm)
    apis = [pm.api(core_id=tid, tid=tid) for tid in range(threads)]
    generators = [
        workload.thread_body(apis[tid], tid, txns_per_thread)
        for tid in range(threads)
    ]
    ready = [(machine.core_time(tid), tid) for tid in range(threads)]
    heapq.heapify(ready)
    switched = False
    try:
        while ready:
            if (
                not switched
                and machine.stats.transactions_committed >= switch_at_txns
            ):
                machine.switch_design(new)
                for api in apis:
                    api.refresh_policy()
                switched = True
            _, tid = heapq.heappop(ready)
            try:
                next(generators[tid])
            except StopIteration:
                continue
            heapq.heappush(ready, (machine.core_time(tid), tid))
        if not switched:  # short run: switch at the end, still a barrier
            machine.switch_design(new)
    except SimulatedCrash as crash:
        return machine, pm, crash
    return machine, pm, None


def _crash_and_recover(
    prepared: PreparedWorkload,
    old: DesignSpec,
    new: DesignSpec,
    threads: int,
    txns_per_thread: int,
    switch_at_txns: int,
    trigger: CrashPoint,
    label: str,
) -> Tuple[SwitchPointResult, bytes]:
    """Crash one switched run at ``trigger``; recover twice; verify."""
    monitor = FaultMonitor(trigger)
    machine, pm, crash = _run_with_switch(
        prepared, old, new, threads, txns_per_thread, switch_at_txns, monitor
    )
    crash_time = (
        machine.crash_at_point(crash) if crash is not None else machine.crash()
    )
    RecoveryManager(machine.nvram, machine.log).recover()
    recovered = bytes(machine.nvram.image)
    # Idempotence: a second cold recovery pass must be a no-op.
    RecoveryManager(machine.nvram, machine.log).recover()
    converged = bytes(machine.nvram.image) == recovered
    return (
        SwitchPointResult(
            kind=label,
            triggered=crash is not None,
            crash_time=crash_time,
            mismatches=_count_mismatches(machine.nvram, pm, crash_time),
            converged=converged,
        ),
        recovered,
    )


def run_switch_campaign(
    transitions: Optional[Sequence] = None,
    workload: str = "hash",
    txns_per_thread: int = 24,
    threads: int = 2,
    seed: int = 7,
    system: Optional[SystemConfig] = None,
    progress=None,
) -> SwitchCampaignResult:
    """Crash every transition at its barrier (both sides) and after it."""
    system = system or default_campaign_system()
    if transitions is None:
        transitions = default_switch_transitions()
    transitions = [
        (resolve_design(old), resolve_design(new)) for old, new in transitions
    ]
    wl = campaign_workload(workload, seed)
    prepared = prepare_workload(wl, system)
    switch_at = max(1, (txns_per_thread * threads) // 2)

    result = SwitchCampaignResult(
        workload=workload,
        txns_per_thread=txns_per_thread,
        threads=threads,
        seed=seed,
    )
    for old, new in transitions:
        report = TransitionReport(old=old, new=new)

        before, image_before = _crash_and_recover(
            prepared, old, new, threads, txns_per_thread, switch_at,
            CrashPoint(EventKind.SWITCH_BEFORE, 0), "switch-before",
        )
        after, image_after = _crash_and_recover(
            prepared, old, new, threads, txns_per_thread, switch_at,
            CrashPoint(EventKind.SWITCH_AFTER, 0), "switch-after",
        )
        report.points.extend([before, after])
        report.sides_identical = image_before == image_after

        # Post-switch execution: profile the switched run's retire
        # stream, then crash 90% of the way in (inside the new epoch).
        profile = FaultMonitor()
        machine, _pm, _ = _run_with_switch(
            prepared, old, new, threads, txns_per_thread, switch_at, profile
        )
        machine.nvram.recycle()
        retire_total = profile.counts[EventKind.RETIRE]
        if retire_total > 0:
            late, _image = _crash_and_recover(
                prepared, old, new, threads, txns_per_thread, switch_at,
                CrashPoint(EventKind.RETIRE, (retire_total * 9) // 10),
                "post-switch-retire",
            )
            report.points.append(late)

        result.reports.append(report)
        if progress is not None:
            bad = [p for p in report.points if not p.consistent]
            progress(
                f"{report.label}: {len(report.points)} point(s), "
                f"{len(bad)} violation(s)"
                + ("" if report.sides_identical else ", sides differ")
            )
    return result
