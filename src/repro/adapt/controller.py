"""The runtime controller: decisions at scheduler checkpoints.

The event-loop scheduler (:mod:`repro.sched.loop`) already exposes the
one safe instant for cross-shard work: the ``checkpoint(horizon)`` hook,
called with every shard stepped up to the horizon and no thread mid-step
— the same hook the replication layer ships log records from.  The
controller rides it: every call it probes each shard's stats, and once a
shard has committed ``window_txns`` new transactions it computes the
window's feature vector, consults the policy table, and (when the target
differs and the transition is legal) runs the shard's safe-switch
protocol right there.

Determinism: probes are counter snapshots, features are pure functions
of probes, the table is ordered, and the switch itself is the
deterministic epoch barrier — two runs of the same scenario produce the
same decision log, which the CI ``adapt-smoke`` job byte-compares.
"""

from __future__ import annotations

from typing import Optional

from ..core.design import switch_legal
from .features import feature_probe, window_features
from .table import PolicyTable


class AdaptiveController:
    """Feature→spec control loop over one scenario's shards."""

    def __init__(
        self,
        table: PolicyTable,
        window_txns: int = 32,
        cooldown_txns: int = 0,
    ) -> None:
        if window_txns <= 0:
            raise ValueError("window_txns must be positive")
        self.table = table
        self.window_txns = window_txns
        self.cooldown_txns = cooldown_txns
        self.decisions: list = []
        """One dict per decision window, in decision order (JSON-ready)."""
        self.switches = 0
        self._probes: dict = {}
        self._cooldown: dict = {}

    # ------------------------------------------------------------------
    def observe(self, shard, horizon: Optional[float]) -> None:
        """Probe one shard at a checkpoint; maybe switch its design."""
        now = horizon
        if now is None:
            now = max(
                (core.time for core in shard.machine.cores), default=0.0
            )
        probe = feature_probe(shard.machine.stats, now=now)
        prev = self._probes.get(shard.shard_id)
        if prev is None:
            self._probes[shard.shard_id] = probe
            return
        window = probe["transactions_committed"] - prev["transactions_committed"]
        if window < self.window_txns:
            return
        self._probes[shard.shard_id] = probe
        cooldown = self._cooldown.get(shard.shard_id, 0)
        if cooldown > 0:
            self._cooldown[shard.shard_id] = max(0, cooldown - window)
            return
        features = window_features(prev, probe)
        current = shard.machine.policy
        target = self.table.decide(features, current)
        decision = {
            "shard": shard.shard_id,
            "cycle": now,
            "window_txns": features.transactions,
            "features": features.as_dict(),
            "from": current.mechanism_string(),
            "to": target.mechanism_string(),
        }
        if target == current:
            return
        if not switch_legal(current, target):
            decision["outcome"] = "illegal"
            self.decisions.append(decision)
            return
        barrier = shard.switch_design(target)
        decision["outcome"] = "switched"
        decision["barrier_cycle"] = barrier
        self.decisions.append(decision)
        self.switches += 1
        if self.cooldown_txns:
            self._cooldown[shard.shard_id] = self.cooldown_txns
        # The barrier consumed the window; re-probe from the switched state.
        self._probes[shard.shard_id] = feature_probe(
            shard.machine.stats, now=barrier
        )

    def checkpoint_for(self, shards, inner=None):
        """A scheduler ``checkpoint`` callable over ``shards``.

        ``inner`` (e.g. the replication layer's checkpoint) runs first so
        log shipping observes the pre-switch frontier of the same horizon.
        """

        def _checkpoint(horizon: Optional[float]) -> None:
            if inner is not None:
                inner(horizon)
            for shard in shards:
                self.observe(shard, horizon)

        return _checkpoint

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready decision log for reports."""
        return {
            "window_txns": self.window_txns,
            "switches": self.switches,
            "decisions": self.decisions,
        }
