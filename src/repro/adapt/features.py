"""Per-window workload features the controller decides on.

Everything here is derived from counters the simulator already maintains
(:class:`~repro.sim.stats.MachineStats`): no new instrumentation, no
wall-clock, no randomness — a feature window is a pure function of two
stats snapshots, so the controller's decisions are as deterministic as
the simulation itself.

The four features mirror ROADMAP open item 1:

========================  ====================================================
feature                   definition (per decision window)
========================  ====================================================
``write_intensity``       NVRAM bytes written per cycle
``txn_size``              log records appended per committed transaction
``wrap_pressure``         log-wrap forced write-backs per committed transaction
``miss_rate``             LLC misses per L1 access
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Feature names, in the stable order reports and tables use.
FEATURE_NAMES = ("write_intensity", "txn_size", "wrap_pressure", "miss_rate")

#: The raw counters a feature window is computed from.
_PROBE_COUNTERS = (
    "cycles_now",
    "transactions_committed",
    "nvram_write_bytes",
    "log_records",
    "log_wrap_forced_writebacks",
    "llc_misses",
    "l1_hits",
    "l1_misses",
)


@dataclass(frozen=True)
class WindowFeatures:
    """One decision window's feature vector."""

    write_intensity: float
    txn_size: float
    wrap_pressure: float
    miss_rate: float
    transactions: int
    """Committed transactions inside the window (the window length)."""

    def as_dict(self) -> dict:
        """JSON-ready mapping in :data:`FEATURE_NAMES` order."""
        table = {name: getattr(self, name) for name in FEATURE_NAMES}
        table["transactions"] = self.transactions
        return table


def feature_probe(stats, now: Optional[float] = None) -> dict:
    """Snapshot the counters a feature window needs.

    ``stats.cycles`` is only final after ``finalize()``; live probes pass
    the scheduler horizon (or read the stats field for finished runs).
    """
    return {
        "cycles_now": stats.cycles if now is None else now,
        "transactions_committed": stats.transactions_committed,
        "nvram_write_bytes": stats.nvram_write_bytes,
        "log_records": stats.log_records,
        "log_wrap_forced_writebacks": stats.log_wrap_forced_writebacks,
        "llc_misses": stats.llc_misses,
        "l1_hits": stats.l1_hits,
        "l1_misses": stats.l1_misses,
    }


def window_features(prev: dict, cur: dict) -> WindowFeatures:
    """The feature vector for the window between two probes."""
    txns = cur["transactions_committed"] - prev["transactions_committed"]
    cycles = max(cur["cycles_now"] - prev["cycles_now"], 0.0)
    accesses = (cur["l1_hits"] + cur["l1_misses"]) - (
        prev["l1_hits"] + prev["l1_misses"]
    )
    return WindowFeatures(
        write_intensity=(
            (cur["nvram_write_bytes"] - prev["nvram_write_bytes"]) / cycles
            if cycles > 0
            else 0.0
        ),
        txn_size=(
            (cur["log_records"] - prev["log_records"]) / txns if txns > 0 else 0.0
        ),
        wrap_pressure=(
            (
                cur["log_wrap_forced_writebacks"]
                - prev["log_wrap_forced_writebacks"]
            )
            / txns
            if txns > 0
            else 0.0
        ),
        miss_rate=(
            (cur["llc_misses"] - prev["llc_misses"]) / accesses
            if accesses > 0
            else 0.0
        ),
        transactions=txns,
    )


def run_features(stats) -> WindowFeatures:
    """Whole-run features of a finished cell (the trainer's phase probe).

    The window is the entire run: the zero probe as ``prev`` and the
    finalized stats as ``cur``.
    """
    zero = {name: 0 for name in _PROBE_COUNTERS}
    zero["cycles_now"] = 0.0
    return window_features(zero, feature_probe(stats))
